//! Property-based tests over the workload substrate: graph invariants,
//! synthetic-trace budgets, reuse-distance accounting, and PWC bounds.

use hpage::tlb::PageWalkCache;
use hpage::trace::{
    degree_based_grouping, generate_rmat, CsrGraph, Pattern, ReuseAnalyzer, RmatParams,
    SyntheticBuilder, Workload,
};
use hpage::types::VirtAddr;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSR construction: offsets are monotonic, end at the edge count,
    /// and each vertex's neighbour slice length equals its degree.
    #[test]
    fn csr_offsets_consistent(
        n in 2u32..64,
        edges in prop::collection::vec((0u32..64, 0u32..64), 0..256),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert_eq!(g.vertex_count(), n);
        prop_assert_eq!(g.edge_count(), edges.len() as u64);
        prop_assert!(g.offsets().windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*g.offsets().last().unwrap(), edges.len() as u64);
        let degree_sum: u64 = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, edges.len() as u64);
        for u in 0..n {
            prop_assert_eq!(g.neighbors_of(u).len() as u64, g.degree(u));
        }
    }

    /// DBG relabeling preserves the degree multiset and edge count.
    #[test]
    fn dbg_preserves_degree_multiset(scale in 4u32..9, seed in 0u64..1000) {
        let g = generate_rmat(&RmatParams::kronecker(scale), seed);
        let (sorted, perm) = degree_based_grouping(&g);
        prop_assert_eq!(g.edge_count(), sorted.edge_count());
        let mut d1: Vec<u64> = (0..g.vertex_count()).map(|u| g.degree(u)).collect();
        let mut d2: Vec<u64> = (0..sorted.vertex_count()).map(|u| sorted.degree(u)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
        // perm maps each old vertex's degree onto the same new degree.
        for u in 0..g.vertex_count() {
            prop_assert_eq!(g.degree(u), sorted.degree(perm[u as usize]));
        }
    }

    /// A synthetic workload emits exactly the sum of its phase budgets,
    /// every access inside its declared regions.
    #[test]
    fn synth_trace_budget_and_bounds(
        counts in prop::collection::vec(1u64..200, 1..4),
        seed in 0u64..100,
    ) {
        let mut b = SyntheticBuilder::new("prop", seed);
        let a = b.array(8, 4096);
        for (i, &c) in counts.iter().enumerate() {
            let pattern = match i % 4 {
                0 => Pattern::Sequential { stride: 1, count: c },
                1 => Pattern::UniformRandom { count: c },
                2 => Pattern::Zipf { count: c, exponent: 0.8 },
                _ => Pattern::PointerChase { count: c },
            };
            b.phase(a, pattern, 20);
        }
        let w = b.build();
        let total: u64 = counts.iter().sum();
        let regions = w.regions();
        let mut n = 0u64;
        for acc in w.trace() {
            prop_assert!(regions.iter().any(|r| r.contains(acc.addr)));
            n += 1;
        }
        prop_assert_eq!(n, total);
    }

    /// Reuse-distance bookkeeping: per-page access counts sum to the
    /// total, and no mean distance can exceed the trace length.
    #[test]
    fn reuse_accounting(addrs in prop::collection::vec(0u64..64, 1..500)) {
        let mut a = ReuseAnalyzer::new();
        for &p in &addrs {
            a.observe_addr(VirtAddr::new(p * 0x1000));
        }
        let profiles = a.profiles();
        let total: u64 = profiles.iter().map(|p| p.accesses).sum();
        prop_assert_eq!(total, addrs.len() as u64);
        for p in &profiles {
            if let Some(d) = p.reuse_4k {
                prop_assert!(d >= 0.0 && d < addrs.len() as f64);
            }
        }
        let (f, h, l) = a.class_counts();
        prop_assert_eq!(f + h + l, profiles.len() as u64);
    }

    /// The PWC never reports more references than the raw walk needs,
    /// never fewer than 1, and its stats counters add up.
    #[test]
    fn pwc_reference_bounds(
        walks in prop::collection::vec((0u64..(1 << 34), 2u8..5), 1..300),
    ) {
        let mut pwc = PageWalkCache::typical();
        for &(addr, leaf) in &walks {
            let refs = pwc.walk(VirtAddr::new(addr), leaf);
            prop_assert!(refs >= 1 && refs <= leaf);
        }
        let s = *pwc.stats();
        prop_assert_eq!(s.walks, walks.len() as u64);
        prop_assert_eq!(
            s.pde_hits + s.pdpte_hits + s.pml4e_hits + s.misses,
            s.walks
        );
        prop_assert!(s.levels_referenced >= s.walks);
    }
}
