//! Supervised-execution suite: panic isolation, deterministic retry,
//! deadlines, and the failure surface the harness exposes to drivers.
//! These are the guarantees that make long `repro` runs survivable: one
//! bad cell degrades one row, never the grid.

use hpage::faults::{FaultKind, FaultPlan, FaultWindow};
use hpage::sim::{
    Cell, CellFailure, Event, Harness, PolicyChoice, SharedWorkload, Simulation, SupervisorConfig,
};
use hpage::telemetry::TelemetryRecorder;
use hpage::trace::{Pattern, SyntheticBuilder};
use hpage::types::SystemConfig;
use std::sync::Arc;

fn workload(seed: u64) -> SharedWorkload {
    let mut b = SyntheticBuilder::new("sup", seed);
    let a = b.array(8, (2 << 20) / 8);
    b.phase(a, Pattern::UniformRandom { count: 50_000 }, 0);
    Arc::new(b.build())
}

fn cells(n: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            Cell::new(
                format!("cell/{i}"),
                Simulation::new(SystemConfig::tiny(), PolicyChoice::pcc_default()),
                workload(i),
            )
        })
        .collect()
}

/// A plan that panics the first `failures` attempts of cell `at`.
fn panic_plan(at: u64, failures: u32) -> FaultPlan {
    FaultPlan::new(
        "test-panic",
        vec![FaultWindow {
            kind: FaultKind::CellPanic { failures },
            at,
            duration: 1,
        }],
    )
    .unwrap()
}

fn stall_plan(at: u64, duration: u64, millis: u64) -> FaultPlan {
    FaultPlan::new(
        "test-stall",
        vec![FaultWindow {
            kind: FaultKind::CellStall { millis },
            at,
            duration,
        }],
    )
    .unwrap()
}

#[test]
fn panicking_cell_fails_alone_while_the_grid_survives() {
    let h = Harness::new(2).with_supervisor(
        SupervisorConfig::default()
            .with_max_retries(0)
            .with_faults(panic_plan(1, 1)),
    );
    let results = h.run_supervised(cells(3));
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "cell 0 must survive cell 1's panic");
    assert!(results[2].is_ok(), "cell 2 must survive cell 1's panic");
    match &results[1] {
        Err(CellFailure::Panicked { message, attempts }) => {
            assert_eq!(*attempts, 1);
            assert!(message.contains("injected cell panic"), "{message}");
        }
        other => panic!("cell 1 should have panicked, got {other:?}"),
    }
    // The failure is on the log and the event stream.
    let failures = h.log().failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].label, "cell/1");
    assert!(h.supervisor_events().iter().any(|e| matches!(
        e,
        Event::CellPanicked {
            cell: 1,
            attempt: 1
        }
    )));
}

#[test]
fn run_panics_with_an_aggregate_message_only_after_the_grid_completes() {
    let h = Harness::new(2).with_supervisor(
        SupervisorConfig::default()
            .with_max_retries(0)
            .with_faults(panic_plan(0, 1)),
    );
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.run(cells(2))));
    let msg = match out {
        Err(payload) => *payload.downcast::<String>().expect("aggregate message"),
        Ok(_) => panic!("run() must surface the failed cell"),
    };
    assert!(msg.contains("1 cell(s) failed"), "{msg}");
    assert!(msg.contains("cell/0"), "{msg}");
    // The healthy cell still ran to completion before the panic.
    assert!(
        h.log().cells().iter().any(|c| c.label == "cell/1"),
        "surviving cell must complete before the aggregate panic"
    );
}

#[test]
fn retried_run_is_identical_to_a_clean_run() {
    let clean = Harness::new(4).run(cells(4));
    let h = Harness::new(4).with_supervisor(
        SupervisorConfig::default()
            .with_max_retries(3)
            .with_faults(panic_plan(2, 2)),
    );
    let retried = h.run(cells(4));
    assert_eq!(clean, retried, "retries must not perturb results");
    // Two failed attempts → attempts 2 and 3 were retries.
    let retries = h.log().retries();
    assert_eq!(retries.len(), 2, "{retries:?}");
    assert!(retries.iter().all(|r| r.label == "cell/2"));
    assert!(h
        .supervisor_events()
        .iter()
        .any(|e| matches!(e, Event::CellRetried { cell: 2, .. })));
}

#[test]
fn soft_deadline_flags_the_overrun_but_the_cell_completes() {
    let h = Harness::new(2).with_supervisor(
        SupervisorConfig::default()
            .with_soft_deadline_ms(10)
            .with_faults(stall_plan(0, 1, 80)),
    );
    let results = h.run_supervised(cells(2));
    assert!(
        results.iter().all(Result::is_ok),
        "soft deadline never kills"
    );
    let flags = h.log().deadline_flags();
    assert!(!flags.is_empty(), "the stalled cell must be flagged");
    assert!(flags.iter().all(|f| !f.hard));
    assert!(h
        .supervisor_events()
        .iter()
        .any(|e| matches!(e, Event::CellSoftDeadline { cell: 0, .. })));
}

#[test]
fn hard_deadline_abandons_the_stalled_cell() {
    let h = Harness::new(2).with_supervisor(
        SupervisorConfig::default()
            .with_max_retries(0)
            .with_soft_deadline_ms(5)
            .with_hard_deadline_ms(40)
            .with_faults(stall_plan(0, 1, 400)),
    );
    let results = h.run_supervised(cells(2));
    match &results[0] {
        Err(CellFailure::HardDeadline { limit_ms, attempts }) => {
            assert_eq!(*limit_ms, 40);
            assert_eq!(*attempts, 1);
        }
        other => panic!("stalled cell should hit the hard deadline, got {other:?}"),
    }
    assert!(results[1].is_ok(), "the healthy cell is unaffected");
    let flags = h.log().deadline_flags();
    assert!(flags.iter().any(|f| f.hard), "{flags:?}");
    assert!(h.supervisor_events().iter().any(|e| matches!(
        e,
        Event::CellHardDeadline {
            cell: 0,
            attempt: 1
        }
    )));
}

#[test]
fn backoff_is_seeded_per_cell_and_bounded() {
    let a = SupervisorConfig::default()
        .with_retry_seed(7)
        .with_max_backoff_ms(20);
    let b = SupervisorConfig::default()
        .with_retry_seed(7)
        .with_max_backoff_ms(20);
    for attempt in 2..6 {
        assert_eq!(
            a.backoff_ms("fig7/BFS/pcc", attempt),
            b.backoff_ms("fig7/BFS/pcc", attempt),
            "backoff must be a pure function of (seed, label, attempt)"
        );
        assert!(a.backoff_ms("fig7/BFS/pcc", attempt) <= 20);
    }
    // A different seed moves the schedule (with overwhelming likelihood
    // over four attempts × 21 buckets).
    let c = SupervisorConfig::default()
        .with_retry_seed(8)
        .with_max_backoff_ms(20);
    assert!(
        (2..6).any(|n| a.backoff_ms("fig7/BFS/pcc", n) != c.backoff_ms("fig7/BFS/pcc", n)),
        "different retry seeds should produce different schedules"
    );
    // Zero budget means no sleeping at all.
    let z = SupervisorConfig::default().with_max_backoff_ms(0);
    assert_eq!(z.backoff_ms("any", 2), 0);
}

#[test]
fn supervisor_events_flow_into_telemetry_counters() {
    let h = Harness::new(2).with_supervisor(
        SupervisorConfig::default()
            .with_max_retries(1)
            .with_faults(panic_plan(0, 1)),
    );
    let _ = h.run(cells(2));
    let mut t = TelemetryRecorder::new();
    for e in h.supervisor_events() {
        use hpage::sim::Recorder;
        t.record(0, e);
    }
    assert_eq!(t.metrics().counter("cell.panic"), 1);
    assert_eq!(t.metrics().counter("cell.retry"), 1);
}
