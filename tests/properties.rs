//! Property-based tests (proptest) over the core data structures'
//! invariants: the PCC, the TLBs, the page table, and the physical
//! memory accounting.

use hpage::os::PhysicalMemory;
use hpage::pcc::{Pcc, PccEvent, ReplacementPolicy};
use hpage::tlb::{PageTable, SetAssocTlb, Translation};
use hpage::types::{PageSize, PccConfig, Pfn, TlbLevelConfig, VirtAddr, Vpn};
use proptest::prelude::*;

fn region(i: u64) -> Vpn {
    Vpn::new(i, PageSize::Huge2M)
}

proptest! {
    /// The PCC never exceeds capacity, never double-tracks a region, and
    /// its dump is always sorted by descending frequency — under any
    /// interleaving of walks (hot/cold) and invalidations.
    #[test]
    fn pcc_capacity_and_ranking_invariants(
        ops in prop::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..600),
        entries in 1u32..32,
    ) {
        let cfg = PccConfig::paper_2m().with_entries(entries);
        let mut pcc = Pcc::new(cfg, PageSize::Huge2M);
        for (r, warm, invalidate) in ops {
            if invalidate {
                pcc.invalidate(region(r));
            } else {
                pcc.record_walk(region(r), warm);
            }
            prop_assert!(pcc.len() <= entries as usize);
            let dump = pcc.dump();
            // No duplicate regions.
            let mut seen = std::collections::HashSet::new();
            for c in &dump {
                prop_assert!(seen.insert(c.region.index()));
                prop_assert!(c.frequency <= cfg.counter_max());
            }
            // Sorted by descending frequency.
            prop_assert!(dump.windows(2).all(|w| w[0].frequency >= w[1].frequency));
        }
    }

    /// With the cold-miss filter on, a region is only ever admitted via a
    /// warm walk.
    #[test]
    fn pcc_filter_blocks_cold_admissions(rs in prop::collection::vec(0u64..32, 1..200)) {
        let mut pcc = Pcc::new(PccConfig::paper_2m().with_entries(8), PageSize::Huge2M);
        for r in rs {
            let ev = pcc.record_walk(region(r), false);
            prop_assert_eq!(ev, PccEvent::FilteredColdMiss);
        }
        prop_assert!(pcc.is_empty());
    }

    /// LFU+LRU and pure LRU agree when all frequencies are zero (the
    /// paper's observation for why the simple policy suffices).
    #[test]
    fn replacement_policies_agree_at_zero_frequency(
        rs in prop::collection::vec(0u64..1000, 1..300),
    ) {
        let cfg = PccConfig::paper_2m().with_entries(8);
        let mut lfu = Pcc::with_replacement(cfg, PageSize::Huge2M, ReplacementPolicy::LfuWithLruTiebreak);
        let mut lru = Pcc::with_replacement(cfg, PageSize::Huge2M, ReplacementPolicy::Lru);
        // Feed each region exactly once (all frequencies stay 0).
        let mut seen = std::collections::HashSet::new();
        for r in rs {
            if seen.insert(r) {
                let e1 = lfu.record_walk(region(r), true);
                let e2 = lru.record_walk(region(r), true);
                prop_assert_eq!(e1, e2);
            }
        }
        let d1: Vec<_> = lfu.dump();
        let d2: Vec<_> = lru.dump();
        prop_assert_eq!(d1, d2);
    }

    /// TLB: contents after any op sequence never exceed capacity; a
    /// lookup immediately after an insert hits; invalidation removes.
    #[test]
    fn tlb_invariants(
        ops in prop::collection::vec((0u64..128, 0u8..3), 1..400),
        entries_pow in 2u32..6,
        ways_pow in 0u32..3,
    ) {
        let entries = 1u32 << entries_pow;
        let ways = (1u32 << ways_pow).min(entries);
        let mut tlb = SetAssocTlb::new(TlbLevelConfig::new(entries, ways));
        for (page, op) in ops {
            let t = Translation {
                vpn: Vpn::new(page, PageSize::Base4K),
                pfn: Pfn::new(page, PageSize::Base4K),
            };
            match op {
                0 => {
                    tlb.insert(t);
                    prop_assert_eq!(tlb.probe(t.vpn), Some(t));
                }
                1 => {
                    tlb.invalidate(t.vpn);
                    prop_assert_eq!(tlb.probe(t.vpn), None);
                }
                _ => {
                    let _ = tlb.lookup(t.vpn);
                }
            }
            prop_assert!(tlb.len() <= entries as usize);
        }
    }

    /// Page table: map/walk/unmap round-trips preserve translations, and
    /// a promotion makes every constituent base page translate to the
    /// same huge frame.
    #[test]
    fn page_table_roundtrip(pages in prop::collection::hash_set(0u64..512, 1..64)) {
        let mut pt = PageTable::new();
        let region = Vpn::new(3, PageSize::Huge2M);
        let bases: Vec<Vpn> = region.split(PageSize::Base4K).collect();
        for &p in &pages {
            pt.map(bases[p as usize], Pfn::new(p, PageSize::Base4K)).unwrap();
        }
        prop_assert_eq!(pt.mapped_base_pages_in(region), pages.len() as u64);
        for &p in &pages {
            let t = pt.translate(bases[p as usize].base()).unwrap();
            prop_assert_eq!(t.pfn.index(), p);
        }
        // Promote and verify.
        let huge = Pfn::new(9, PageSize::Huge2M);
        let old = pt.promote_2m(region, huge).unwrap();
        prop_assert_eq!(old.len(), pages.len());
        for &p in &pages {
            let t = pt.translate(bases[p as usize].base()).unwrap();
            prop_assert_eq!(t.pfn, huge);
            prop_assert_eq!(t.size(), PageSize::Huge2M);
        }
    }

    /// Physical memory conservation: free frames + used frames is
    /// constant under any alloc/free sequence, and huge allocation
    /// consumes exactly 512 frames of capacity.
    #[test]
    fn physmem_conservation(ops in prop::collection::vec(0u8..3, 1..200)) {
        let mut pm = PhysicalMemory::new(16 << 21);
        let total = pm.total_frames();
        let mut base_pfns = Vec::new();
        let mut huge_pfns = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Ok(p) = pm.alloc_base() {
                        base_pfns.push(p);
                    }
                }
                1 => {
                    if let Ok(h) = pm.alloc_huge(true) {
                        huge_pfns.push(h.pfn);
                    }
                }
                _ => {
                    if let Some(p) = base_pfns.pop() {
                        pm.free_base(p).unwrap();
                    } else if let Some(h) = huge_pfns.pop() {
                        pm.free_huge(h).unwrap();
                    }
                }
            }
            let used = base_pfns.len() as u64 + 512 * huge_pfns.len() as u64;
            prop_assert_eq!(pm.free_frames() + used, total);
        }
    }

    /// OS-level interleavings: any mix of faults, promotions, demotions,
    /// reclaiming demotions, and the huge splits they trigger keeps the
    /// global frame balance (`total == free + used`) and the per-block
    /// huge/base exclusivity invariants intact.
    #[test]
    fn os_interleavings_preserve_frame_invariants(
        ops in prop::collection::vec((0u64..4, 0u8..4, 0u64..512), 1..120),
    ) {
        use hpage::os::AddressSpace;
        use hpage::types::ProcessId;
        let mut pm = PhysicalMemory::new(32 << 21);
        let mut space = AddressSpace::new(ProcessId(0));
        let total = pm.total_frames();
        for (r, op, page) in ops {
            let region = Vpn::new(r, PageSize::Huge2M);
            match op {
                0 => {
                    let va = region.base().offset(page * 4096);
                    if space.page_table().translate(va).is_none() {
                        space.fault(va, false, &mut pm).unwrap();
                    }
                }
                1 => {
                    // Fails when the region is empty or already huge.
                    let _ = space.promote(region, true, 0, &mut pm);
                }
                2 => {
                    let _ = space.demote(region, &mut pm);
                }
                _ => {
                    let _ = space.demote_and_reclaim(region, &mut pm);
                }
            }
            prop_assert_eq!(pm.free_frames() + pm.used_frames(), total);
            let broken = pm.check_block_invariants();
            prop_assert!(broken.is_empty(), "block invariants broken: {:?}", broken);
        }
    }

    /// Frees reject bad arguments instead of corrupting accounting: a
    /// double free or a free of a never-allocated huge frame is a typed
    /// error and leaves the frame counts unchanged.
    #[test]
    fn physmem_rejects_invalid_frees(blocks in 2u64..16) {
        let mut pm = PhysicalMemory::new(blocks << 21);
        let h = pm.alloc_huge(true).unwrap();
        pm.free_huge(h.pfn).unwrap();
        let free_before = pm.free_frames();
        prop_assert!(pm.free_huge(h.pfn).is_err());
        let p = pm.alloc_base().unwrap();
        pm.free_base(p).unwrap();
        prop_assert!(pm.free_base(p).is_err());
        prop_assert_eq!(pm.free_frames(), free_before);
    }

    /// Address arithmetic: splitting any huge VPN into base pages and
    /// taking each one's containing region is the identity.
    #[test]
    fn vpn_split_containing_roundtrip(idx in 0u64..(1 << 30)) {
        let huge = Vpn::new(idx, PageSize::Huge2M);
        for (i, base) in huge.split(PageSize::Base4K).enumerate().step_by(97) {
            prop_assert_eq!(base.containing(PageSize::Huge2M), huge);
            prop_assert_eq!(base.index(), idx * 512 + i as u64);
        }
        // Base address of the region is 2MiB-aligned.
        prop_assert!(huge.base().is_aligned(PageSize::Huge2M));
    }

    /// The 2MB VPN of any address equals the 2MB VPN of its 4K page's
    /// base — tag extraction is consistent at every granularity.
    #[test]
    fn prefix_consistency(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        let via_page = va.vpn(PageSize::Base4K).base().vpn(PageSize::Huge2M);
        prop_assert_eq!(va.vpn(PageSize::Huge2M), via_page);
        prop_assert_eq!(
            va.vpn(PageSize::Base4K).containing(PageSize::Huge1G),
            va.vpn(PageSize::Huge1G)
        );
    }
}
