//! Property-based tests (proptest) over the core data structures'
//! invariants: the PCC, the TLBs, the page table, and the physical
//! memory accounting.

use hpage::os::PhysicalMemory;
use hpage::pcc::{Pcc, PccEvent, ReplacementPolicy};
use hpage::tlb::{PageTable, PageWalkCache, SetAssocTlb, Translation};
use hpage::types::{derive_seed, PageSize, PccConfig, Pfn, TlbLevelConfig, VirtAddr, Vpn};
use proptest::prelude::*;

fn region(i: u64) -> Vpn {
    Vpn::new(i, PageSize::Huge2M)
}

proptest! {
    /// The PCC never exceeds capacity, never double-tracks a region, and
    /// its dump is always sorted by descending frequency — under any
    /// interleaving of walks (hot/cold) and invalidations.
    #[test]
    fn pcc_capacity_and_ranking_invariants(
        ops in prop::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..600),
        entries in 1u32..32,
    ) {
        let cfg = PccConfig::paper_2m().with_entries(entries);
        let mut pcc = Pcc::new(cfg, PageSize::Huge2M);
        for (r, warm, invalidate) in ops {
            if invalidate {
                pcc.invalidate(region(r));
            } else {
                pcc.record_walk(region(r), warm);
            }
            prop_assert!(pcc.len() <= entries as usize);
            let dump = pcc.dump();
            // No duplicate regions.
            let mut seen = std::collections::HashSet::new();
            for c in &dump {
                prop_assert!(seen.insert(c.region.index()));
                prop_assert!(c.frequency <= cfg.counter_max());
            }
            // Sorted by descending frequency.
            prop_assert!(dump.windows(2).all(|w| w[0].frequency >= w[1].frequency));
        }
    }

    /// With the cold-miss filter on, a region is only ever admitted via a
    /// warm walk.
    #[test]
    fn pcc_filter_blocks_cold_admissions(rs in prop::collection::vec(0u64..32, 1..200)) {
        let mut pcc = Pcc::new(PccConfig::paper_2m().with_entries(8), PageSize::Huge2M);
        for r in rs {
            let ev = pcc.record_walk(region(r), false);
            prop_assert_eq!(ev, PccEvent::FilteredColdMiss);
        }
        prop_assert!(pcc.is_empty());
    }

    /// LFU+LRU and pure LRU agree when all frequencies are zero (the
    /// paper's observation for why the simple policy suffices).
    #[test]
    fn replacement_policies_agree_at_zero_frequency(
        rs in prop::collection::vec(0u64..1000, 1..300),
    ) {
        let cfg = PccConfig::paper_2m().with_entries(8);
        let mut lfu = Pcc::with_replacement(cfg, PageSize::Huge2M, ReplacementPolicy::LfuWithLruTiebreak);
        let mut lru = Pcc::with_replacement(cfg, PageSize::Huge2M, ReplacementPolicy::Lru);
        // Feed each region exactly once (all frequencies stay 0).
        let mut seen = std::collections::HashSet::new();
        for r in rs {
            if seen.insert(r) {
                let e1 = lfu.record_walk(region(r), true);
                let e2 = lru.record_walk(region(r), true);
                prop_assert_eq!(e1, e2);
            }
        }
        let d1: Vec<_> = lfu.dump();
        let d2: Vec<_> = lru.dump();
        prop_assert_eq!(d1, d2);
    }

    /// TLB: contents after any op sequence never exceed capacity; a
    /// lookup immediately after an insert hits; invalidation removes.
    #[test]
    fn tlb_invariants(
        ops in prop::collection::vec((0u64..128, 0u8..3), 1..400),
        entries_pow in 2u32..6,
        ways_pow in 0u32..3,
    ) {
        let entries = 1u32 << entries_pow;
        let ways = (1u32 << ways_pow).min(entries);
        let mut tlb = SetAssocTlb::new(TlbLevelConfig::new(entries, ways));
        for (page, op) in ops {
            let t = Translation {
                vpn: Vpn::new(page, PageSize::Base4K),
                pfn: Pfn::new(page, PageSize::Base4K),
            };
            match op {
                0 => {
                    tlb.insert(t);
                    prop_assert_eq!(tlb.probe(t.vpn), Some(t));
                }
                1 => {
                    tlb.invalidate(t.vpn);
                    prop_assert_eq!(tlb.probe(t.vpn), None);
                }
                _ => {
                    let _ = tlb.lookup(t.vpn);
                }
            }
            prop_assert!(tlb.len() <= entries as usize);
        }
    }

    /// The flat-slab set-associative TLB is observationally equivalent
    /// to a straightforward per-set LRU-list model — same hit results,
    /// same eviction victims, same residency — under any interleaving of
    /// inserts, lookups, touches, and invalidations. This pins the
    /// eviction order the seq tie-break fix made deterministic: the
    /// model's list order *is* insertion-then-recency order, so any
    /// position-dependent tie-break (the old `swap_remove` perturbation)
    /// shows up as a victim mismatch.
    #[test]
    fn tlb_matches_reference_lru_model(
        ops in prop::collection::vec((0u64..96, 0u8..4), 1..500),
        entries_pow in 2u32..6,
        ways_pow in 0u32..3,
    ) {
        let entries = 1u32 << entries_pow;
        let ways = (1u32 << ways_pow).min(entries);
        let sets = (entries / ways) as usize;
        let mut tlb = SetAssocTlb::new(TlbLevelConfig::new(entries, ways));
        // One LRU-to-MRU ordered list per set.
        let mut model: Vec<Vec<Translation>> = vec![Vec::new(); sets];
        for (page, op) in ops {
            let vpn = Vpn::new(page, PageSize::Base4K);
            let t = Translation { vpn, pfn: Pfn::new(page + 7, PageSize::Base4K) };
            let set = &mut model[(page % sets as u64) as usize];
            match op {
                0 => {
                    let expected = if let Some(pos) = set.iter().position(|e| e.vpn == vpn) {
                        set.remove(pos);
                        set.push(t);
                        None
                    } else if set.len() == ways as usize {
                        let victim = set.remove(0);
                        set.push(t);
                        Some(victim)
                    } else {
                        set.push(t);
                        None
                    };
                    prop_assert_eq!(tlb.insert(t), expected);
                }
                1 => {
                    let expected = set.iter().position(|e| e.vpn == vpn).map(|pos| {
                        let e = set.remove(pos);
                        set.push(e);
                        e
                    });
                    prop_assert_eq!(tlb.lookup(vpn), expected);
                }
                2 => {
                    // `touch` hits exactly like `lookup`, misses like
                    // `probe` (no state change) — same model either way.
                    let expected = set.iter().position(|e| e.vpn == vpn).map(|pos| {
                        let e = set.remove(pos);
                        set.push(e);
                        e
                    });
                    prop_assert_eq!(tlb.touch(vpn), expected);
                }
                _ => {
                    let existed = match set.iter().position(|e| e.vpn == vpn) {
                        Some(pos) => {
                            set.remove(pos);
                            true
                        }
                        None => false,
                    };
                    prop_assert_eq!(tlb.invalidate(vpn), existed);
                }
            }
            prop_assert_eq!(tlb.len(), model.iter().map(Vec::len).sum::<usize>());
        }
        for set in &model {
            for e in set {
                prop_assert_eq!(tlb.probe(e.vpn), Some(*e));
            }
        }
    }

    /// Page table: map/walk/unmap round-trips preserve translations, and
    /// a promotion makes every constituent base page translate to the
    /// same huge frame.
    #[test]
    fn page_table_roundtrip(pages in prop::collection::hash_set(0u64..512, 1..64)) {
        let mut pt = PageTable::new();
        let region = Vpn::new(3, PageSize::Huge2M);
        let bases: Vec<Vpn> = region.split(PageSize::Base4K).collect();
        for &p in &pages {
            pt.map(bases[p as usize], Pfn::new(p, PageSize::Base4K)).unwrap();
        }
        prop_assert_eq!(pt.mapped_base_pages_in(region), pages.len() as u64);
        for &p in &pages {
            let t = pt.translate(bases[p as usize].base()).unwrap();
            prop_assert_eq!(t.pfn.index(), p);
        }
        // Promote and verify.
        let huge = Pfn::new(9, PageSize::Huge2M);
        let old = pt.promote_2m(region, huge).unwrap();
        prop_assert_eq!(old.len(), pages.len());
        for &p in &pages {
            let t = pt.translate(bases[p as usize].base()).unwrap();
            prop_assert_eq!(t.pfn, huge);
            prop_assert_eq!(t.size(), PageSize::Huge2M);
        }
    }

    /// Hasher-independence diff test: the page table (whose radix levels
    /// key on the vendored Fx hash) holds exactly the contents of a
    /// SipHash-keyed mirror map under any interleaving of map, unmap,
    /// promote, and demote — hashing affects bucket placement only,
    /// never which translations exist or what they resolve to.
    #[test]
    fn page_table_contents_match_siphash_mirror(
        ops in prop::collection::vec((0u64..4, 0u64..512, 0u8..4), 1..250),
    ) {
        // std::collections::HashMap with RandomState = SipHash.
        let mut mirror: std::collections::HashMap<Vpn, Pfn> = std::collections::HashMap::new();
        let mut pt = PageTable::new();
        let mut next_frame = 0u64;
        for (r, page, op) in ops {
            let region = Vpn::new(r, PageSize::Huge2M);
            let base = Vpn::new(r * 512 + page, PageSize::Base4K);
            match op {
                0 => {
                    // Map a base page (no-op when the page, or a huge
                    // mapping covering it, already exists).
                    if pt.translate(base.base()).is_none() {
                        let pfn = Pfn::new(next_frame, PageSize::Base4K);
                        next_frame += 1;
                        pt.map(base, pfn).unwrap();
                        mirror.insert(base, pfn);
                    }
                }
                1 => {
                    let in_mirror = mirror.remove(&base).is_some();
                    prop_assert_eq!(pt.unmap(base).is_ok(), in_mirror);
                }
                2 => {
                    let huge = Pfn::new(next_frame, PageSize::Huge2M);
                    next_frame += 1;
                    if pt.promote_2m(region, huge).is_ok() {
                        mirror.retain(|vpn, _| vpn.containing(PageSize::Huge2M) != region
                            || vpn.size() != PageSize::Base4K);
                        mirror.insert(region, huge);
                    }
                }
                _ => {
                    // Demote back to base pages at fresh frames.
                    let pfns: Vec<Pfn> = (0..512)
                        .map(|i| Pfn::new(next_frame + i, PageSize::Base4K))
                        .collect();
                    if pt.demote_2m(region, &pfns).is_ok() {
                        next_frame += 512;
                        mirror.remove(&region);
                        for (i, vpn) in region.split(PageSize::Base4K).enumerate() {
                            mirror.insert(vpn, pfns[i]);
                        }
                    }
                }
            }
            // Every mirror entry translates identically through the
            // radix table, and nothing else is mapped.
            let mut count = 0u64;
            for r in 0..4u64 {
                let region = Vpn::new(r, PageSize::Huge2M);
                if pt.is_huge_mapped(region) {
                    // A huge leaf reports all 512 constituent base
                    // pages as mapped; the mirror holds one entry.
                    count += 1;
                } else {
                    count += pt.mapped_base_pages_in(region);
                }
            }
            prop_assert_eq!(count as usize, mirror.len());
            for (vpn, pfn) in &mirror {
                let t = pt.translate(vpn.base());
                prop_assert_eq!(t.map(|t| t.pfn), Some(*pfn));
            }
        }
    }

    /// Physical memory conservation: free frames + used frames is
    /// constant under any alloc/free sequence, and huge allocation
    /// consumes exactly 512 frames of capacity.
    #[test]
    fn physmem_conservation(ops in prop::collection::vec(0u8..3, 1..200)) {
        let mut pm = PhysicalMemory::new(16 << 21);
        let total = pm.total_frames();
        let mut base_pfns = Vec::new();
        let mut huge_pfns = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Ok(p) = pm.alloc_base() {
                        base_pfns.push(p);
                    }
                }
                1 => {
                    if let Ok(h) = pm.alloc_huge(true) {
                        huge_pfns.push(h.pfn);
                    }
                }
                _ => {
                    if let Some(p) = base_pfns.pop() {
                        pm.free_base(p).unwrap();
                    } else if let Some(h) = huge_pfns.pop() {
                        pm.free_huge(h).unwrap();
                    }
                }
            }
            let used = base_pfns.len() as u64 + 512 * huge_pfns.len() as u64;
            prop_assert_eq!(pm.free_frames() + used, total);
        }
    }

    /// OS-level interleavings: any mix of faults, promotions, demotions,
    /// reclaiming demotions, and the huge splits they trigger keeps the
    /// global frame balance (`total == free + used`) and the per-block
    /// huge/base exclusivity invariants intact.
    #[test]
    fn os_interleavings_preserve_frame_invariants(
        ops in prop::collection::vec((0u64..4, 0u8..4, 0u64..512), 1..120),
    ) {
        use hpage::os::AddressSpace;
        use hpage::types::ProcessId;
        let mut pm = PhysicalMemory::new(32 << 21);
        let mut space = AddressSpace::new(ProcessId(0));
        let total = pm.total_frames();
        for (r, op, page) in ops {
            let region = Vpn::new(r, PageSize::Huge2M);
            match op {
                0 => {
                    let va = region.base().offset(page * 4096);
                    if space.page_table().translate(va).is_none() {
                        space.fault(va, false, &mut pm).unwrap();
                    }
                }
                1 => {
                    // Fails when the region is empty or already huge.
                    let _ = space.promote(region, true, 0, &mut pm);
                }
                2 => {
                    let _ = space.demote(region, &mut pm);
                }
                _ => {
                    let _ = space.demote_and_reclaim(region, &mut pm);
                }
            }
            prop_assert_eq!(pm.free_frames() + pm.used_frames(), total);
            let broken = pm.check_block_invariants();
            prop_assert!(broken.is_empty(), "block invariants broken: {:?}", broken);
        }
    }

    /// Frees reject bad arguments instead of corrupting accounting: a
    /// double free or a free of a never-allocated huge frame is a typed
    /// error and leaves the frame counts unchanged.
    #[test]
    fn physmem_rejects_invalid_frees(blocks in 2u64..16) {
        let mut pm = PhysicalMemory::new(blocks << 21);
        let h = pm.alloc_huge(true).unwrap();
        pm.free_huge(h.pfn).unwrap();
        let free_before = pm.free_frames();
        prop_assert!(pm.free_huge(h.pfn).is_err());
        let p = pm.alloc_base().unwrap();
        pm.free_base(p).unwrap();
        prop_assert!(pm.free_base(p).is_err());
        prop_assert_eq!(pm.free_frames(), free_before);
    }

    /// Address arithmetic: splitting any huge VPN into base pages and
    /// taking each one's containing region is the identity.
    #[test]
    fn vpn_split_containing_roundtrip(idx in 0u64..(1 << 30)) {
        let huge = Vpn::new(idx, PageSize::Huge2M);
        for (i, base) in huge.split(PageSize::Base4K).enumerate().step_by(97) {
            prop_assert_eq!(base.containing(PageSize::Huge2M), huge);
            prop_assert_eq!(base.index(), idx * 512 + i as u64);
        }
        // Base address of the region is 2MiB-aligned.
        prop_assert!(huge.base().is_aligned(PageSize::Huge2M));
    }

    /// The 2MB VPN of any address equals the 2MB VPN of its 4K page's
    /// base — tag extraction is consistent at every granularity.
    #[test]
    fn prefix_consistency(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        let via_page = va.vpn(PageSize::Base4K).base().vpn(PageSize::Huge2M);
        prop_assert_eq!(va.vpn(PageSize::Huge2M), via_page);
        prop_assert_eq!(
            va.vpn(PageSize::Base4K).containing(PageSize::Huge1G),
            va.vpn(PageSize::Huge1G)
        );
    }

    /// The native paging-structure cache is exactly a deepest-hit-wins
    /// walker over three true-LRU arrays: a BTreeMap reference model
    /// driven by the same per-walk clock predicts every reference count
    /// under arbitrary interleavings of walks at all three leaf depths,
    /// region invalidations, and full flushes — the same technique that
    /// pins the nested (2D) walker in `hpage::tlb::nested`.
    #[test]
    fn pwc_matches_reference_lru_model(
        ops in prop::collection::vec((0u64..2048, 0u8..3, 0u8..10), 1..500),
    ) {
        // Tiny geometry so evictions actually happen.
        let mut pwc = PageWalkCache::new(1, 2, 4);
        let mut arrays = [RefLruArray::new(1), RefLruArray::new(2), RefLruArray::new(4)];
        let mut clock = 0u64;
        for (i, &(page, leaf_sel, op)) in ops.iter().enumerate() {
            // Spread pages over several 512G/1G regions so every array
            // sees distinct tags.
            let va = VirtAddr::new((page << 12) | ((page & 7) << 30) | ((page & 1) << 39));
            match op {
                8 => {
                    let region = va.vpn(PageSize::Huge2M);
                    pwc.invalidate_region(region);
                    let g = region.containing(PageSize::Huge1G).index();
                    arrays[1].map.remove(&g);
                    arrays[2].map.remove(&region.index());
                }
                9 => {
                    pwc.flush();
                    for a in &mut arrays {
                        a.map.clear();
                    }
                }
                _ => {
                    let leaf = 2 + (leaf_sel % 3);
                    let got = pwc.walk(va, leaf);
                    let want = ref_pwc_walk(&mut arrays, &mut clock, va, leaf);
                    prop_assert_eq!(got, want, "divergence at op {}", i);
                    prop_assert!((1..=4).contains(&got));
                }
            }
        }
    }

    /// `derive_seed` keeps every purpose stream independent: the seeds
    /// the simulator derives for fragmentation, per-VM host layouts
    /// (`host-frag-<pid>`), virtualization workloads (`virt/<i>`), and
    /// consolidation tenants never collide with each other or the root
    /// seed, and each responds to the root seed changing.
    #[test]
    fn derive_seed_purpose_streams_are_independent(seed in any::<u64>()) {
        let purposes = [
            "frag",
            "host-frag-0",
            "host-frag-1",
            "host-frag-10",
            "virt/0",
            "virt/1",
            "virt/3",
            "consolidation/0",
            "consolidation/1",
        ];
        let derived: Vec<u64> = purposes.iter().map(|p| derive_seed(seed, p)).collect();
        for (i, &a) in derived.iter().enumerate() {
            prop_assert_ne!(a, seed, "purpose {} must not alias the root", purposes[i]);
            for (j, &b) in derived.iter().enumerate().skip(i + 1) {
                prop_assert_ne!(
                    a, b,
                    "purposes {} and {} collided", purposes[i], purposes[j]
                );
            }
            // The stream tracks the root seed, not just the purpose.
            prop_assert_ne!(a, derive_seed(seed ^ 1, purposes[i]));
        }
    }
}

/// One fully associative true-LRU array of the reference PWC model.
struct RefLruArray {
    cap: usize,
    map: std::collections::BTreeMap<u64, u64>,
}

impl RefLruArray {
    fn new(cap: usize) -> Self {
        RefLruArray {
            cap,
            map: std::collections::BTreeMap::new(),
        }
    }

    /// Refreshes recency on a hit.
    fn touch(&mut self, tag: u64, clock: u64) -> bool {
        if let Some(t) = self.map.get_mut(&tag) {
            *t = clock;
            true
        } else {
            false
        }
    }

    /// Inserts, evicting the least recently used entry when full.
    fn insert(&mut self, tag: u64, clock: u64) {
        if self.touch(tag, clock) {
            return;
        }
        if self.map.len() == self.cap {
            let lru = self
                .map
                .iter()
                .min_by_key(|&(_, &t)| t)
                .map(|(&k, _)| k)
                .expect("cap > 0");
            self.map.remove(&lru);
        }
        self.map.insert(tag, clock);
    }
}

/// Reference deepest-hit-wins walk mirroring
/// [`hpage::tlb::PageWalkCache::walk`]: one clock tick per walk, hit
/// stops the upward probe, every traversed non-leaf prefix installs
/// (leaves are never cached).
fn ref_pwc_walk(arrays: &mut [RefLruArray; 3], clock: &mut u64, va: VirtAddr, leaf: u8) -> u8 {
    *clock += 1;
    let t512 = va.raw() >> 39;
    let t1g = va.vpn(PageSize::Huge1G).index();
    let t2m = va.vpn(PageSize::Huge2M).index();
    if leaf == 4 && arrays[2].touch(t2m, *clock) {
        return 1;
    }
    if leaf >= 3 && arrays[1].touch(t1g, *clock) {
        if leaf == 4 {
            arrays[2].insert(t2m, *clock);
        }
        return leaf - 2;
    }
    if arrays[0].touch(t512, *clock) {
        if leaf >= 3 {
            arrays[1].insert(t1g, *clock);
        }
        if leaf == 4 {
            arrays[2].insert(t2m, *clock);
        }
        return leaf - 1;
    }
    arrays[0].insert(t512, *clock);
    if leaf >= 3 {
        arrays[1].insert(t1g, *clock);
    }
    if leaf == 4 {
        arrays[2].insert(t2m, *clock);
    }
    leaf
}
