//! Integration tests exercising the full pipeline across crates:
//! workload trace → TLB hierarchy → page-table walker → PCC → OS
//! promotion engine → timing model.

use hpage::os::PromotionBudget;
use hpage::sim::{PolicyChoice, ProcessSpec, SimProfile, Simulation};
use hpage::trace::{
    instantiate, AppId, Dataset, Pattern, SyntheticBuilder, SyntheticWorkload, Workload,
};
use hpage::types::{PromotionPolicyKind, SystemConfig};

fn zipf_workload(mb: u64, accesses: u64, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("zipf", seed);
    let a = b.array(8, mb * (1 << 20) / 8);
    b.phase(
        a,
        Pattern::Zipf {
            count: accesses,
            exponent: 0.8,
        },
        5,
    );
    b.build()
}

#[test]
fn pipeline_conservation_invariants() {
    let w = zipf_workload(16, 300_000, 1);
    let report = Simulation::new(SystemConfig::tiny(), PolicyChoice::pcc_default())
        .run(&[ProcessSpec::new(&w)]);
    let a = &report.aggregate;
    // Every access is exactly one of: L1 hit, L2 hit, or walk.
    assert_eq!(a.l1_hits + a.l2_hits + a.walks, a.accesses);
    // Every touched page faulted exactly once; faults are a subset of
    // walks.
    assert!(a.faults_base + a.faults_huge <= a.walks);
    // Walk levels are within [2, 4] per walk.
    assert!(a.walk_levels >= 2 * a.walks && a.walk_levels <= 4 * a.walks);
    // Each promotion shoots down at least one core's TLBs.
    assert!(a.shootdowns >= a.promotions);
}

#[test]
fn policy_ordering_on_skewed_workload() {
    // The paper's central comparison at one operating point: with a tight
    // promotion budget, PCC >= HawkEye >= nothing, and ideal bounds all.
    let w = zipf_workload(32, 800_000, 2);
    let config = SystemConfig::tiny();
    let timing = config.timing;
    let budget = PromotionBudget::percent_of_footprint(8, w.footprint_bytes());
    let run = |policy: PolicyChoice| {
        Simulation::new(config.clone(), policy)
            .with_budget(budget)
            .run(&[ProcessSpec::new(&w)])
    };
    let base = run(PolicyChoice::BasePages);
    let hawkeye = run(PolicyChoice::HawkEye);
    let pcc = run(PolicyChoice::pcc_default());
    let ideal =
        Simulation::new(config.clone(), PolicyChoice::IdealHuge).run(&[ProcessSpec::new(&w)]);

    let s_hawkeye = hawkeye.speedup_over(&base, &timing);
    let s_pcc = pcc.speedup_over(&base, &timing);
    let s_ideal = ideal.speedup_over(&base, &timing);
    assert!(s_pcc > 1.02, "pcc should speed up: {s_pcc}");
    assert!(
        s_pcc >= s_hawkeye - 0.02,
        "pcc {s_pcc} vs hawkeye {s_hawkeye}"
    );
    assert!(s_ideal >= s_pcc - 0.02, "ideal {s_ideal} vs pcc {s_pcc}");
}

#[test]
fn graph_pipeline_at_tlb_pressure() {
    // BFS at a scale where the footprint exceeds the scaled TLB reach:
    // baseline walks are substantial and the PCC removes most of them.
    let profile = SimProfile::scaled().with_graph_scale(18);
    let w = instantiate(AppId::Bfs, Dataset::Kronecker, profile.workloads, 3);
    let profile = profile.sized_for(w.footprint_bytes());
    let run = |policy: PolicyChoice| {
        Simulation::new(profile.system.clone(), policy)
            .with_max_accesses_per_core(3_000_000)
            .run(&[ProcessSpec::new(&w)])
    };
    let base = run(PolicyChoice::BasePages);
    let pcc = run(PolicyChoice::pcc_default());
    assert!(
        base.aggregate.walk_ratio() > 0.05,
        "baseline PTW rate too low: {}",
        base.aggregate.walk_ratio()
    );
    assert!(
        pcc.aggregate.walk_ratio() < base.aggregate.walk_ratio() / 2.0,
        "pcc {} vs base {}",
        pcc.aggregate.walk_ratio(),
        base.aggregate.walk_ratio()
    );
    assert!(pcc.aggregate.promotions > 0);
}

#[test]
fn multithreaded_graph_partitions_address_space() {
    let profile = SimProfile::scaled().with_graph_scale(14);
    let w = instantiate(AppId::PageRank, Dataset::Kronecker, profile.workloads, 4);
    let profile = profile.sized_for(w.footprint_bytes());
    for threads in [2u32, 4] {
        let report = Simulation::new(profile.system.clone(), PolicyChoice::pcc_default())
            .with_max_accesses_per_core(500_000)
            .run(&[ProcessSpec::with_threads(&w, threads)]);
        assert!(report.aggregate.accesses > 0);
        assert_eq!(report.per_process.len(), 1);
    }
}

#[test]
fn multiprocess_isolation_of_address_spaces() {
    // Two processes use identical virtual addresses; promotions in one
    // must not affect the other's mappings.
    let w1 = zipf_workload(16, 400_000, 7);
    let w2 = zipf_workload(16, 400_000, 8);
    // Same layout (same builder recipe) => same virtual regions.
    assert_eq!(w1.regions(), w2.regions());
    let mut config = SystemConfig::tiny();
    config.phys_mem_bytes = 256 << 20;
    let report = Simulation::new(config, PolicyChoice::pcc_default())
        .run(&[ProcessSpec::new(&w1), ProcessSpec::new(&w2)]);
    // Both processes see their own faults (same footprint => similar
    // fault counts), proving page tables are separate.
    let f0 = report.per_process[0].faults_base + report.per_process[0].faults_huge;
    let f1 = report.per_process[1].faults_base + report.per_process[1].faults_huge;
    assert!(f0 > 0 && f1 > 0);
    assert!((f0 as i64 - f1 as i64).unsigned_abs() < f0 / 2);
}

#[test]
fn round_robin_vs_highest_frequency_distribute_differently() {
    // One hot process and one warm process: highest-frequency gives the
    // hot one more promotions than round-robin does.
    let hot = zipf_workload(32, 600_000, 9);
    let warm = {
        let mut b = SyntheticBuilder::new("warm", 10);
        let a = b.array(8, (32 << 20) / 8);
        b.phase(
            a,
            Pattern::Zipf {
                count: 150_000,
                exponent: 0.4,
            },
            5,
        );
        b.build()
    };
    let mut config = SystemConfig::tiny();
    config.phys_mem_bytes = 256 << 20;
    let budget = || PromotionBudget::regions(6);
    let run = |selection| {
        Simulation::new(
            config.clone(),
            PolicyChoice::Pcc {
                selection,
                demotion: false,
                bias: vec![],
            },
        )
        .with_budget(budget())
        .run(&[ProcessSpec::new(&hot), ProcessSpec::new(&warm)])
    };
    let hf = run(PromotionPolicyKind::HighestFrequency);
    let rr = run(PromotionPolicyKind::RoundRobin);
    // Round-robin splits promotions more evenly than highest-frequency.
    let spread = |r: &hpage::sim::SimReport| {
        (r.per_process[0].promotions as i64 - r.per_process[1].promotions as i64).abs()
    };
    assert!(
        spread(&rr) <= spread(&hf),
        "rr spread {} vs hf spread {}",
        spread(&rr),
        spread(&hf)
    );
}

#[test]
fn fragmentation_degrades_gracefully() {
    // Speedup under increasing fragmentation is monotonically
    // non-increasing (fewer huge-capable blocks -> fewer promotions).
    let w = zipf_workload(32, 500_000, 11);
    let mut config = SystemConfig::tiny();
    config.phys_mem_bytes = ((w.footprint_bytes() * 3 / 2) >> 21 << 21).max(64 << 20);
    let timing = config.timing;
    let base =
        Simulation::new(config.clone(), PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
    let mut prev = f64::INFINITY;
    for frag in [0u8, 50, 90, 100] {
        let report = Simulation::new(config.clone(), PolicyChoice::pcc_default())
            .with_fragmentation(frag, 13)
            .run(&[ProcessSpec::new(&w)]);
        let s = report.speedup_over(&base, &timing);
        assert!(
            s <= prev + 0.06,
            "speedup should not grow with fragmentation: {s} after {prev} at {frag}%"
        );
        prev = s;
    }
}

#[test]
fn all_eight_apps_run_end_to_end() {
    let profile = SimProfile::test();
    for app in AppId::ALL {
        let w = instantiate(app, Dataset::Kronecker, profile.workloads, 1);
        let sized = profile.clone().sized_for(w.footprint_bytes());
        let report = Simulation::new(sized.system, PolicyChoice::pcc_default())
            .with_max_accesses_per_core(200_000)
            .run(&[ProcessSpec::new(&w)]);
        assert!(report.aggregate.accesses > 0, "{app} produced no accesses");
    }
}
