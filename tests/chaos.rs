//! Chaos-mode property suite: randomly generated fault schedules run
//! against every promotion policy, with the OS-state invariant auditor
//! switched on at every interval. A case fails if the simulation
//! panics, returns an error for anything other than genuine memory
//! exhaustion, reports an auditor violation, or loses accesses.

use hpage::faults::{FaultKind, FaultPlan, FaultWindow};
use hpage::os::DegradationConfig;
use hpage::sim::{Harness, PolicyChoice, ProcessSpec, Simulation};
use hpage::trace::{Pattern, SyntheticBuilder, SyntheticWorkload};
use hpage::types::SystemConfig;
use proptest::prelude::*;

const ACCESSES: u64 = 150_000;
/// `SystemConfig::tiny()` promotes every 50k accesses, so the run
/// spans three intervals; windows are drawn to land inside them.
const INTERVALS: u64 = ACCESSES / 50_000;

fn workload(seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("chaos", seed);
    let a = b.array(8, (6 << 20) / 8);
    b.phase(a, Pattern::UniformRandom { count: ACCESSES }, 0);
    b.build()
}

/// Decodes one drawn tuple into a fault window. `sel` picks the kind;
/// shocks carry their own deterministic percent/seed.
fn window(sel: u64, at: u64, duration: u64, percent: u64, seed: u64) -> FaultWindow {
    let kind = match sel {
        0 => FaultKind::OomWindow,
        1 => FaultKind::CompactionStall,
        2 => FaultKind::PccReset,
        3 => FaultKind::ShootdownSpike,
        _ => FaultKind::FragmentationShock {
            percent: percent as u8,
            seed,
        },
    };
    FaultWindow { kind, at, duration }
}

fn policy(sel: u64) -> PolicyChoice {
    match sel {
        0 => PolicyChoice::IdealHuge,
        1 => PolicyChoice::LinuxThp,
        2 => PolicyChoice::HawkEye,
        _ => PolicyChoice::pcc_default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any generated fault schedule, on any policy, completes without
    /// panics and with zero auditor violations. 128 cases × one policy
    /// each covers all four policies across >100 distinct schedules.
    #[test]
    fn generated_fault_schedules_never_break_invariants(
        windows in prop::collection::vec(
            (0u64..5, 0u64..INTERVALS, 1u64..3, 10u64..61, 0u64..1000),
            1..6,
        ),
        policy_sel in 0u64..4,
        wseed in 0u64..32,
    ) {
        let plan = FaultPlan::new(
            "generated",
            windows
                .into_iter()
                .map(|(sel, at, dur, pct, seed)| window(sel, at, dur, pct, seed))
                .collect(),
        )
        .expect("drawn windows are always valid");
        let w = workload(wseed);
        let report = Simulation::new(SystemConfig::tiny(), policy(policy_sel))
            .with_faults(plan)
            .with_degradation(DegradationConfig::default())
            .with_audit()
            .try_run(&[ProcessSpec::new(&w)])
            .expect("chaos run must degrade gracefully, not error");
        prop_assert!(
            report.audit_violations.is_empty(),
            "auditor violations under policy {}: {:?}",
            report.policy,
            report.audit_violations
        );
        prop_assert_eq!(report.aggregate.accesses, ACCESSES);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism under fault injection: the same plan and the same
    /// seed produce bit-identical reports on repeated runs.
    #[test]
    fn faulted_runs_are_bit_identical(
        windows in prop::collection::vec(
            (0u64..5, 0u64..INTERVALS, 1u64..3, 10u64..61, 0u64..1000),
            1..6,
        ),
        policy_sel in 0u64..4,
    ) {
        let plan = FaultPlan::new(
            "determinism",
            windows
                .into_iter()
                .map(|(sel, at, dur, pct, seed)| window(sel, at, dur, pct, seed))
                .collect(),
        )
        .expect("drawn windows are always valid");
        let w = workload(7);
        let run = || {
            Simulation::new(SystemConfig::tiny(), policy(policy_sel))
                .with_faults(plan.clone())
                .with_degradation(DegradationConfig::default())
                .with_audit()
                .try_run(&[ProcessSpec::new(&w)])
                .expect("chaos run must degrade gracefully, not error")
        };
        prop_assert_eq!(run(), run());
    }
}

/// One cell per policy, so every promotion policy sees the supervisor.
fn policy_grid() -> Vec<hpage::sim::Cell> {
    use hpage::sim::Cell;
    use std::sync::Arc;
    let w: Arc<SyntheticWorkload> = Arc::new({
        let mut b = SyntheticBuilder::new("cell-chaos", 11);
        let a = b.array(8, (4 << 20) / 8);
        b.phase(a, Pattern::UniformRandom { count: 50_000 }, 0);
        b.build()
    });
    (0..4)
        .map(|sel| {
            Cell::new(
                format!("chaos/{sel}"),
                Simulation::new(SystemConfig::tiny(), policy(sel)),
                w.clone(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Harness-level chaos: random cell_panic/cell_stall schedules
    /// against the four-policy grid, at random worker counts, with a
    /// retry budget that covers the worst draw. Every cell must
    /// recover, and the recovered grid must be bit-identical to an
    /// unfaulted sequential run.
    #[test]
    fn injected_cell_faults_are_absorbed_by_the_supervisor(
        windows in prop::collection::vec(
            // (1 = panic / 0 = stall, at, duration, failures, stall_ms)
            (0u64..2, 0u64..4, 1u64..3, 1u32..3, 1u64..8),
            1..4,
        ),
        jobs in 1usize..5,
    ) {
        use hpage::sim::SupervisorConfig;
        let plan = FaultPlan::new(
            "cell-chaos",
            windows
                .into_iter()
                .map(|(is_panic, at, duration, failures, millis)| FaultWindow {
                    kind: if is_panic == 1 {
                        FaultKind::CellPanic { failures }
                    } else {
                        FaultKind::CellStall { millis }
                    },
                    at,
                    duration,
                })
                .collect(),
        )
        .expect("drawn windows are always valid");
        let clean = Harness::sequential().run_supervised(policy_grid());
        let h = Harness::new(jobs).with_supervisor(
            SupervisorConfig::default().with_max_retries(3).with_faults(plan),
        );
        let chaotic = h.run_supervised(policy_grid());
        for (i, (c, f)) in clean.iter().zip(&chaotic).enumerate() {
            let c = c.as_ref().expect("clean run never fails");
            let f = f.as_ref().unwrap_or_else(|e| {
                panic!("cell {i} failed despite retry budget: {e}")
            });
            prop_assert_eq!(c, f, "cell {} diverged after recovery", i);
        }
    }
}
