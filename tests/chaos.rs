//! Chaos-mode property suite: randomly generated fault schedules run
//! against every promotion policy, with the OS-state invariant auditor
//! switched on at every interval. A case fails if the simulation
//! panics, returns an error for anything other than genuine memory
//! exhaustion, reports an auditor violation, or loses accesses.

use hpage::faults::{FaultKind, FaultPlan, FaultWindow};
use hpage::os::DegradationConfig;
use hpage::sim::{PolicyChoice, ProcessSpec, Simulation};
use hpage::trace::{Pattern, SyntheticBuilder, SyntheticWorkload};
use hpage::types::SystemConfig;
use proptest::prelude::*;

const ACCESSES: u64 = 150_000;
/// `SystemConfig::tiny()` promotes every 50k accesses, so the run
/// spans three intervals; windows are drawn to land inside them.
const INTERVALS: u64 = ACCESSES / 50_000;

fn workload(seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("chaos", seed);
    let a = b.array(8, (6 << 20) / 8);
    b.phase(a, Pattern::UniformRandom { count: ACCESSES }, 0);
    b.build()
}

/// Decodes one drawn tuple into a fault window. `sel` picks the kind;
/// shocks carry their own deterministic percent/seed.
fn window(sel: u64, at: u64, duration: u64, percent: u64, seed: u64) -> FaultWindow {
    let kind = match sel {
        0 => FaultKind::OomWindow,
        1 => FaultKind::CompactionStall,
        2 => FaultKind::PccReset,
        3 => FaultKind::ShootdownSpike,
        _ => FaultKind::FragmentationShock {
            percent: percent as u8,
            seed,
        },
    };
    FaultWindow { kind, at, duration }
}

fn policy(sel: u64) -> PolicyChoice {
    match sel {
        0 => PolicyChoice::IdealHuge,
        1 => PolicyChoice::LinuxThp,
        2 => PolicyChoice::HawkEye,
        _ => PolicyChoice::pcc_default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any generated fault schedule, on any policy, completes without
    /// panics and with zero auditor violations. 128 cases × one policy
    /// each covers all four policies across >100 distinct schedules.
    #[test]
    fn generated_fault_schedules_never_break_invariants(
        windows in prop::collection::vec(
            (0u64..5, 0u64..INTERVALS, 1u64..3, 10u64..61, 0u64..1000),
            1..6,
        ),
        policy_sel in 0u64..4,
        wseed in 0u64..32,
    ) {
        let plan = FaultPlan::new(
            "generated",
            windows
                .into_iter()
                .map(|(sel, at, dur, pct, seed)| window(sel, at, dur, pct, seed))
                .collect(),
        )
        .expect("drawn windows are always valid");
        let w = workload(wseed);
        let report = Simulation::new(SystemConfig::tiny(), policy(policy_sel))
            .with_faults(plan)
            .with_degradation(DegradationConfig::default())
            .with_audit()
            .try_run(&[ProcessSpec::new(&w)])
            .expect("chaos run must degrade gracefully, not error");
        prop_assert!(
            report.audit_violations.is_empty(),
            "auditor violations under policy {}: {:?}",
            report.policy,
            report.audit_violations
        );
        prop_assert_eq!(report.aggregate.accesses, ACCESSES);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism under fault injection: the same plan and the same
    /// seed produce bit-identical reports on repeated runs.
    #[test]
    fn faulted_runs_are_bit_identical(
        windows in prop::collection::vec(
            (0u64..5, 0u64..INTERVALS, 1u64..3, 10u64..61, 0u64..1000),
            1..6,
        ),
        policy_sel in 0u64..4,
    ) {
        let plan = FaultPlan::new(
            "determinism",
            windows
                .into_iter()
                .map(|(sel, at, dur, pct, seed)| window(sel, at, dur, pct, seed))
                .collect(),
        )
        .expect("drawn windows are always valid");
        let w = workload(7);
        let run = || {
            Simulation::new(SystemConfig::tiny(), policy(policy_sel))
                .with_faults(plan.clone())
                .with_degradation(DegradationConfig::default())
                .with_audit()
                .try_run(&[ProcessSpec::new(&w)])
                .expect("chaos run must degrade gracefully, not error")
        };
        prop_assert_eq!(run(), run());
    }
}
