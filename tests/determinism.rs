//! Determinism suite for the parallel experiment harness: every figure
//! driver must produce bit-identical rows whether its cells run inline
//! on one worker or fan out across a pool, and workloads served from
//! the run-wide cache must be indistinguishable from freshly built
//! ones. These are the guarantees that make `repro --jobs N` safe: the
//! rendered tables are byte-for-byte the same at any `N`.

use hpage::sim::{
    ablation_design_choices_on, fig1_page_sizes_on, fig5_utility_on, fig7_fragmentation_on,
    fig9_multiprocess_on, Fig9Config, Harness, SimProfile,
};
use hpage::trace::{instantiate, AppId, Dataset, Workload, WorkloadCache};

fn profile() -> SimProfile {
    let mut p = SimProfile::test();
    p.max_accesses_per_core = Some(400_000);
    p
}

#[test]
fn fig1_rows_are_identical_at_any_jobs() {
    let p = profile();
    let apps = [AppId::Bfs, AppId::Canneal];
    let seq = fig1_page_sizes_on(&Harness::sequential(), &p, &apps);
    let par = fig1_page_sizes_on(&Harness::new(8), &p, &apps);
    assert_eq!(seq, par, "fig1 rows must not depend on --jobs");
}

#[test]
fn fig5_curves_are_identical_at_any_jobs() {
    let p = profile();
    let sweep = [0, 4, 100];
    let seq = fig5_utility_on(&Harness::sequential(), &p, AppId::Bfs, &sweep);
    for jobs in [2, 8] {
        let par = fig5_utility_on(&Harness::new(jobs), &p, AppId::Bfs, &sweep);
        assert_eq!(seq, par, "fig5 curves must not depend on --jobs {jobs}");
    }
}

#[test]
fn fig7_fragmented_rows_are_identical_at_any_jobs() {
    // Fragmentation is the RNG-heavy path: cells seed the fragmenter
    // from a derived stream, so scheduling must not perturb it.
    let p = profile();
    let apps = [AppId::Bfs];
    let seq = fig7_fragmentation_on(&Harness::sequential(), &p, &apps, 90);
    let par = fig7_fragmentation_on(&Harness::new(4), &p, &apps, 90);
    assert_eq!(seq, par, "fig7 rows must not depend on --jobs");
}

#[test]
fn fig9_multiprocess_rows_are_identical_at_any_jobs() {
    let p = profile();
    let cfg = Fig9Config {
        app_a: AppId::Omnetpp,
        app_b: AppId::Dedup,
    };
    let seq = fig9_multiprocess_on(&Harness::sequential(), &p, cfg, &[0, 100]);
    let par = fig9_multiprocess_on(&Harness::new(8), &p, cfg, &[0, 100]);
    assert_eq!(seq, par, "fig9 rows must not depend on --jobs");
}

#[test]
fn ablation_rows_are_identical_at_any_jobs() {
    let p = profile();
    let seq = ablation_design_choices_on(&Harness::sequential(), &p, AppId::Bfs);
    let par = ablation_design_choices_on(&Harness::new(8), &p, AppId::Bfs);
    assert_eq!(seq, par, "ablation rows must not depend on --jobs");
}

/// Runs the PCC policy with a telemetry recorder and the promotion
/// ledger over two apps, folding per-cell results in submission order,
/// and returns every rendered artifact: the merged metrics registry,
/// the concatenated ledger tables, and the ledger JSONL.
fn telemetry_artifacts(jobs: usize) -> (String, String, String) {
    use hpage::sim::{Cell, PolicyChoice, SharedWorkload, Simulation};
    use hpage::telemetry::TelemetryRecorder;

    let p = profile();
    let h = Harness::new(jobs);
    let cells: Vec<Cell> = [AppId::Bfs, AppId::Canneal]
        .iter()
        .map(|&app| {
            let w = h.workload(&p, app);
            let sized = p.clone().sized_for(w.footprint_bytes());
            let sim = Simulation::new(sized.system.clone(), PolicyChoice::pcc_default())
                .with_max_accesses_per_core(400_000)
                .with_ledger();
            Cell::new(
                format!("telemetry/{}", app.name()),
                sim,
                w as SharedWorkload,
            )
        })
        .collect();
    let results = h.run_map(cells, |cell| {
        let mut telem = TelemetryRecorder::new();
        let report = cell.run_recorded(&mut telem);
        if let Some(ledger) = report.ledger.as_ref() {
            telem.ingest_ledger(ledger);
        }
        (telem, report)
    });
    // Submission-order slots make this left-to-right fold — the merge
    // of per-cell registries and the concatenation of ledger tables —
    // independent of which worker finished first.
    let mut merged = hpage::telemetry::TelemetryRecorder::new();
    let mut tables = String::new();
    let mut jsonl = String::new();
    for (telem, report) in &results {
        merged.merge(telem);
        let ledger = report.ledger.as_ref().expect("ledger requested");
        tables.push_str(&ledger.render_table());
        jsonl.push_str(&ledger.to_jsonl());
    }
    (merged.metrics_snapshot().render_text(), tables, jsonl)
}

#[test]
fn telemetry_metrics_and_ledger_are_identical_at_any_jobs() {
    let seq = telemetry_artifacts(1);
    assert!(seq.0.contains("ledger.prediction_accuracy_ppm"));
    assert!(seq.1.contains("prediction_accuracy:"));
    let par = telemetry_artifacts(8);
    assert_eq!(seq, par, "telemetry artifacts must not depend on --jobs");
}

#[test]
fn telemetry_artifacts_are_identical_across_same_seed_reruns() {
    assert_eq!(
        telemetry_artifacts(8),
        telemetry_artifacts(8),
        "telemetry artifacts must be byte-stable for a fixed seed"
    );
}

#[test]
fn cache_served_workloads_match_fresh_instantiations() {
    let p = profile();
    let cache = WorkloadCache::new();
    for app in [AppId::Bfs, AppId::Canneal] {
        let cached = cache.get_parts(app, Dataset::Kronecker, p.workloads, 0xC0FFEE);
        let fresh = instantiate(app, Dataset::Kronecker, p.workloads, 0xC0FFEE);
        assert_eq!(cached.name(), fresh.name());
        assert_eq!(cached.footprint_bytes(), fresh.footprint_bytes());
        let a: Vec<_> = cached.trace().take(50_000).collect();
        let b: Vec<_> = fresh.trace().take(50_000).collect();
        assert_eq!(a, b, "cached {app:?} trace must equal a fresh build");
    }
    // Second lookup is a hit, not a rebuild.
    let stats = cache.stats();
    assert_eq!(stats.misses, 2);
    let _ = cache.get_parts(AppId::Bfs, Dataset::Kronecker, p.workloads, 0xC0FFEE);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn forced_retries_leave_figure_rows_bit_identical() {
    // The supervisor's whole point: a run that panicked and retried
    // must be indistinguishable from one that never faulted. Inject
    // two panics and a stall into the fig7 grid, give the supervisor
    // budget to absorb them, and demand byte equality.
    use hpage::faults::{FaultKind, FaultPlan, FaultWindow};
    use hpage::sim::SupervisorConfig;
    let p = profile();
    let apps = [AppId::Bfs];
    let clean = fig7_fragmentation_on(&Harness::new(8), &p, &apps, 90);
    let plan = FaultPlan::new(
        "retry-determinism",
        vec![
            FaultWindow {
                kind: FaultKind::CellPanic { failures: 2 },
                at: 0,
                duration: 5,
            },
            FaultWindow {
                kind: FaultKind::CellStall { millis: 3 },
                at: 0,
                duration: 2,
            },
        ],
    )
    .unwrap();
    let h = Harness::new(8).with_supervisor(
        SupervisorConfig::default()
            .with_max_retries(3)
            .with_faults(plan),
    );
    let retried = fig7_fragmentation_on(&h, &p, &apps, 90);
    assert_eq!(clean, retried, "retried cells must not perturb fig7 rows");
    assert!(
        !h.log().retries().is_empty(),
        "the injected panics must actually have forced retries"
    );
}
