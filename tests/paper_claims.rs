//! Integration tests that pin the paper's *headline claims* at test
//! scale — the qualitative statements that define a successful
//! reproduction (see EXPERIMENTS.md for the quantitative record).

use hpage::os::PromotionBudget;
use hpage::pcc::{Pcc, PccEvent};
use hpage::sim::{PolicyChoice, ProcessSpec, SimProfile, Simulation};
use hpage::trace::{instantiate, AppId, Dataset, Workload};
use hpage::types::{PageSize, PccConfig, SystemConfig, VirtAddr};

fn bfs_profile() -> SimProfile {
    let mut p = SimProfile::scaled().with_graph_scale(20);
    p.max_accesses_per_core = Some(10_000_000);
    p
}

/// §1/§5.1: "the OS only needs to promote [a few percent] of the
/// application footprint to achieve more than 75% of the peak achievable
/// performance".
#[test]
fn few_percent_of_footprint_buys_most_of_peak() {
    let profile = bfs_profile();
    let w = instantiate(AppId::Bfs, Dataset::Kronecker, profile.workloads, 42);
    let profile = profile.sized_for(w.footprint_bytes());
    let timing = profile.system.timing;
    let run = |policy: PolicyChoice, budget: PromotionBudget| {
        Simulation::new(profile.system.clone(), policy)
            .with_budget(budget)
            .with_max_accesses_per_core(10_000_000)
            .run(&[ProcessSpec::new(&w)])
    };
    let base = run(PolicyChoice::BasePages, PromotionBudget::UNLIMITED);
    let ideal = run(PolicyChoice::IdealHuge, PromotionBudget::UNLIMITED);
    let pcc8 = run(
        PolicyChoice::pcc_default(),
        PromotionBudget::percent_of_footprint(8, w.footprint_bytes()),
    );
    let peak = ideal.speedup_over(&base, &timing);
    let got = pcc8.speedup_over(&base, &timing);
    assert!(peak > 1.3, "BFS must be TLB-sensitive, peak {peak}");
    let fraction = (got - 1.0) / (peak - 1.0);
    assert!(
        fraction > 0.70,
        "8% of footprint must reach >70% of peak (got {:.0}% of {peak:.2}x)",
        fraction * 100.0
    );
}

/// §5.1: "the plateauing of PTW rates … indicates where performance
/// improvements plateau" — PTW reduction and speedup move together.
#[test]
fn ptw_rate_reduction_tracks_speedup() {
    let profile = bfs_profile();
    let w = instantiate(AppId::Bfs, Dataset::Kronecker, profile.workloads, 42);
    let profile = profile.sized_for(w.footprint_bytes());
    let timing = profile.system.timing;
    let mut prev_speedup = 1.0f64;
    let mut prev_walks = f64::INFINITY;
    let base = Simulation::new(profile.system.clone(), PolicyChoice::BasePages)
        .with_max_accesses_per_core(10_000_000)
        .run(&[ProcessSpec::new(&w)]);
    for pct in [2u64, 8, 32] {
        let r = Simulation::new(profile.system.clone(), PolicyChoice::pcc_default())
            .with_budget(PromotionBudget::percent_of_footprint(
                pct,
                w.footprint_bytes(),
            ))
            .with_max_accesses_per_core(10_000_000)
            .run(&[ProcessSpec::new(&w)]);
        let s = r.speedup_over(&base, &timing);
        let walks = r.aggregate.walk_ratio();
        assert!(
            s >= prev_speedup - 0.03,
            "speedup fell at {pct}%: {s} < {prev_speedup}"
        );
        assert!(walks <= prev_walks + 0.01, "PTW rate rose at {pct}%");
        prev_speedup = s;
        prev_walks = walks;
    }
}

/// §5.1: "our approach does not hurt TLB-insensitive applications".
#[test]
fn tlb_insensitive_apps_are_not_hurt() {
    let profile = SimProfile::test();
    for app in [AppId::Dedup, AppId::Mcf] {
        let w = instantiate(app, Dataset::Kronecker, profile.workloads, 7);
        let sized = profile.clone().sized_for(w.footprint_bytes());
        let timing = sized.system.timing;
        let run = |policy: PolicyChoice| {
            Simulation::new(sized.system.clone(), policy)
                .with_max_accesses_per_core(1_000_000)
                .run(&[ProcessSpec::new(&w)])
        };
        let base = run(PolicyChoice::BasePages);
        let pcc = run(PolicyChoice::pcc_default());
        let s = pcc.speedup_over(&base, &timing);
        assert!(s > 0.97, "{app} slowed down under the PCC: {s}");
    }
}

/// §3.2: the cold-miss filter keeps first touches out of the PCC — a
/// pure streaming pass (every region touched once per page, in order)
/// inserts regions only after their second page's walk.
#[test]
fn cold_filter_delays_streaming_insertions() {
    let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
    let region = VirtAddr::new(0x4000_0000).vpn(PageSize::Huge2M);
    // First walk in the region: PMD A-bit was clear -> filtered.
    assert_eq!(pcc.record_walk(region, false), PccEvent::FilteredColdMiss);
    // Second page's walk: A-bit now set -> admitted.
    assert_eq!(pcc.record_walk(region, true), PccEvent::Inserted);
    assert_eq!(pcc.stats().cold_filtered, 1);
}

/// §5.1.1: under heavy fragmentation the PCC still finds the few
/// high-utility candidates, while Linux's greedy policy gets nothing at
/// fault time.
#[test]
fn pcc_beats_linux_under_heavy_fragmentation() {
    let profile = bfs_profile();
    let w = instantiate(AppId::Bfs, Dataset::Kronecker, profile.workloads, 42);
    let profile = profile.sized_for(w.footprint_bytes());
    let timing = profile.system.timing;
    let run = |policy: PolicyChoice| {
        Simulation::new(profile.system.clone(), policy)
            .with_fragmentation(90, 42)
            .with_max_accesses_per_core(10_000_000)
            .run(&[ProcessSpec::new(&w)])
    };
    let base = Simulation::new(profile.system.clone(), PolicyChoice::BasePages)
        .with_max_accesses_per_core(10_000_000)
        .run(&[ProcessSpec::new(&w)]);
    let linux = run(PolicyChoice::LinuxThp);
    let pcc = run(PolicyChoice::pcc_default());
    // Linux's huge pages come only from scan-limited khugepaged.
    assert_eq!(
        linux.per_process[0].faults_huge, 0,
        "fault-time THP must fail"
    );
    let s_linux = linux.speedup_over(&base, &timing);
    let s_pcc = pcc.speedup_over(&base, &timing);
    assert!(
        s_pcc > s_linux + 0.1,
        "pcc {s_pcc:.2} must clearly beat linux {s_linux:.2} at 90% frag"
    );
}

/// §3.3/Fig. 4: promotions invalidate PCC entries via shootdowns, so no
/// stale candidate is ever promoted twice.
#[test]
fn no_region_is_promoted_twice() {
    let profile = SimProfile::test();
    let w = instantiate(AppId::Omnetpp, Dataset::Kronecker, profile.workloads, 3);
    let sized = profile.clone().sized_for(w.footprint_bytes());
    let report = Simulation::new(sized.system, PolicyChoice::pcc_default())
        .with_max_accesses_per_core(1_500_000)
        .run(&[ProcessSpec::new(&w)]);
    let mut seen = std::collections::HashSet::new();
    for ev in report.schedule.events() {
        assert!(
            seen.insert((ev.process, ev.region.index())),
            "{} promoted twice",
            ev.region
        );
    }
    assert!(!seen.is_empty());
}

/// §4: deterministic virtual addresses (randomize_va_space=0) — two runs
/// of the same workload promote the *same regions at the same times*.
#[test]
fn promotion_schededule_is_deterministic() {
    let w = instantiate(
        AppId::Xalancbmk,
        Dataset::Kronecker,
        SimProfile::test().workloads,
        9,
    );
    let run = || {
        Simulation::new(SystemConfig::tiny(), PolicyChoice::pcc_default())
            .with_max_accesses_per_core(800_000)
            .run(&[ProcessSpec::new(&w)])
    };
    assert_eq!(run().schedule, run().schedule);
}

/// FHPM (nested translation): a 2D walk references between 1 and 24
/// page-table entries — the 4×-ish radix-squared blowup the paper's
/// virtualization discussion starts from — and on the same workload,
/// seed, and guest-cache geometry its mean walk cost strictly exceeds
/// the native walker's.
#[test]
fn nested_walks_cost_strictly_more_than_native() {
    use hpage::types::NestedConfig;
    let w = instantiate(
        AppId::Bfs,
        Dataset::Kronecker,
        SimProfile::test().workloads,
        42,
    );
    let nested_cfg = NestedConfig::typical();
    // Native run gets the *same* guest-side PWC geometry, so the only
    // difference is the host dimension of every walk.
    let mut native_sys = SystemConfig::tiny();
    native_sys.pwc = Some(nested_cfg.guest_pwc);
    let native = Simulation::new(native_sys, PolicyChoice::pcc_default())
        .with_max_accesses_per_core(800_000)
        .run(&[ProcessSpec::new(&w)]);
    let nested = Simulation::new(SystemConfig::tiny(), PolicyChoice::pcc_default())
        .with_nested(nested_cfg)
        .with_max_accesses_per_core(800_000)
        .run(&[ProcessSpec::new(&w)]);
    assert_eq!(
        native.aggregate.walks, nested.aggregate.walks,
        "same guest-side TLB behaviour, same walk count"
    );
    let mean = |r: &hpage::sim::SimReport| {
        r.aggregate.walk_levels as f64 / r.aggregate.walks.max(1) as f64
    };
    let (native_mean, nested_mean) = (mean(&native), mean(&nested));
    assert!(
        (1.0..=24.0).contains(&nested_mean),
        "2D refs/walk out of the 1..=24 hard bounds: {nested_mean}"
    );
    assert!(
        nested_mean > native_mean,
        "nested mean ({nested_mean:.3}) must exceed native ({native_mean:.3})"
    );
    assert!(
        nested.policy.ends_with("+nested-both"),
        "nested run labels its placement: {}",
        nested.policy
    );
}
