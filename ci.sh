#!/usr/bin/env bash
# Local CI gate — the same four checks the GitHub Actions workflow runs.
# Everything is offline: dependencies are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== chaos smoke: hpsim --faults examples/chaos.json --audit =="
HPAGE_PROFILE=test ./target/release/hpsim --policy pcc \
    --faults examples/chaos.json --audit --quiet

echo "CI OK"
