#!/usr/bin/env bash
# Local CI gate — the same four checks the GitHub Actions workflow runs.
# Everything is offline: dependencies are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== chaos smoke: hpsim --faults examples/chaos.json --audit =="
HPAGE_PROFILE=test ./target/release/hpsim --policy pcc \
    --faults examples/chaos.json --audit --quiet

echo "== bench smoke: criterion hotpath suite vs committed baseline =="
# Smoke mode: few samples, minutes -> seconds. Results go to a scratch
# artifact (never clobber the committed full-mode BENCH_hotpath.json);
# a >20% bfs18_e2e throughput drop vs the committed baseline prints a
# non-blocking warning from the bench binary itself.
# $PWD anchors: cargo runs bench binaries with CWD = the package dir.
HPAGE_BENCH_SMOKE=1 \
    HPAGE_BENCH_OUT="$PWD/BENCH_hotpath_smoke.json" \
    HPAGE_BENCH_BASELINE="$PWD/BENCH_hotpath.json" \
    cargo bench -q -p hpage-bench --bench hotpath
test -s BENCH_hotpath_smoke.json

echo "== bench trajectory: append smoke run, re-render EXPERIMENTS.md =="
cat BENCH_hotpath_smoke.json >> BENCH_history.jsonl
./target/release/bench_trend --experiments EXPERIMENTS.md

echo "== telemetry smoke: hpsim --ledger --metrics --chrome-trace =="
HPAGE_PROFILE=test ./target/release/hpsim --policy pcc --ledger \
    --metrics /tmp/hpsim_metrics.jsonl --chrome-trace trace_smoke.json \
    --quiet | tee /tmp/hpsim_ledger.txt
# The attribution table must report a finite run-level accuracy in [0,1].
grep -E '^prediction_accuracy: [01]\.[0-9]+$' /tmp/hpsim_ledger.txt
grep '"name":"ledger.prediction_accuracy_ppm"' /tmp/hpsim_metrics.jsonl
test -s trace_smoke.json

echo "== repro smoke: parallel harness determinism (-j 2 vs -j 1) =="
HPAGE_PROFILE=test ./target/release/repro --figure 7 --ablation \
    --jobs 2 --bench-out BENCH_repro.json --quiet > /tmp/repro_j2.txt
HPAGE_PROFILE=test ./target/release/repro --figure 7 --ablation \
    --jobs 1 --bench-out /tmp/BENCH_repro_j1.json --quiet > /tmp/repro_j1.txt
cmp /tmp/repro_j1.txt /tmp/repro_j2.txt
test -s BENCH_repro.json
if ./target/release/repro --figure 7 --jobs 0 --quiet > /dev/null 2>&1; then
    echo "repro accepted --jobs 0" >&2
    exit 1
fi

echo "== shard smoke: --sim-threads 4 report is byte-identical to 1 =="
HPAGE_PROFILE=test ./target/release/hpsim --app bfs --policy pcc \
    --sim-threads 1 --quiet > /tmp/hpsim_st1.txt
HPAGE_PROFILE=test ./target/release/hpsim --app bfs --policy pcc \
    --sim-threads 4 --quiet > /tmp/hpsim_st4.txt
cmp /tmp/hpsim_st1.txt /tmp/hpsim_st4.txt
if ./target/release/hpsim --app bfs --sim-threads 0 --quiet > /dev/null 2>&1; then
    echo "hpsim accepted --sim-threads 0" >&2
    exit 1
fi

echo "== trace pipeline smoke: record -> mmap replay byte-identical =="
# Record an HPT2 trace, then replay it through the zero-copy mmap path
# and the in-memory path: SimReport and event JSONL must be
# byte-identical at every --sim-threads/--jobs, including strided
# multi-thread replay (--threads 4).
HPAGE_PROFILE=test ./target/release/hpsim --app bfs \
    --trace-out /tmp/ci_trace.hpt2 --max-accesses 200000 > /dev/null
for st in 1 2 8; do
    HPAGE_PROFILE=test ./target/release/hpsim --trace-in /tmp/ci_trace.hpt2 \
        --threads 4 --sim-threads "$st" --events /tmp/ci_mem_$st.jsonl \
        --quiet > /tmp/ci_mem_$st.txt
    HPAGE_PROFILE=test ./target/release/hpsim --trace-in /tmp/ci_trace.hpt2 \
        --mmap --threads 4 --sim-threads "$st" --events /tmp/ci_map_$st.jsonl \
        --quiet > /tmp/ci_map_$st.txt
    cmp /tmp/ci_mem_$st.txt /tmp/ci_map_$st.txt
    cmp /tmp/ci_mem_$st.jsonl /tmp/ci_map_$st.jsonl
done
cmp /tmp/ci_mem_1.txt /tmp/ci_mem_8.txt
HPAGE_PROFILE=test ./target/release/hpsim --trace-in /tmp/ci_trace.hpt2 \
    --mmap --threads 4 --jobs 8 --quiet > /tmp/ci_map_j8.txt
HPAGE_PROFILE=test ./target/release/hpsim --trace-in /tmp/ci_trace.hpt2 \
    --threads 4 --jobs 1 --quiet > /tmp/ci_mem_j1.txt
cmp /tmp/ci_mem_j1.txt /tmp/ci_map_j8.txt
# Legacy HPT1 container replays to the same report (format sniffing).
HPAGE_PROFILE=test ./target/release/hpsim --app bfs --trace-format hpt1 \
    --trace-out /tmp/ci_trace.hpt1 --max-accesses 200000 > /dev/null
HPAGE_PROFILE=test ./target/release/hpsim --trace-in /tmp/ci_trace.hpt1 \
    --threads 4 --quiet > /tmp/ci_mem_hpt1.txt
cmp /tmp/ci_mem_1.txt /tmp/ci_mem_hpt1.txt

echo "== consolidation smoke: 32 tenants, fairness + storms in artifact =="
HPAGE_PROFILE=test ./target/release/repro --consolidation --tenants 32 \
    --sim-threads 4 --bench-out BENCH_consolidation.json --quiet \
    > /tmp/repro_consolidation.txt
grep -q 'Jain fairness over promotion shares:' /tmp/repro_consolidation.txt
grep -q '"consolidation":{"scenario":"consolidation","tenants":32' \
    BENCH_consolidation.json
grep -q '"fairness_index":' BENCH_consolidation.json
grep -q '"storms":{"flushes":' BENCH_consolidation.json

echo "== virt smoke: nested ablation deterministic, golden-pinned =="
# The 2D-translation ablation must be byte-identical at any shard/job
# count, match the committed golden fixture (stdout is the fixture plus
# repro's trailing blank line), and embed under "virt" in the artifact.
HPAGE_PROFILE=test ./target/release/repro --virt --sim-threads 1 --jobs 1 \
    --bench-out BENCH_virt.json --quiet > /tmp/repro_virt_1.txt
HPAGE_PROFILE=test ./target/release/repro --virt --sim-threads 8 --jobs 8 \
    --bench-out /tmp/BENCH_virt_8.json --quiet > /tmp/repro_virt_8.txt
cmp /tmp/repro_virt_1.txt /tmp/repro_virt_8.txt
cmp <(cat crates/bench/tests/golden/virt_test.txt; echo) /tmp/repro_virt_1.txt
grep -q 'verdict: PCCs in both dimensions beat either dimension alone' \
    /tmp/repro_virt_1.txt
grep -q '"virt":{"scenario":"virt"' BENCH_virt.json
HPAGE_PROFILE=test ./target/release/hpsim --app bfs --policy pcc --nested \
    --sim-threads 1 --quiet > /tmp/hpsim_nested_1.txt
HPAGE_PROFILE=test ./target/release/hpsim --app bfs --policy pcc --nested \
    --sim-threads 4 --quiet > /tmp/hpsim_nested_4.txt
cmp /tmp/hpsim_nested_1.txt /tmp/hpsim_nested_4.txt
grep -q 'host promotions' /tmp/hpsim_nested_1.txt
if ./target/release/hpsim --app bfs --pcc-placement host --quiet \
    > /dev/null 2>&1; then
    echo "hpsim accepted --pcc-placement without --nested" >&2
    exit 1
fi

echo "== supervisor smoke: injected panic -> partial output, exit 3 =="
# With no retry budget the injected cell panic must degrade exactly one
# section to an n/a row and exit with the partial-failure code, not 1.
set +e
HPAGE_PROFILE=test ./target/release/repro --figure 7 \
    --harness-faults examples/cell_chaos.json --retries 0 --jobs 2 \
    --bench-out /tmp/BENCH_repro_chaos.json --quiet \
    > /tmp/repro_chaos.txt 2>/dev/null
chaos_rc=$?
set -e
test "$chaos_rc" -eq 3
grep -q 'n/a (cell failed:' /tmp/repro_chaos.txt

echo "== supervisor smoke: retries absorb the same plan byte-identically =="
HPAGE_PROFILE=test ./target/release/repro --figure 7 --jobs 2 \
    --bench-out /tmp/BENCH_repro_fig7.json --quiet > /tmp/repro_fig7.txt
HPAGE_PROFILE=test ./target/release/repro --figure 7 \
    --harness-faults examples/cell_chaos.json --retries 2 --jobs 2 \
    --bench-out /tmp/BENCH_repro_retry.json --quiet > /tmp/repro_retry.txt
cmp /tmp/repro_retry.txt /tmp/repro_fig7.txt

echo "== checkpoint smoke: journal a partial run, resume the full one =="
# First run journals only figure 7; the resumed run replays it and adds
# the ablation, and must be byte-identical to the uninterrupted run.
HPAGE_PROFILE=test ./target/release/repro --figure 7 \
    --journal BENCH_repro_journal.jsonl --jobs 2 \
    --bench-out /tmp/BENCH_repro_part.json --quiet > /tmp/repro_part.txt
HPAGE_PROFILE=test ./target/release/repro --figure 7 --ablation \
    --resume BENCH_repro_journal.jsonl --jobs 2 \
    --bench-out /tmp/BENCH_repro_resumed.json --quiet > /tmp/repro_resumed.txt
cmp /tmp/repro_resumed.txt /tmp/repro_j2.txt
test -s BENCH_repro_journal.jsonl

echo "CI OK"
