//! Quickstart: simulate one TLB-hostile workload under the 4 KiB
//! baseline, the PCC-driven promotion policy, and the all-huge ideal,
//! then print the resulting TLB behaviour and modelled speedups.
//!
//! Run with `cargo run --release --example quickstart`.

use hpage::os::PromotionBudget;
use hpage::perf::{fmt_pct, fmt_speedup, TextTable};
use hpage::sim::{PolicyChoice, ProcessSpec, SimReport, Simulation};
use hpage::trace::{Pattern, SyntheticBuilder, Workload};
use hpage::types::SystemConfig;

fn main() {
    // Build a workload the paper would classify as HUB-heavy: a Zipf
    // working set over 64 MiB (sparse but reused) next to a sequential
    // stream (TLB-friendly).
    let mut b = SyntheticBuilder::new("zipf+stream", 7);
    let hot = b.array(8, (64 << 20) / 8);
    let stream = b.array(64, (32 << 20) / 64);
    b.phase(
        hot,
        Pattern::Zipf {
            count: 3_000_000,
            exponent: 0.8,
        },
        10,
    );
    b.phase(
        stream,
        Pattern::Sequential {
            stride: 1,
            count: 1_000_000,
        },
        30,
    );
    let workload = b.build();
    println!(
        "workload: {} ({} MiB footprint)\n",
        workload.name(),
        workload.footprint_bytes() >> 20
    );

    let config = SystemConfig::tiny();
    let timing = config.timing;
    let run = |policy: PolicyChoice, budget: PromotionBudget| -> SimReport {
        Simulation::new(config.clone(), policy)
            .with_budget(budget)
            .run(&[ProcessSpec::new(&workload)])
    };

    let base = run(PolicyChoice::BasePages, PromotionBudget::UNLIMITED);
    // The PCC with a tight budget: only 4% of the footprint may go huge —
    // the paper's headline operating point.
    let budget = PromotionBudget::percent_of_footprint(4, workload.footprint_bytes());
    let pcc = run(PolicyChoice::pcc_default(), budget);
    let ideal = run(PolicyChoice::IdealHuge, PromotionBudget::UNLIMITED);

    let mut table = TextTable::new(["policy", "PTW rate", "huge pages", "speedup"]);
    for report in [&base, &pcc, &ideal] {
        table.row([
            report.policy.clone(),
            fmt_pct(report.aggregate.walk_ratio()),
            report.huge_pages_at_end.to_string(),
            fmt_speedup(report.speedup_over(&base, &timing)),
        ]);
    }
    println!("{table}");
    println!(
        "PCC promoted {} regions ({} huge pages live at exit) and reached {} \
         of the ideal-THP speedup with a 4% footprint budget.",
        pcc.aggregate.promotions,
        pcc.huge_pages_at_end,
        fmt_pct(
            (pcc.speedup_over(&base, &timing) - 1.0) / (ideal.speedup_over(&base, &timing) - 1.0)
        ),
    );
}
