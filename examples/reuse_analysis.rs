//! Page-reuse-distance characterisation (the paper's §3.1 / Fig. 2):
//! classify every 4 KiB page a BFS touches into TLB-friendly, HUB, or
//! low-reuse, and show that the HUB regions found analytically are the
//! same regions the PCC hardware surfaces.
//!
//! Run with `cargo run --release --example reuse_analysis`.

use hpage::perf::TextTable;
use hpage::sim::{PolicyChoice, ProcessSpec, SimProfile, Simulation};
use hpage::trace::{instantiate, AppId, Dataset, ReuseAnalyzer, Workload};
use hpage::types::PageSize;
use std::collections::HashSet;

fn main() {
    let profile = SimProfile::scaled().with_graph_scale(16);
    let bfs = instantiate(AppId::Bfs, Dataset::Kronecker, profile.workloads, 42);
    let window = 2_000_000usize;

    // Analytic pass: exact reuse distances at 4KB and 2MB granularity.
    let mut analyzer = ReuseAnalyzer::new();
    for a in bfs.trace().take(window) {
        analyzer.observe(&a);
    }
    let (friendly, hubs, low) = analyzer.class_counts();
    let total = (friendly + hubs + low).max(1);
    let mut table = TextTable::new(["class", "4KB pages", "share"]);
    for (name, n) in [
        ("TLB-friendly", friendly),
        ("HUB (promote these)", hubs),
        ("low-reuse", low),
    ] {
        table.row([
            name.to_string(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / total as f64),
        ]);
    }
    println!("BFS on Kronecker-16, {window} accesses:\n\n{table}");
    let analytic_hubs: Vec<_> = analyzer.hub_regions();
    println!(
        "HUB pages concentrate in {} 2MiB regions\n",
        analytic_hubs.len()
    );

    // Hardware pass: run the same window through the TLB+PCC pipeline
    // and compare what the PCC would tell the OS.
    let profile = profile.sized_for(bfs.footprint_bytes());
    let report = Simulation::new(profile.system.clone(), PolicyChoice::pcc_default())
        .with_max_accesses_per_core(window as u64)
        .run(&[ProcessSpec::new(&bfs)]);
    let promoted = report.schedule.len();
    let promoted_regions: HashSet<u64> = report
        .schedule
        .events()
        .iter()
        .map(|e| e.region.index())
        .collect();
    let analytic_set: HashSet<u64> = analytic_hubs.iter().map(|(r, _)| r.index()).collect();
    let overlap = promoted_regions.intersection(&analytic_set).count();
    println!(
        "The PCC promoted {promoted} regions; {overlap} of them are analytic HUB \
         regions ({}% agreement with the reuse-distance oracle).",
        (100 * overlap).checked_div(promoted).unwrap_or(0)
    );
    let _ = PageSize::Huge2M;
}
