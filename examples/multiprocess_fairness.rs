//! Multiprocess scenario: a TLB-sensitive analytics job shares the
//! machine with a streaming job, and huge pages are a system-wide
//! resource. Compare the OS's two candidate-selection policies across
//! the per-core PCCs — highest-frequency-first versus round-robin — and
//! show process bias (`promotion_bias_process`). This is the paper's
//! Fig. 9 setting.
//!
//! Run with `cargo run --release --example multiprocess_fairness`.

use hpage::os::PromotionBudget;
use hpage::perf::{fmt_speedup, TextTable};
use hpage::sim::{PolicyChoice, ProcessSpec, Simulation};
use hpage::trace::{dedup, omnetpp, SynthScale, Workload};
use hpage::types::{ProcessId, PromotionPolicyKind, SystemConfig};

fn main() {
    let sensitive = omnetpp(SynthScale::TEST, 3); // Zipf heap: wants THPs
    let streaming = dedup(SynthScale::TEST, 4); // sequential: indifferent
    let combined = sensitive.footprint_bytes() + streaming.footprint_bytes();
    println!(
        "process 0: {} ({} MiB)   process 1: {} ({} MiB)\n",
        sensitive.name(),
        sensitive.footprint_bytes() >> 20,
        streaming.name(),
        streaming.footprint_bytes() >> 20
    );

    let mut config = SystemConfig::tiny();
    config.phys_mem_bytes = (combined * 3).next_multiple_of(2 << 20);
    let timing = config.timing;
    let run = |policy: PolicyChoice, budget_pct: u64| {
        Simulation::new(config.clone(), policy)
            .with_budget(PromotionBudget::percent_of_footprint(budget_pct, combined))
            .with_max_accesses_per_core(1_500_000)
            .run(&[ProcessSpec::new(&sensitive), ProcessSpec::new(&streaming)])
    };
    let base = run(PolicyChoice::BasePages, 0);

    let mut table = TextTable::new([
        "selection policy",
        "budget",
        "omnetpp speedup",
        "dedup speedup",
        "THPs used",
    ]);
    for pct in [4u64, 16] {
        for selection in [
            PromotionPolicyKind::HighestFrequency,
            PromotionPolicyKind::RoundRobin,
        ] {
            let report = run(
                PolicyChoice::Pcc {
                    selection,
                    demotion: false,
                    bias: vec![],
                },
                pct,
            );
            table.row([
                selection.to_string(),
                format!("{pct}%"),
                fmt_speedup(report.process_speedup_over(&base, 0, &timing)),
                fmt_speedup(report.process_speedup_over(&base, 1, &timing)),
                report.huge_pages_at_end.to_string(),
            ]);
        }
    }
    // Bias the streaming process — the OS serves its candidates first,
    // demonstrating the promotion_bias_process knob.
    let biased = run(
        PolicyChoice::Pcc {
            selection: PromotionPolicyKind::HighestFrequency,
            demotion: false,
            bias: vec![ProcessId(1)],
        },
        4,
    );
    table.row([
        "highest-freq + bias(pid1)".to_string(),
        "4%".to_string(),
        fmt_speedup(biased.process_speedup_over(&base, 0, &timing)),
        fmt_speedup(biased.process_speedup_over(&base, 1, &timing)),
        biased.huge_pages_at_end.to_string(),
    ]);
    println!("{table}");
    println!(
        "Highest-frequency selection steers the shared huge-page budget to \
         the TLB-sensitive process; round-robin splits it evenly; bias \
         overrides both."
    );
}
