//! Datacenter scenario: physical memory is heavily fragmented (one
//! unmovable page pinned in most 2 MiB blocks), so very few huge pages
//! can be formed. Compare how Linux's greedy THP policy, HawkEye, and
//! the PCC spend that scarce budget — the experiment behind the paper's
//! Fig. 7.
//!
//! Run with `cargo run --release --example fragmented_memory`.

use hpage::os::PromotionBudget;
use hpage::perf::{fmt_pct, fmt_speedup, TextTable};
use hpage::sim::{PolicyChoice, ProcessSpec, Simulation};
use hpage::trace::{omnetpp, SynthScale, Workload};
use hpage::types::SystemConfig;

fn main() {
    // omnetpp's Zipf-skewed heap: only a handful of regions are truly
    // hot, so *which* regions get the scarce huge pages matters.
    let workload = omnetpp(SynthScale::TEST, 11);
    println!(
        "workload: {} ({} MiB footprint)\n",
        workload.name(),
        workload.footprint_bytes() >> 20
    );

    // Memory nearly full: 1.5x the footprint, as in a loaded NUMA node.
    let mut config = SystemConfig::tiny();
    config.phys_mem_bytes = (workload.footprint_bytes() * 3 / 2).next_multiple_of(2 << 20);
    let timing = config.timing;

    for frag in [50u8, 90] {
        let run = |policy: PolicyChoice| {
            Simulation::new(config.clone(), policy)
                .with_budget(PromotionBudget::UNLIMITED)
                .with_fragmentation(frag, 0xF00D)
                .with_max_accesses_per_core(2_000_000)
                .run(&[ProcessSpec::new(&workload)])
        };
        let base = run(PolicyChoice::BasePages);
        let mut table = TextTable::new(["policy", "huge pages", "PTW rate", "speedup"]);
        for policy in [
            PolicyChoice::LinuxThp,
            PolicyChoice::HawkEye,
            PolicyChoice::pcc_default(),
        ] {
            let report = run(policy);
            table.row([
                report.policy.clone(),
                report.huge_pages_at_end.to_string(),
                fmt_pct(report.aggregate.walk_ratio()),
                fmt_speedup(report.speedup_over(&base, &timing)),
            ]);
        }
        println!("--- {frag}% of memory fragmented ---");
        println!("{table}");
    }
    println!(
        "With most blocks pinned, Linux burns the few huge-capable blocks on \
         whatever faults first; the PCC spends them on the regions with the \
         most page-table walks."
    );
}
