//! Graph-analytics scenario: run BFS over a power-law (Kronecker) network
//! and trace how the PCC's utility curve climbs as the OS is allowed to
//! promote more of the footprint — the experiment behind the paper's
//! headline "promote 4% of the footprint for >75% of peak performance".
//!
//! Run with `cargo run --release --example graph_promotion` (pass a graph
//! scale as the first argument; default 15).

use hpage::os::PromotionBudget;
use hpage::perf::{fmt_pct, fmt_speedup, TextTable};
use hpage::sim::{PolicyChoice, ProcessSpec, SimProfile, Simulation};
use hpage::trace::{instantiate, AppId, Dataset, Workload};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let profile = SimProfile::test().with_graph_scale(scale);
    let bfs = instantiate(AppId::Bfs, Dataset::Kronecker, profile.workloads, 42);
    let footprint = bfs.footprint_bytes();
    println!(
        "BFS on Kronecker scale {scale}: {} MiB footprint, {} 2MiB regions\n",
        footprint >> 20,
        footprint.div_ceil(2 << 20)
    );

    let profile = profile.sized_for(footprint);
    let timing = profile.system.timing;
    let run = |policy: PolicyChoice, budget: PromotionBudget| {
        let mut sim = Simulation::new(profile.system.clone(), policy).with_budget(budget);
        if let Some(n) = profile.max_accesses_per_core {
            sim = sim.with_max_accesses_per_core(n);
        }
        sim.run(&[ProcessSpec::new(&bfs)])
    };

    let base = run(PolicyChoice::BasePages, PromotionBudget::UNLIMITED);
    let ideal = run(PolicyChoice::IdealHuge, PromotionBudget::UNLIMITED);
    let peak = ideal.speedup_over(&base, &timing);

    let mut table = TextTable::new(["footprint promoted", "speedup", "PTW rate", "% of peak"]);
    table.row([
        "0% (baseline)".to_string(),
        fmt_speedup(1.0),
        fmt_pct(base.aggregate.walk_ratio()),
        "-".to_string(),
    ]);
    for pct in [1u64, 2, 4, 8, 16, 32, 64] {
        let report = run(
            PolicyChoice::pcc_default(),
            PromotionBudget::percent_of_footprint(pct, footprint),
        );
        let speedup = report.speedup_over(&base, &timing);
        let of_peak = if peak > 1.0 {
            (speedup - 1.0) / (peak - 1.0)
        } else {
            1.0
        };
        table.row([
            format!("{pct}%"),
            fmt_speedup(speedup),
            fmt_pct(report.aggregate.walk_ratio()),
            fmt_pct(of_peak),
        ]);
    }
    table.row([
        "100% (all THPs)".to_string(),
        fmt_speedup(peak),
        fmt_pct(ideal.aggregate.walk_ratio()),
        fmt_pct(1.0),
    ]);
    println!("{table}");
}
