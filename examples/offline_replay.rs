//! The paper's two-step evaluation methodology (§4): first an *offline*
//! TLB+PCC simulation identifies promotion candidates and records when
//! they were promoted; then a second run *replays* that candidate trace
//! as if real PCC hardware had produced it — which is how the authors
//! drove their real-system evaluation from simulated hardware.
//!
//! Run with `cargo run --release --example offline_replay`.

use hpage::perf::{fmt_pct, fmt_speedup, TextTable};
use hpage::sim::{PolicyChoice, ProcessSpec, Simulation};
use hpage::trace::{xalancbmk, SynthScale, Workload};
use hpage::types::SystemConfig;

fn main() {
    let workload = xalancbmk(SynthScale::TEST, 21);
    println!(
        "workload: {} ({} MiB footprint)\n",
        workload.name(),
        workload.footprint_bytes() >> 20
    );
    let config = SystemConfig::tiny();
    let timing = config.timing;

    // Step 0: the 4KB baseline.
    let base = Simulation::new(config.clone(), PolicyChoice::BasePages)
        .run(&[ProcessSpec::new(&workload)]);

    // Step 1: offline PCC simulation — produces the candidate trace.
    let offline = Simulation::new(config.clone(), PolicyChoice::pcc_default())
        .run(&[ProcessSpec::new(&workload)]);
    println!(
        "offline PCC simulation recorded {} promotion events; first at access {}",
        offline.schedule.len(),
        offline
            .schedule
            .events()
            .first()
            .map(|e| e.at_access)
            .unwrap_or(0),
    );

    // Step 2: replay the trace on a system without PCC hardware.
    let replayed = Simulation::new(
        config.clone(),
        PolicyChoice::Replay(offline.schedule.clone()),
    )
    .run(&[ProcessSpec::new(&workload)]);

    let mut table = TextTable::new(["run", "PTW rate", "promotions", "speedup"]);
    for r in [&base, &offline, &replayed] {
        table.row([
            r.policy.clone(),
            fmt_pct(r.aggregate.walk_ratio()),
            r.aggregate.promotions.to_string(),
            fmt_speedup(r.speedup_over(&base, &timing)),
        ]);
    }
    println!("\n{table}");
    assert_eq!(replayed.aggregate.walks, offline.aggregate.walks);
    println!(
        "replay reproduced the offline run exactly ({} walks in both) — \
         deterministic virtual addresses make the two-step methodology sound.",
        offline.aggregate.walks
    );
}
