//! Optional functional data-cache hierarchy.
//!
//! The paper's two-step methodology measures runtime on real hardware,
//! where cache behaviour is implicit. Our default timing model folds
//! average cache behaviour into a constant per-access cost; enabling this
//! substrate (`SystemConfig::cache`) replaces that constant with a
//! simulated per-core L1D + L2 in front of a shared LLC, **indexed by
//! physical address** — so huge-page promotions genuinely change cache
//! indexing, and pathological alignment effects (a known THP side effect)
//! can be studied.
//!
//! The model is functional: LRU set-associative levels counting hits and
//! misses, no coherence (the simulator is logically single-threaded per
//! address), no MSHRs.
//!
//! # Example
//!
//! ```
//! use hpage_cache::{CacheConfig, CacheHierarchy};
//! use hpage_types::PhysAddr;
//!
//! let mut caches = CacheHierarchy::new(CacheConfig::typical_per_core(), 1);
//! let line = PhysAddr::new(0x1000);
//! assert_eq!(caches.access(0, line).name(), "memory");   // cold
//! assert_eq!(caches.access(0, line).name(), "L1");       // warm
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hpage_types::{ConfigError, PhysAddr};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Hit in the core's L1D.
    L1,
    /// Hit in the core's private L2.
    L2,
    /// Hit in the shared last-level cache.
    Llc,
    /// Missed everything: a memory access.
    Memory,
}

impl CacheOutcome {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::L1 => "L1",
            CacheOutcome::L2 => "L2",
            CacheOutcome::Llc => "LLC",
            CacheOutcome::Memory => "memory",
        }
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheLevelConfig {
    /// Creates a level geometry.
    pub const fn new(bytes: u64, ways: u32, line_bytes: u32) -> Self {
        CacheLevelConfig {
            bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    pub const fn sets(&self) -> u64 {
        self.bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero sizes, non-power-of-two lines, or
    /// geometry that does not divide evenly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err(ConfigError::new("cache fields must be nonzero"));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new("cache line size must be a power of two"));
        }
        if !self
            .bytes
            .is_multiple_of(u64::from(self.ways) * u64::from(self.line_bytes))
        {
            return Err(ConfigError::new("ways*line must divide capacity"));
        }
        if self.sets() == 0 {
            return Err(ConfigError::new("cache must have at least one set"));
        }
        Ok(())
    }
}

/// Hierarchy configuration: per-core L1D and L2, shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Per-core L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Per-core private L2.
    pub l2: CacheLevelConfig,
    /// Shared last-level cache.
    pub llc: CacheLevelConfig,
}

impl CacheConfig {
    /// Typical client-core geometry: 32 KiB/8-way L1D, 256 KiB/8-way L2,
    /// 8 MiB/16-way shared LLC, 64 B lines.
    pub const fn typical_per_core() -> Self {
        CacheConfig {
            l1d: CacheLevelConfig::new(32 << 10, 8, 64),
            l2: CacheLevelConfig::new(256 << 10, 8, 64),
            llc: CacheLevelConfig::new(8 << 20, 16, 64),
        }
    }

    /// A scaled-down hierarchy for fast tests.
    pub const fn tiny() -> Self {
        CacheConfig {
            l1d: CacheLevelConfig::new(2 << 10, 4, 64),
            l2: CacheLevelConfig::new(8 << 10, 4, 64),
            llc: CacheLevelConfig::new(64 << 10, 8, 64),
        }
    }

    /// Checks every level.
    ///
    /// # Errors
    ///
    /// Propagates the first failing [`CacheLevelConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.l1d.validate()?;
        self.l2.validate()?;
        self.llc.validate()
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::typical_per_core()
    }
}

/// Hit/miss counters for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// Accesses that went to memory.
    pub memory_accesses: u64,
}

impl CacheStats {
    /// Fraction of accesses served from memory.
    pub fn memory_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_used: u64,
}

#[derive(Debug, Clone)]
struct Level {
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_shift: u32,
}

impl Level {
    fn new(config: CacheLevelConfig) -> Self {
        Level {
            sets: vec![Vec::with_capacity(config.ways as usize); config.sets() as usize],
            ways: config.ways as usize,
            line_shift: config.line_bytes.trailing_zeros(),
        }
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.raw() >> self.line_shift;
        ((line % self.sets.len() as u64) as usize, line)
    }

    /// Looks up and refreshes recency; true on hit.
    fn access(&mut self, addr: PhysAddr, clock: u64) -> bool {
        let (set, tag) = self.index(addr);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            l.last_used = clock;
            true
        } else {
            false
        }
    }

    /// Installs a line, evicting LRU when full.
    fn fill(&mut self, addr: PhysAddr, clock: u64) {
        let (set, tag) = self.index(addr);
        let set = &mut self.sets[set];
        if set.iter().any(|l| l.tag == tag) {
            return;
        }
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
                .expect("full set is nonempty");
            set.swap_remove(lru);
        }
        set.push(Line {
            tag,
            last_used: clock,
        });
    }

    /// Drops every line in the physical range `[start, end)`.
    fn invalidate_range(&mut self, start: u64, end: u64) -> usize {
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|l| {
                let base = l.tag << self.line_shift;
                base + (1 << self.line_shift) <= start || base >= end
            });
            removed += before - set.len();
        }
        removed
    }
}

/// Per-core L1D + L2 in front of a shared LLC.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<Level>,
    l2: Vec<Level>,
    llc: Level,
    clock: u64,
    stats: CacheStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or `cores == 0`.
    pub fn new(config: CacheConfig, cores: u32) -> Self {
        config.validate().expect("invalid cache config");
        assert!(cores > 0, "need at least one core");
        CacheHierarchy {
            l1: (0..cores).map(|_| Level::new(config.l1d)).collect(),
            l2: (0..cores).map(|_| Level::new(config.l2)).collect(),
            llc: Level::new(config.llc),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Performs one data access by core `core` to physical address
    /// `addr`, filling the levels on the way back (inclusive hierarchy).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: PhysAddr) -> CacheOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let clock = self.clock;
        if self.l1[core].access(addr, clock) {
            self.stats.l1_hits += 1;
            return CacheOutcome::L1;
        }
        let outcome = if self.l2[core].access(addr, clock) {
            self.stats.l2_hits += 1;
            CacheOutcome::L2
        } else if self.llc.access(addr, clock) {
            self.stats.llc_hits += 1;
            CacheOutcome::Llc
        } else {
            self.stats.memory_accesses += 1;
            CacheOutcome::Memory
        };
        // Fill inward.
        self.l1[core].fill(addr, clock);
        if outcome != CacheOutcome::L2 {
            self.l2[core].fill(addr, clock);
        }
        if outcome == CacheOutcome::Memory {
            self.llc.fill(addr, clock);
        }
        outcome
    }

    /// Invalidates a physical range in every level — data migration
    /// (promotion collapse / compaction) moves bytes to new frames, so
    /// lines caching the old frames are stale. Returns lines dropped.
    pub fn invalidate_phys_range(&mut self, start: PhysAddr, bytes: u64) -> usize {
        let (s, e) = (start.raw(), start.raw() + bytes);
        let mut n = self.llc.invalidate_range(s, e);
        for l in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            n += l.invalidate_range(s, e);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> CacheHierarchy {
        CacheHierarchy::new(CacheConfig::tiny(), 2)
    }

    #[test]
    fn cold_then_warm() {
        let mut c = h();
        let a = PhysAddr::new(0x4000);
        assert_eq!(c.access(0, a), CacheOutcome::Memory);
        assert_eq!(c.access(0, a), CacheOutcome::L1);
        // Same line, different byte: still an L1 hit.
        assert_eq!(c.access(0, PhysAddr::new(0x403F)), CacheOutcome::L1);
        // Next line: miss.
        assert_eq!(c.access(0, PhysAddr::new(0x4040)), CacheOutcome::Memory);
        assert_eq!(c.stats().l1_hits, 2);
        assert_eq!(c.stats().memory_accesses, 2);
    }

    #[test]
    fn llc_is_shared_between_cores() {
        let mut c = h();
        let a = PhysAddr::new(0x9000);
        c.access(0, a);
        // Core 1 misses its private levels but hits the shared LLC.
        assert_eq!(c.access(1, a), CacheOutcome::Llc);
        // And now has it in L1.
        assert_eq!(c.access(1, a), CacheOutcome::L1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut c = h();
        // Fill one L1 set (4 ways) past capacity with same-set lines.
        let l1_sets = CacheConfig::tiny().l1d.sets();
        let stride = 64 * l1_sets;
        for k in 0..5u64 {
            c.access(0, PhysAddr::new(k * stride));
        }
        // Line 0 fell out of L1 but is still in L2.
        assert_eq!(c.access(0, PhysAddr::new(0)), CacheOutcome::L2);
    }

    #[test]
    fn memory_ratio_of_streaming_vs_looping() {
        let mut c = h();
        // Loop over a 1KB buffer (fits L1): low memory ratio.
        for i in 0..4096u64 {
            c.access(0, PhysAddr::new((i % 1024) & !63));
        }
        assert!(c.stats().memory_ratio() < 0.02);
        // Stream far beyond every level: each new line is a memory access.
        let mut c2 = h();
        for i in 0..4096u64 {
            c2.access(0, PhysAddr::new(i * 64));
        }
        assert!(c2.stats().memory_ratio() > 0.95);
    }

    #[test]
    fn invalidate_phys_range_drops_lines() {
        let mut c = h();
        c.access(0, PhysAddr::new(0x8000));
        c.access(1, PhysAddr::new(0x8040));
        let dropped = c.invalidate_phys_range(PhysAddr::new(0x8000), 0x80);
        assert!(dropped >= 2);
        assert_eq!(c.access(0, PhysAddr::new(0x8000)), CacheOutcome::Memory);
    }

    #[test]
    fn geometry_validation() {
        CacheConfig::typical_per_core().validate().unwrap();
        CacheConfig::tiny().validate().unwrap();
        assert!(CacheLevelConfig::new(0, 1, 64).validate().is_err());
        assert!(CacheLevelConfig::new(1024, 1, 48).validate().is_err());
        assert!(CacheLevelConfig::new(1000, 4, 64).validate().is_err());
        assert_eq!(CacheLevelConfig::new(32 << 10, 8, 64).sets(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = CacheHierarchy::new(CacheConfig::tiny(), 0);
    }

    #[test]
    fn outcome_names() {
        assert_eq!(CacheOutcome::L1.name(), "L1");
        assert_eq!(CacheOutcome::Memory.name(), "memory");
    }
}
