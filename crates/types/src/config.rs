//! Evaluation-system configuration.
//!
//! [`SystemConfig::paper_system`] reproduces the paper's Table 2 (Intel Xeon
//! E5-2667 v3, Linux v5.15): the TLB hierarchy geometry, the PCC geometry,
//! and the promotion cadence. Everything is adjustable so the sensitivity
//! studies (Fig. 6) and scaled-down test configs can be expressed.

use crate::addr::PageSize;
use crate::error::ConfigError;

/// Geometry of one TLB level for one page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbLevelConfig {
    /// Total number of entries.
    pub entries: u32,
    /// Associativity (`entries` for fully associative).
    pub ways: u32,
}

impl TlbLevelConfig {
    /// Creates a geometry; `ways == 0` or non-dividing geometry is rejected
    /// at [`validate`](Self::validate) time.
    pub const fn new(entries: u32, ways: u32) -> Self {
        TlbLevelConfig { entries, ways }
    }

    /// Number of sets (`entries / ways`).
    pub const fn sets(&self) -> u32 {
        self.entries / self.ways
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `entries` or `ways` is zero or `ways`
    /// does not divide `entries`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.entries == 0 || self.ways == 0 {
            return Err(ConfigError::new("TLB entries and ways must be nonzero"));
        }
        if !self.entries.is_multiple_of(self.ways) {
            return Err(ConfigError::new("TLB ways must divide entries"));
        }
        Ok(())
    }
}

/// Configuration of a core's data-TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// L1 D-TLB for 4 KiB pages.
    pub l1_4k: TlbLevelConfig,
    /// L1 D-TLB for 2 MiB pages.
    pub l1_2m: TlbLevelConfig,
    /// L1 D-TLB for 1 GiB pages.
    pub l1_1g: TlbLevelConfig,
    /// Unified L2 TLB (4 KiB and 2 MiB entries share it, as on Haswell).
    pub l2: TlbLevelConfig,
    /// Whether 1 GiB translations may also be cached in the L2 TLB.
    /// Haswell does not cache 1 GiB entries in its STLB.
    pub l2_holds_1g: bool,
}

impl TlbConfig {
    /// The paper's Table 2 TLB hierarchy (Haswell Xeon E5-2667 v3).
    pub const fn paper() -> Self {
        TlbConfig {
            l1_4k: TlbLevelConfig::new(64, 4),
            l1_2m: TlbLevelConfig::new(32, 4),
            l1_1g: TlbLevelConfig::new(4, 4),
            l2: TlbLevelConfig::new(1024, 8),
            l2_holds_1g: false,
        }
    }

    /// A scaled-down hierarchy for fast unit tests (ratios preserved).
    pub const fn tiny() -> Self {
        TlbConfig {
            l1_4k: TlbLevelConfig::new(8, 4),
            l1_2m: TlbLevelConfig::new(4, 4),
            l1_1g: TlbLevelConfig::new(2, 2),
            l2: TlbLevelConfig::new(64, 8),
            l2_holds_1g: false,
        }
    }

    /// The L1 geometry used for `size` pages.
    pub const fn l1_for(&self, size: PageSize) -> TlbLevelConfig {
        match size {
            PageSize::Base4K => self.l1_4k,
            PageSize::Huge2M => self.l1_2m,
            PageSize::Huge1G => self.l1_1g,
        }
    }

    /// Checks internal consistency of all levels.
    ///
    /// # Errors
    ///
    /// Propagates the first failing [`TlbLevelConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.l1_4k.validate()?;
        self.l1_2m.validate()?;
        self.l1_1g.validate()?;
        self.l2.validate()
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::paper()
    }
}

/// Configuration of one promotion candidate cache (§3.2.1 and Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PccConfig {
    /// Number of entries (fully associative). Paper default: 128 for the
    /// 2 MiB PCC, 8 for the 1 GiB PCC.
    pub entries: u32,
    /// Width in bits of the saturating frequency counter (paper: 8).
    pub counter_bits: u32,
    /// Width in bits of the virtual-address-prefix tag (paper: 40 bits for
    /// the 2 MiB PCC on a 61-bit VA space, 31 bits for the 1 GiB PCC).
    pub tag_bits: u32,
    /// Insert only when the page-table accessed bit at the region's level
    /// was already set (the paper's cold-miss filter). Ablation switch.
    pub access_bit_filter: bool,
    /// Halve all counters whenever one saturates (the paper's decay
    /// function). Ablation switch.
    pub decay_on_saturation: bool,
}

impl PccConfig {
    /// The paper's 128-entry 2 MiB PCC.
    pub const fn paper_2m() -> Self {
        PccConfig {
            entries: 128,
            counter_bits: 8,
            tag_bits: 40,
            access_bit_filter: true,
            decay_on_saturation: true,
        }
    }

    /// The paper's 8-entry 1 GiB PCC.
    pub const fn paper_1g() -> Self {
        PccConfig {
            entries: 8,
            counter_bits: 8,
            tag_bits: 31,
            access_bit_filter: true,
            decay_on_saturation: true,
        }
    }

    /// Same geometry with a different entry count (Fig. 6 sweep).
    #[must_use]
    pub const fn with_entries(mut self, entries: u32) -> Self {
        self.entries = entries;
        self
    }

    /// Maximum counter value (`2^counter_bits - 1`).
    pub const fn counter_max(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }

    /// Storage for one entry in bits (tag + counter).
    pub const fn entry_bits(&self) -> u64 {
        self.tag_bits as u64 + self.counter_bits as u64
    }

    /// Total storage in bytes, rounding each entry up to whole bytes the
    /// way the paper does (40-bit tag + 8-bit counter = "6B").
    pub const fn storage_bytes(&self) -> u64 {
        let entry_bytes = self.entry_bits().div_ceil(8);
        entry_bytes * self.entries as u64
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any field is zero or the counter is wider
    /// than 63 bits.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.entries == 0 {
            return Err(ConfigError::new("PCC must have at least one entry"));
        }
        if self.counter_bits == 0 || self.counter_bits > 63 {
            return Err(ConfigError::new("PCC counter bits must be in 1..=63"));
        }
        if self.tag_bits == 0 || self.tag_bits > 64 {
            return Err(ConfigError::new("PCC tag bits must be in 1..=64"));
        }
        Ok(())
    }
}

impl Default for PccConfig {
    fn default() -> Self {
        PccConfig::paper_2m()
    }
}

/// Geometry of a split page-walk (paging-structure) cache. Modelled in
/// `hpage-tlb`; optional in the simulation because the paper treats PWCs
/// as a design *alternative* (§5.4.1): they shorten walks but cannot
/// identify promotion candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PwcConfig {
    /// PML4E-cache entries (512 GiB-region tags).
    pub pml4e_entries: u32,
    /// PDPTE-cache entries (1 GiB-region tags).
    pub pdpte_entries: u32,
    /// PDE-cache entries (2 MiB-region tags).
    pub pde_entries: u32,
}

impl PwcConfig {
    /// A typical modern-CPU geometry (4/32/64).
    pub const fn typical() -> Self {
        PwcConfig {
            pml4e_entries: 4,
            pdpte_entries: 32,
            pde_entries: 64,
        }
    }

    /// Geometry scaled in proportion to a shrunken L2 TLB.
    ///
    /// [`typical`](Self::typical) pairs with the paper's 1024-entry L2
    /// (Table 2). Scaled-down experiment profiles shrink the TLB so
    /// coverage ratios hold at small footprints; a full-size PWC against
    /// such a footprint never misses (mean references pins at 1.0
    /// instead of the paper's 1.1–1.4 band). Scaling each array by the
    /// same factor as the L2 keeps the PWC-reach-to-TLB-reach ratio.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the scale factor would round any
    /// structure-cache array down to zero entries. Earlier revisions
    /// silently clamped such arrays to one entry; that hid geometry bugs
    /// in nested (2D) mode, where a single walk probes every array up to
    /// five times and a phantom 1-entry array distorts the measured walk
    /// cost. Undersized geometries are now a configuration error the
    /// caller must handle.
    pub fn scaled_to_tlb(l2_entries: u32) -> Result<Self, ConfigError> {
        const PAPER_L2_ENTRIES: u32 = 1024;
        fn scale(what: &'static str, entries: u32, l2: u32) -> Result<u32, ConfigError> {
            let scaled = entries * l2 / PAPER_L2_ENTRIES;
            if scaled == 0 {
                return Err(ConfigError::new(what));
            }
            Ok(scaled)
        }
        let t = PwcConfig::typical();
        Ok(PwcConfig {
            pml4e_entries: scale(
                "L2 TLB too small to scale the PML4E cache: array would have 0 entries",
                t.pml4e_entries,
                l2_entries,
            )?,
            pdpte_entries: scale(
                "L2 TLB too small to scale the PDPTE cache: array would have 0 entries",
                t.pdpte_entries,
                l2_entries,
            )?,
            pde_entries: scale(
                "L2 TLB too small to scale the PDE cache: array would have 0 entries",
                t.pde_entries,
                l2_entries,
            )?,
        })
    }

    /// [`scaled_to_tlb`](Self::scaled_to_tlb) with each array floored at
    /// one entry instead of rejecting.
    ///
    /// Native-mode experiment profiles use this: a one-entry upper-level
    /// array is a legitimate (if tiny) native structure cache, and the
    /// scaled-down profiles need *some* PWC to show realistic walk-cost
    /// pressure. Nested (2D) geometry must go through the strict
    /// constructor — there a phantom one-entry array is probed up to
    /// five times per walk and distorts the measured cost.
    #[must_use]
    pub fn scaled_to_tlb_clamped(l2_entries: u32) -> Self {
        const PAPER_L2_ENTRIES: u32 = 1024;
        let t = PwcConfig::typical();
        let scale = |entries: u32| (entries * l2_entries / PAPER_L2_ENTRIES).max(1);
        PwcConfig {
            pml4e_entries: scale(t.pml4e_entries),
            pdpte_entries: scale(t.pdpte_entries),
            pde_entries: scale(t.pde_entries),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any array is empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pml4e_entries == 0 || self.pdpte_entries == 0 || self.pde_entries == 0 {
            return Err(ConfigError::new("PWC arrays must be nonempty"));
        }
        Ok(())
    }
}

impl Default for PwcConfig {
    fn default() -> Self {
        PwcConfig::typical()
    }
}

/// Which translation dimension(s) get a PCC in nested (virtualized) mode —
/// the FHPM guest-only / host-only / both ablation axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PccPlacement {
    /// PCC-guided promotion in the guest only; host stays base pages.
    Guest,
    /// PCC-guided promotion in the host only; guest stays base pages.
    Host,
    /// PCCs on both dimensions (the paper's recommended deployment).
    #[default]
    Both,
    /// No PCC anywhere — the 2D base-pages floor.
    None,
}

impl PccPlacement {
    /// All placements, in the canonical ablation order.
    pub const ALL: [PccPlacement; 4] = [
        PccPlacement::None,
        PccPlacement::Guest,
        PccPlacement::Host,
        PccPlacement::Both,
    ];

    /// Whether the guest dimension runs a PCC-guided promotion policy.
    pub const fn guest_enabled(&self) -> bool {
        matches!(self, PccPlacement::Guest | PccPlacement::Both)
    }

    /// Whether the host dimension runs a PCC-guided promotion policy.
    pub const fn host_enabled(&self) -> bool {
        matches!(self, PccPlacement::Host | PccPlacement::Both)
    }

    /// Parses the `hpsim --pcc-placement` spelling.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for anything but `guest|host|both|none`.
    pub fn parse(s: &str) -> Result<Self, ConfigError> {
        match s {
            "guest" => Ok(PccPlacement::Guest),
            "host" => Ok(PccPlacement::Host),
            "both" => Ok(PccPlacement::Both),
            "none" => Ok(PccPlacement::None),
            _ => Err(ConfigError::new(
                "PCC placement must be one of guest|host|both|none",
            )),
        }
    }
}

impl core::fmt::Display for PccPlacement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PccPlacement::Guest => write!(f, "guest"),
            PccPlacement::Host => write!(f, "host"),
            PccPlacement::Both => write!(f, "both"),
            PccPlacement::None => write!(f, "none"),
        }
    }
}

/// Configuration of nested (two-dimensional) translation: each guest-walk
/// step is itself translated through the host page table, so structure
/// caches exist on both dimensions and promotion policy can be placed on
/// either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NestedConfig {
    /// Which dimension(s) run a PCC-guided promotion policy.
    pub placement: PccPlacement,
    /// Guest-side paging-structure cache (VA-tagged).
    pub guest_pwc: PwcConfig,
    /// Host-side paging-structure cache (guest-physical-tagged).
    pub host_pwc: PwcConfig,
    /// Entries in the fully associative nested TLB caching gPA→hPA
    /// translations at the host mapping's size — one entry covers a
    /// 4 KiB page or a whole 2 MiB / 1 GiB host region (a hit skips
    /// the host walk entirely).
    pub ntlb_entries: u32,
}

impl NestedConfig {
    /// A typical geometry: `typical` PWCs on both dimensions plus a
    /// 64-entry nested TLB (comparable to documented nTLB capacities on
    /// EPT-era parts).
    pub const fn typical() -> Self {
        NestedConfig {
            placement: PccPlacement::Both,
            guest_pwc: PwcConfig::typical(),
            host_pwc: PwcConfig::typical(),
            ntlb_entries: 64,
        }
    }

    /// Same geometry with a different PCC placement.
    #[must_use]
    pub const fn with_placement(mut self, placement: PccPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either PWC is invalid or the nested TLB
    /// is empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.guest_pwc.validate()?;
        self.host_pwc.validate()?;
        if self.ntlb_entries == 0 {
            return Err(ConfigError::new("nested TLB must have at least one entry"));
        }
        Ok(())
    }
}

impl Default for NestedConfig {
    fn default() -> Self {
        NestedConfig::typical()
    }
}

/// Address-translation mode of the simulated machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TranslationMode {
    /// Native one-dimensional translation (the paper's evaluation).
    #[default]
    Native,
    /// Nested two-dimensional guest/host translation (virtualized).
    Nested(NestedConfig),
}

/// How the OS selects promotion candidates across multiple per-core PCCs
/// (§3.3.2, evaluated in Figs. 8–9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PromotionPolicyKind {
    /// Pick the candidates with the globally highest PCC frequencies.
    #[default]
    HighestFrequency,
    /// Distribute promotions evenly across PCCs.
    RoundRobin,
}

impl core::fmt::Display for PromotionPolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PromotionPolicyKind::HighestFrequency => write!(f, "highest-pcc-frequency"),
            PromotionPolicyKind::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// Constants of the analytic timing model in `hpage-perf`.
///
/// The model is
///
/// ```text
/// cycles = accesses * base_cpi_millis/1000
///        + l1_tlb_misses * l2_tlb_lat + walks * walk_lat
/// ```
///
/// i.e. address translation overhead is added on top of a per-access
/// base cost that stands in for compute + cache behaviour. See
/// DESIGN.md for the calibration rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingConfig {
    /// Base cost per memory access in milli-cycles (covers issue +
    /// cache hierarchy on a TLB hit). Stored ×1000 to stay integral.
    pub base_cost_millicycles: u64,
    /// Added latency of an L2 TLB lookup after an L1 miss, in cycles.
    pub l2_tlb_latency: u64,
    /// Average latency of a hardware page-table walk, in cycles
    /// (after page-walk-cache effects; Haswell-era measurements put this
    /// in the tens-to-low-hundreds of cycles).
    pub walk_latency: u64,
    /// Cycles charged per page promoted (512 PTE updates, copy, TLB
    /// shootdown) — the promotion overhead the paper observes on the real
    /// system.
    pub promotion_cost: u64,
    /// Cycles charged per base page migrated (compaction) or collapsed
    /// (copied into a huge frame during promotion).
    pub migrate_cost_per_page: u64,
    /// Added latency of a data-cache L2 hit (only charged when the
    /// optional cache model is enabled and `RunCounters` carries cache
    /// events).
    pub cache_l2_latency: u64,
    /// Added latency of an LLC hit.
    pub cache_llc_latency: u64,
    /// Added latency of a memory access.
    pub cache_memory_latency: u64,
}

impl TimingConfig {
    /// Defaults calibrated so the 8 evaluation workloads land in the
    /// paper's reported speedup bands (see EXPERIMENTS.md).
    pub const fn paper() -> Self {
        TimingConfig {
            base_cost_millicycles: 25_000, // 25 cycles/access average
            l2_tlb_latency: 7,
            walk_latency: 120,
            promotion_cost: 80_000,
            migrate_cost_per_page: 1_500,
            cache_l2_latency: 10,
            cache_llc_latency: 35,
            cache_memory_latency: 200,
        }
    }

    /// Adapts the constants for use with the optional cache model: the
    /// per-access base cost drops to issue cost only (~2 cycles), since
    /// memory time is then charged per cache event instead of being
    /// folded into the average.
    #[must_use]
    pub const fn with_cache_model(mut self) -> Self {
        self.base_cost_millicycles = 2_000;
        self
    }

    /// The paper constants with promotion/compaction overheads divided by
    /// `factor`. Simulation windows are orders of magnitude shorter than
    /// the paper's multi-minute real runs, so absolute overhead costs
    /// must shrink with the window to preserve the paper's
    /// overhead-to-runtime ratio (see DESIGN.md).
    #[must_use]
    pub const fn with_window_scale(mut self, factor: u64) -> Self {
        let f = if factor == 0 { 1 } else { factor };
        self.promotion_cost /= f;
        self.migrate_cost_per_page /= f;
        self
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::paper()
    }
}

/// Full evaluation-system configuration (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores (each with its own TLB hierarchy and PCC).
    pub cores: u32,
    /// Per-core TLB hierarchy.
    pub tlb: TlbConfig,
    /// Per-core 2 MiB PCC.
    pub pcc_2m: PccConfig,
    /// Optional per-core 1 GiB PCC (§3.2.3). `None` disables 1 GiB
    /// tracking.
    pub pcc_1g: Option<PccConfig>,
    /// Optional per-core page-walk cache (§5.4.1 ablation). `None`
    /// charges every walk its full level count.
    pub pwc: Option<PwcConfig>,
    /// Physical memory size in bytes.
    pub phys_mem_bytes: u64,
    /// Promotion interval measured in memory accesses (stands in for the
    /// paper's 30-second wall-clock interval; see DESIGN.md).
    pub promotion_interval_accesses: u64,
    /// Maximum promotions per interval — the paper's
    /// `regions_to_promote` kernel parameter, default = PCC capacity.
    pub regions_to_promote: u32,
    /// Base pages khugepaged/HawkEye may scan per interval (the paper:
    /// 4096 = 8 huge regions). Scaled profiles shrink this with the rest
    /// of the hardware so scan-rate starvation matches the paper's
    /// footprint-to-scan-budget ratio.
    pub scanner_pages_per_interval: u64,
    /// OS candidate-selection policy across PCCs.
    pub promotion_policy: PromotionPolicyKind,
    /// Timing-model constants.
    pub timing: TimingConfig,
}

impl SystemConfig {
    /// The paper's Table 2 system: 128-entry per-core 2 MiB PCC, up to 128
    /// promotions per interval, Haswell TLB hierarchy.
    pub fn paper_system() -> Self {
        SystemConfig {
            cores: 1,
            tlb: TlbConfig::paper(),
            pcc_2m: PccConfig::paper_2m(),
            pcc_1g: None,
            pwc: None,
            phys_mem_bytes: 64 << 30,
            promotion_interval_accesses: 20_000_000,
            regions_to_promote: 128,
            scanner_pages_per_interval: 4096,
            promotion_policy: PromotionPolicyKind::HighestFrequency,
            timing: TimingConfig::paper(),
        }
    }

    /// A small configuration for fast unit/integration tests. Promotion
    /// overheads are window-scaled (tests simulate ~10^6 accesses versus
    /// the paper's ~10^11).
    pub fn tiny() -> Self {
        SystemConfig {
            cores: 1,
            tlb: TlbConfig::tiny(),
            pcc_2m: PccConfig::paper_2m().with_entries(16),
            pcc_1g: None,
            pwc: None,
            phys_mem_bytes: 256 << 20,
            promotion_interval_accesses: 50_000,
            regions_to_promote: 16,
            scanner_pages_per_interval: 512,
            promotion_policy: PromotionPolicyKind::HighestFrequency,
            timing: TimingConfig::paper().with_window_scale(40),
        }
    }

    /// Checks internal consistency of all components.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any sub-config is invalid, there are no
    /// cores, physical memory is not 2 MiB-aligned, or the promotion
    /// interval is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("system must have at least one core"));
        }
        self.tlb.validate()?;
        self.pcc_2m.validate()?;
        if let Some(p) = &self.pcc_1g {
            p.validate()?;
        }
        if let Some(p) = &self.pwc {
            p.validate()?;
        }
        if self.phys_mem_bytes == 0 || !self.phys_mem_bytes.is_multiple_of(PageSize::Huge2M.bytes())
        {
            return Err(ConfigError::new(
                "physical memory must be a nonzero multiple of 2MiB",
            ));
        }
        if self.promotion_interval_accesses == 0 {
            return Err(ConfigError::new("promotion interval must be nonzero"));
        }
        if self.regions_to_promote == 0 {
            return Err(ConfigError::new("regions_to_promote must be nonzero"));
        }
        if self.scanner_pages_per_interval == 0 {
            return Err(ConfigError::new(
                "scanner_pages_per_interval must be nonzero",
            ));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_values() {
        let c = SystemConfig::paper_system();
        assert_eq!(c.tlb.l1_4k.entries, 64);
        assert_eq!(c.tlb.l1_4k.ways, 4);
        assert_eq!(c.tlb.l1_2m.entries, 32);
        assert_eq!(c.tlb.l1_1g.entries, 4);
        assert_eq!(c.tlb.l2.entries, 1024);
        assert_eq!(c.tlb.l2.ways, 8);
        assert_eq!(c.pcc_2m.entries, 128);
        assert_eq!(c.pcc_2m.tag_bits, 40);
        assert_eq!(c.pcc_2m.counter_bits, 8);
        assert_eq!(c.regions_to_promote, 128);
        c.validate().unwrap();
    }

    #[test]
    fn paper_storage_arithmetic() {
        // §3.2.1: 40-bit tag + 8-bit counter = 6B; 128 entries = 768B.
        let p2m = PccConfig::paper_2m();
        assert_eq!(p2m.entry_bits(), 48);
        assert_eq!(p2m.storage_bytes(), 768);
        // 1GB PCC: 31-bit tag + 8-bit counter, 8 entries = 40B.
        let p1g = PccConfig::paper_1g();
        assert_eq!(p1g.storage_bytes(), 40);
        // Combined 808B ≈ 50 TLB entries at 16B each (paper's value
        // proposition argument).
        let total = p2m.storage_bytes() + p1g.storage_bytes();
        assert_eq!(total, 808);
        assert_eq!(total / 16, 50);
    }

    #[test]
    fn counter_max() {
        assert_eq!(PccConfig::paper_2m().counter_max(), 255);
        let c = PccConfig {
            counter_bits: 4,
            ..PccConfig::paper_2m()
        };
        assert_eq!(c.counter_max(), 15);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TlbLevelConfig::new(0, 1).validate().is_err());
        assert!(TlbLevelConfig::new(8, 3).validate().is_err());
        assert!(TlbLevelConfig::new(8, 0).validate().is_err());
        assert!(PccConfig::paper_2m().with_entries(0).validate().is_err());
        let mut sys = SystemConfig::paper_system();
        sys.cores = 0;
        assert!(sys.validate().is_err());
        let mut sys = SystemConfig::paper_system();
        sys.phys_mem_bytes = 4096;
        assert!(sys.validate().is_err());
        let mut sys = SystemConfig::paper_system();
        sys.promotion_interval_accesses = 0;
        assert!(sys.validate().is_err());
    }

    #[test]
    fn tiny_config_is_valid() {
        SystemConfig::tiny().validate().unwrap();
        TlbConfig::tiny().validate().unwrap();
    }

    #[test]
    fn pwc_config_validation() {
        PwcConfig::typical().validate().unwrap();
        let bad = PwcConfig {
            pde_entries: 0,
            ..PwcConfig::typical()
        };
        assert!(bad.validate().is_err());
        let mut sys = SystemConfig::paper_system();
        sys.pwc = Some(bad);
        assert!(sys.validate().is_err());
        sys.pwc = Some(PwcConfig::typical());
        sys.validate().unwrap();
    }

    #[test]
    fn scaled_to_tlb_rejects_undersized_geometry() {
        // 16-entry L2 scales the 4-entry PML4E cache to 4*16/1024 = 0;
        // that used to clamp to 1 silently — it must now be an error.
        assert!(PwcConfig::scaled_to_tlb(16).is_err());
        // The smallest L2 whose scaled PML4E cache is still nonempty.
        let ok = PwcConfig::scaled_to_tlb(256).unwrap();
        assert_eq!(ok.pml4e_entries, 1);
        assert_eq!(ok.pdpte_entries, 8);
        assert_eq!(ok.pde_entries, 16);
        ok.validate().unwrap();
        // At the paper's L2 size scaling is the identity.
        assert_eq!(
            PwcConfig::scaled_to_tlb(1024).unwrap(),
            PwcConfig::typical()
        );
        // The clamped variant agrees wherever the strict one succeeds,
        // and floors at one entry where it rejects.
        assert_eq!(PwcConfig::scaled_to_tlb_clamped(256), ok);
        assert_eq!(PwcConfig::scaled_to_tlb_clamped(1024), PwcConfig::typical());
        let clamped = PwcConfig::scaled_to_tlb_clamped(128);
        assert_eq!(clamped.pml4e_entries, 1);
        assert_eq!(clamped.pdpte_entries, 4);
        assert_eq!(clamped.pde_entries, 8);
        clamped.validate().unwrap();
    }

    #[test]
    fn pcc_placement_parse_and_flags() {
        for p in PccPlacement::ALL {
            assert_eq!(PccPlacement::parse(&p.to_string()).unwrap(), p);
        }
        assert!(PccPlacement::parse("everywhere").is_err());
        assert!(PccPlacement::Both.guest_enabled() && PccPlacement::Both.host_enabled());
        assert!(PccPlacement::Guest.guest_enabled() && !PccPlacement::Guest.host_enabled());
        assert!(!PccPlacement::Host.guest_enabled() && PccPlacement::Host.host_enabled());
        assert!(!PccPlacement::None.guest_enabled() && !PccPlacement::None.host_enabled());
    }

    #[test]
    fn nested_config_validation() {
        NestedConfig::typical().validate().unwrap();
        let bad = NestedConfig {
            ntlb_entries: 0,
            ..NestedConfig::typical()
        };
        assert!(bad.validate().is_err());
        let bad = NestedConfig {
            host_pwc: PwcConfig {
                pde_entries: 0,
                ..PwcConfig::typical()
            },
            ..NestedConfig::typical()
        };
        assert!(bad.validate().is_err());
        assert_eq!(
            NestedConfig::typical()
                .with_placement(PccPlacement::Host)
                .placement,
            PccPlacement::Host
        );
    }

    #[test]
    fn l1_for_selects_by_size() {
        let t = TlbConfig::paper();
        assert_eq!(t.l1_for(PageSize::Base4K).entries, 64);
        assert_eq!(t.l1_for(PageSize::Huge2M).entries, 32);
        assert_eq!(t.l1_for(PageSize::Huge1G).entries, 4);
    }

    #[test]
    fn policy_display() {
        assert_eq!(
            PromotionPolicyKind::HighestFrequency.to_string(),
            "highest-pcc-frequency"
        );
        assert_eq!(PromotionPolicyKind::RoundRobin.to_string(), "round-robin");
    }
}
