//! Memory-access trace records.

use crate::addr::VirtAddr;
use core::fmt;

/// Identifies a simulated hardware core (each core owns a TLB hierarchy and,
/// in the PCC design, a per-core PCC).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies a simulated software thread within a process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// Identifies a simulated process (its own virtual address space).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Whether an access reads or writes memory.
///
/// The TLB model treats both identically (data TLB), but workload
/// generators record intent so downstream models (e.g. dirty-bit tracking
/// in a demotion policy extension) can use it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    #[default]
    Read,
    /// A data store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// One memory access in a workload trace.
///
/// Workload kernels in `hpage-trace` emit streams of these; the simulator
/// feeds them through the TLB hierarchy of the core the thread runs on.
///
/// ```
/// use hpage_types::{AccessKind, MemoryAccess, VirtAddr};
/// let a = MemoryAccess::read(VirtAddr::new(0x1000));
/// assert_eq!(a.kind, AccessKind::Read);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// The virtual address touched.
    pub addr: VirtAddr,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Creates a read access.
    pub const fn read(addr: VirtAddr) -> Self {
        MemoryAccess {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub const fn write(addr: VirtAddr) -> Self {
        MemoryAccess {
            addr,
            kind: AccessKind::Write,
        }
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}", self.kind, self.addr.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemoryAccess::read(VirtAddr::new(1));
        let w = MemoryAccess::write(VirtAddr::new(1));
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(r.addr, w.addr);
        assert_ne!(r, w);
    }

    #[test]
    fn id_display() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(ThreadId(1).to_string(), "thread1");
        assert_eq!(ProcessId(7).to_string(), "pid7");
        assert_eq!(MemoryAccess::read(VirtAddr::new(16)).to_string(), "R 0x10");
    }
}
