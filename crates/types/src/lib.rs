//! Foundation types shared by every `hpage` crate.
//!
//! This crate defines the vocabulary of the simulator:
//!
//! * [`VirtAddr`] / [`PhysAddr`] — 64-bit address newtypes,
//! * [`PageSize`] — the x86-64 page sizes (4 KiB, 2 MiB, 1 GiB),
//! * [`Vpn`] / [`Pfn`] — page-number newtypes,
//! * [`MemoryAccess`] — one record of the trace streams produced by
//!   `hpage-trace` and consumed by `hpage-tlb`,
//! * [`SystemConfig`] and friends — the evaluation parameters of the paper's
//!   Table 2 plus the timing-model constants used by `hpage-perf`.
//!
//! # Examples
//!
//! ```
//! use hpage_types::{PageSize, VirtAddr};
//!
//! let va = VirtAddr::new(0x8A31_49B7_123);
//! // The "2MB virtual address prefix" from the paper is the 2 MiB VPN.
//! let prefix = va.vpn(PageSize::Huge2M);
//! assert_eq!(prefix.base().raw(), 0x8A31_49B7_123 & !(2 * 1024 * 1024 - 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod config;
mod error;
mod hash;
mod seed;

pub use access::{AccessKind, CoreId, MemoryAccess, ProcessId, ThreadId};
pub use addr::{PageSize, Pfn, PhysAddr, Region, VirtAddr, Vpn};
pub use config::{
    NestedConfig, PccConfig, PccPlacement, PromotionPolicyKind, PwcConfig, SystemConfig,
    TimingConfig, TlbConfig, TlbLevelConfig, TranslationMode,
};
pub use error::{ConfigError, HpageError};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use seed::derive_seed;

/// Number of 4 KiB base pages inside one 2 MiB huge page (x86-64: 512).
pub const BASE_PAGES_PER_2M: u64 = PageSize::Huge2M.bytes() / PageSize::Base4K.bytes();

/// Number of 2 MiB huge pages inside one 1 GiB gigantic page (x86-64: 512).
pub const HUGE_PAGES_PER_1G: u64 = PageSize::Huge1G.bytes() / PageSize::Huge2M.bytes();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_counts_match_x86() {
        assert_eq!(BASE_PAGES_PER_2M, 512);
        assert_eq!(HUGE_PAGES_PER_1G, 512);
    }
}
