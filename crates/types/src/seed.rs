//! Seed hygiene: derive statistically independent RNG streams from one
//! experiment seed.
//!
//! Passing the *same* seed to two different consumers (e.g. the R-MAT
//! workload generator and the fragmentation injector) aliases their RNG
//! streams: both draw the identical pseudo-random sequence, silently
//! correlating what should be independent randomness. Deriving a
//! per-purpose seed keeps experiments reproducible (the derivation is a
//! pure function of the base seed and a purpose label) while giving every
//! consumer its own stream.

/// One round of the splitmix64 output mixer — a full-avalanche finalizer,
/// so any single-bit change in the input flips about half the output
/// bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a purpose-specific seed from a base seed.
///
/// Deterministic: the same `(seed, purpose)` pair always yields the same
/// value, and distinct purposes yield (with overwhelming probability)
/// distinct, uncorrelated values — including never echoing `seed` back
/// for the purposes used in this workspace.
///
/// # Examples
///
/// ```
/// use hpage_types::derive_seed;
///
/// let base = 0xC0FFEE;
/// let frag = derive_seed(base, "frag");
/// assert_ne!(frag, base, "derived stream must not alias the base");
/// assert_eq!(frag, derive_seed(base, "frag"), "derivation is pure");
/// assert_ne!(frag, derive_seed(base, "workload"));
/// ```
pub fn derive_seed(seed: u64, purpose: &str) -> u64 {
    // FNV-1a over the purpose label folds the string into 64 bits...
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in purpose.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // ...and splitmix64 finishes the mix with the base seed so close
    // seeds (0, 1, 2, ...) still land far apart.
    splitmix64(seed ^ splitmix64(h))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_purpose_sensitive() {
        assert_eq!(derive_seed(7, "frag"), derive_seed(7, "frag"));
        assert_ne!(derive_seed(7, "frag"), derive_seed(7, "workload"));
        assert_ne!(derive_seed(7, "frag"), derive_seed(8, "frag"));
    }

    #[test]
    fn does_not_alias_base_seed() {
        // The historical bug: the experiment SEED was reused verbatim for
        // the fragmentation injector, aliasing its stream with the R-MAT
        // generator's. The derivation must never echo the base back.
        for seed in [0u64, 1, 2, 0xC0FFEE, u64::MAX] {
            for purpose in ["frag", "workload", "faults"] {
                assert_ne!(derive_seed(seed, purpose), seed, "{seed}/{purpose}");
            }
        }
    }

    #[test]
    fn close_seeds_diverge() {
        // Sequential base seeds must not produce sequential derived seeds.
        let a = derive_seed(1, "frag");
        let b = derive_seed(2, "frag");
        assert!(a.abs_diff(b) > 1 << 32, "{a:#x} vs {b:#x}");
    }
}
