//! Error types shared across the workspace.

use core::fmt;

/// An invalid configuration was supplied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The human-readable reason the configuration was rejected.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Top-level error type for `hpage` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HpageError {
    /// A configuration was invalid.
    Config(ConfigError),
    /// The simulated system ran out of physical memory.
    OutOfMemory {
        /// Bytes that were requested when the allocation failed.
        requested: u64,
    },
    /// An operation referenced an unmapped virtual address.
    Unmapped {
        /// The raw virtual address that had no translation.
        addr: u64,
    },
    /// A promotion or demotion request was invalid (e.g. region already at
    /// the requested size).
    InvalidRemap {
        /// Explanation of why the remap was rejected.
        reason: String,
    },
    /// An operation was denied by an injected fault (fault-injection
    /// campaigns use this to distinguish synthetic failures from organic
    /// out-of-memory conditions).
    Fault {
        /// Which injected fault denied the operation.
        reason: String,
    },
    /// An internal consistency invariant was violated (double-free,
    /// stale translation, mismatched frame accounting). These indicate
    /// a bug in the caller or the engine, not a recoverable condition.
    InvariantViolation {
        /// Description of the violated invariant.
        what: String,
    },
}

impl fmt::Display for HpageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpageError::Config(e) => write!(f, "{e}"),
            HpageError::OutOfMemory { requested } => {
                write!(f, "out of physical memory (requested {requested} bytes)")
            }
            HpageError::Unmapped { addr } => {
                write!(f, "virtual address {addr:#x} is not mapped")
            }
            HpageError::InvalidRemap { reason } => write!(f, "invalid remap: {reason}"),
            HpageError::Fault { reason } => write!(f, "injected fault: {reason}"),
            HpageError::InvariantViolation { what } => {
                write!(f, "invariant violation: {what}")
            }
        }
    }
}

impl std::error::Error for HpageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HpageError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for HpageError {
    fn from(e: ConfigError) -> Self {
        HpageError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages() {
        let e = ConfigError::new("bad ways");
        assert_eq!(e.to_string(), "invalid configuration: bad ways");
        assert_eq!(e.message(), "bad ways");

        let e = HpageError::OutOfMemory { requested: 4096 };
        assert!(e.to_string().contains("4096"));

        let e = HpageError::Unmapped { addr: 0x1000 };
        assert!(e.to_string().contains("0x1000"));

        let e = HpageError::InvalidRemap {
            reason: "already huge".into(),
        };
        assert!(e.to_string().contains("already huge"));

        let e = HpageError::Fault {
            reason: "oom window".into(),
        };
        assert!(e.to_string().contains("injected fault: oom window"));

        let e = HpageError::InvariantViolation {
            what: "double free of pfn 7".into(),
        };
        assert!(e.to_string().contains("invariant violation: double free"));
    }

    #[test]
    fn config_error_is_source() {
        let e: HpageError = ConfigError::new("x").into();
        assert!(e.source().is_some());
        assert!(HpageError::OutOfMemory { requested: 1 }.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<HpageError>();
    }
}
