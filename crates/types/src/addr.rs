//! Address and page-number newtypes.

use core::fmt;

/// The page sizes supported by the x86-64 architecture modelled here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB base page.
    Base4K,
    /// 2 MiB huge page (PMD-level mapping).
    Huge2M,
    /// 1 GiB gigantic page (PUD-level mapping).
    Huge1G,
}

impl PageSize {
    /// All page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Base4K, PageSize::Huge2M, PageSize::Huge1G];

    /// Size of a page in bytes.
    ///
    /// ```
    /// use hpage_types::PageSize;
    /// assert_eq!(PageSize::Base4K.bytes(), 4096);
    /// assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
    /// assert_eq!(PageSize::Huge1G.bytes(), 1024 * 1024 * 1024);
    /// ```
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => 1 << 12,
            PageSize::Huge2M => 1 << 21,
            PageSize::Huge1G => 1 << 30,
        }
    }

    /// Number of low address bits covered by the page offset
    /// (12, 21, or 30).
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
            PageSize::Huge1G => 30,
        }
    }

    /// The next larger page size, if any.
    ///
    /// ```
    /// use hpage_types::PageSize;
    /// assert_eq!(PageSize::Base4K.promoted(), Some(PageSize::Huge2M));
    /// assert_eq!(PageSize::Huge1G.promoted(), None);
    /// ```
    pub const fn promoted(self) -> Option<PageSize> {
        match self {
            PageSize::Base4K => Some(PageSize::Huge2M),
            PageSize::Huge2M => Some(PageSize::Huge1G),
            PageSize::Huge1G => None,
        }
    }

    /// The next smaller page size, if any (the demotion target).
    pub const fn demoted(self) -> Option<PageSize> {
        match self {
            PageSize::Base4K => None,
            PageSize::Huge2M => Some(PageSize::Base4K),
            PageSize::Huge1G => Some(PageSize::Huge2M),
        }
    }

    /// Whether `self` is a huge page size (anything larger than the base
    /// page).
    pub const fn is_huge(self) -> bool {
        !matches!(self, PageSize::Base4K)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base4K => write!(f, "4KB"),
            PageSize::Huge2M => write!(f, "2MB"),
            PageSize::Huge1G => write!(f, "1GB"),
        }
    }
}

/// A virtual address in a simulated process address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The virtual page number of this address at page size `size`.
    ///
    /// ```
    /// use hpage_types::{PageSize, VirtAddr};
    /// let va = VirtAddr::new(0x20_1234);
    /// assert_eq!(va.vpn(PageSize::Base4K).index(), 0x201);
    /// assert_eq!(va.vpn(PageSize::Huge2M).index(), 0x1);
    /// ```
    pub const fn vpn(self, size: PageSize) -> Vpn {
        Vpn::new(self.0 >> size.shift(), size)
    }

    /// The offset of this address within its page of size `size`.
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// The address rounded down to the containing page boundary.
    pub const fn align_down(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 & !(size.bytes() - 1))
    }

    /// The address rounded up to the next page boundary (identity when
    /// already aligned). Saturates at `u64::MAX & !(size-1)`.
    pub const fn align_up(self, size: PageSize) -> VirtAddr {
        let mask = size.bytes() - 1;
        VirtAddr(self.0.saturating_add(mask) & !mask)
    }

    /// Whether the address is aligned to `size`.
    pub const fn is_aligned(self, size: PageSize) -> bool {
        self.0 & (size.bytes() - 1) == 0
    }

    /// Returns `self + offset` as a new address.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA {:#014x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// A physical address in simulated system memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The physical frame number of this address at page size `size`.
    pub const fn pfn(self, size: PageSize) -> Pfn {
        Pfn::new(self.0 >> size.shift(), size)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA {:#014x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

/// A virtual page number: a page-aligned virtual region identified by its
/// index and page size.
///
/// The paper's "2MB virtual address prefix" (the PCC tag) is exactly
/// `va.vpn(PageSize::Huge2M)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn {
    index: u64,
    size: PageSize,
}

impl Vpn {
    /// Creates a VPN from a page index and size.
    pub const fn new(index: u64, size: PageSize) -> Self {
        Vpn { index, size }
    }

    /// The page index (address >> shift).
    pub const fn index(self) -> u64 {
        self.index
    }

    /// The page size this VPN is expressed in.
    pub const fn size(self) -> PageSize {
        self.size
    }

    /// The base virtual address of the page.
    pub const fn base(self) -> VirtAddr {
        VirtAddr::new(self.index << self.size.shift())
    }

    /// This VPN re-expressed at a *larger or equal* page size (the
    /// containing region).
    ///
    /// ```
    /// use hpage_types::{PageSize, VirtAddr};
    /// let base = VirtAddr::new(0x40_3000).vpn(PageSize::Base4K);
    /// let huge = base.containing(PageSize::Huge2M);
    /// assert_eq!(huge.index(), 0x2);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than `self.size()`.
    pub fn containing(self, size: PageSize) -> Vpn {
        assert!(
            size.shift() >= self.size.shift(),
            "containing() requires a larger or equal page size"
        );
        Vpn::new(self.index >> (size.shift() - self.size.shift()), size)
    }

    /// Iterator over the constituent VPNs at a *smaller or equal* page size.
    ///
    /// For a 2 MiB VPN this yields its 512 base-page VPNs.
    ///
    /// # Panics
    ///
    /// Panics if `size` is larger than `self.size()`.
    pub fn split(self, size: PageSize) -> impl Iterator<Item = Vpn> + Clone {
        assert!(
            size.shift() <= self.size.shift(),
            "split() requires a smaller or equal page size"
        );
        let factor = 1u64 << (self.size.shift() - size.shift());
        let start = self.index * factor;
        (start..start + factor).map(move |i| Vpn::new(i, size))
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VPN[{}]{:#x}", self.size, self.index)
    }
}

/// A physical frame number: a frame-aligned physical region identified by
/// its index and page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn {
    index: u64,
    size: PageSize,
}

impl Pfn {
    /// Creates a PFN from a frame index and size.
    pub const fn new(index: u64, size: PageSize) -> Self {
        Pfn { index, size }
    }

    /// The frame index (address >> shift).
    pub const fn index(self) -> u64 {
        self.index
    }

    /// The page size this PFN is expressed in.
    pub const fn size(self) -> PageSize {
        self.size
    }

    /// The base physical address of the frame.
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.index << self.size.shift())
    }

    /// This PFN re-expressed at a larger or equal page size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than `self.size()`.
    pub fn containing(self, size: PageSize) -> Pfn {
        assert!(
            size.shift() >= self.size.shift(),
            "containing() requires a larger or equal page size"
        );
        Pfn::new(self.index >> (size.shift() - self.size.shift()), size)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PFN[{}]{:#x}", self.size, self.index)
    }
}

/// A half-open virtual address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    start: VirtAddr,
    end: VirtAddr,
}

impl Region {
    /// Creates a region from start address and length in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the region would wrap the 64-bit address space.
    pub fn new(start: VirtAddr, len: u64) -> Self {
        let end = start
            .raw()
            .checked_add(len)
            .expect("region wraps the address space");
        Region {
            start,
            end: VirtAddr::new(end),
        }
    }

    /// The inclusive start address.
    pub const fn start(self) -> VirtAddr {
        self.start
    }

    /// The exclusive end address.
    pub const fn end(self) -> VirtAddr {
        self.end
    }

    /// Length of the region in bytes.
    pub const fn len(self) -> u64 {
        self.end.raw() - self.start.raw()
    }

    /// Whether the region is empty.
    pub const fn is_empty(self) -> bool {
        self.start.raw() == self.end.raw()
    }

    /// Whether `addr` falls inside the region.
    pub const fn contains(self, addr: VirtAddr) -> bool {
        addr.raw() >= self.start.raw() && addr.raw() < self.end.raw()
    }

    /// Number of pages of `size` needed to cover the region (counting
    /// partially covered boundary pages).
    pub fn page_count(self, size: PageSize) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let first = self.start.vpn(size).index();
        let last = VirtAddr::new(self.end.raw() - 1).vpn(size).index();
        last - first + 1
    }

    /// Iterator over the VPNs of `size` that intersect the region.
    pub fn pages(self, size: PageSize) -> impl Iterator<Item = Vpn> + Clone {
        let (first, count) = if self.is_empty() {
            (0, 0)
        } else {
            (self.start.vpn(size).index(), self.page_count(size))
        };
        (first..first + count).map(move |i| Vpn::new(i, size))
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start.raw(), self.end.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_ordering_and_arithmetic() {
        assert!(PageSize::Base4K < PageSize::Huge2M);
        assert!(PageSize::Huge2M < PageSize::Huge1G);
        for size in PageSize::ALL {
            assert_eq!(1u64 << size.shift(), size.bytes());
        }
    }

    #[test]
    fn promote_demote_roundtrip() {
        assert_eq!(
            PageSize::Base4K.promoted().unwrap().demoted().unwrap(),
            PageSize::Base4K
        );
        assert_eq!(
            PageSize::Huge1G.demoted().unwrap().promoted().unwrap(),
            PageSize::Huge1G
        );
    }

    #[test]
    fn virt_addr_vpn_and_offset() {
        let va = VirtAddr::new(0x2012_3456);
        assert_eq!(va.vpn(PageSize::Base4K).index(), 0x20123);
        assert_eq!(va.page_offset(PageSize::Base4K), 0x456);
        assert_eq!(
            va.vpn(PageSize::Base4K).base().raw() + va.page_offset(PageSize::Base4K),
            va.raw()
        );
    }

    #[test]
    fn align_helpers() {
        let va = VirtAddr::new(0x3001);
        assert_eq!(va.align_down(PageSize::Base4K).raw(), 0x3000);
        assert_eq!(va.align_up(PageSize::Base4K).raw(), 0x4000);
        let aligned = VirtAddr::new(0x4000);
        assert_eq!(aligned.align_up(PageSize::Base4K), aligned);
        assert!(aligned.is_aligned(PageSize::Base4K));
        assert!(!va.is_aligned(PageSize::Base4K));
    }

    #[test]
    fn vpn_containing_and_split() {
        let base = VirtAddr::new(0x0060_0000).vpn(PageSize::Base4K); // 6 MiB
        let huge = base.containing(PageSize::Huge2M);
        assert_eq!(huge.index(), 3);
        let children: Vec<_> = huge.split(PageSize::Base4K).collect();
        assert_eq!(children.len(), 512);
        assert_eq!(children[0], base);
        assert_eq!(children[511].base().raw(), 0x0080_0000 - 0x1000);
        // Every child maps back to the parent.
        for c in children {
            assert_eq!(c.containing(PageSize::Huge2M), huge);
        }
    }

    #[test]
    #[should_panic(expected = "larger or equal")]
    fn vpn_containing_smaller_panics() {
        let huge = Vpn::new(1, PageSize::Huge2M);
        let _ = huge.containing(PageSize::Base4K);
    }

    #[test]
    fn split_identity() {
        let v = Vpn::new(42, PageSize::Huge2M);
        let same: Vec<_> = v.split(PageSize::Huge2M).collect();
        assert_eq!(same, vec![v]);
    }

    #[test]
    fn region_page_math() {
        // 3 bytes spanning a page boundary cover 2 pages.
        let r = Region::new(VirtAddr::new(0xFFF), 3);
        assert_eq!(r.page_count(PageSize::Base4K), 2);
        let pages: Vec<_> = r.pages(PageSize::Base4K).collect();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].index(), 0);
        assert_eq!(pages[1].index(), 1);

        let empty = Region::new(VirtAddr::new(0x1000), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.page_count(PageSize::Base4K), 0);
        assert_eq!(empty.pages(PageSize::Base4K).count(), 0);
    }

    #[test]
    fn region_contains() {
        let r = Region::new(VirtAddr::new(0x1000), 0x1000);
        assert!(r.contains(VirtAddr::new(0x1000)));
        assert!(r.contains(VirtAddr::new(0x1FFF)));
        assert!(!r.contains(VirtAddr::new(0x2000)));
        assert!(!r.contains(VirtAddr::new(0xFFF)));
        assert_eq!(r.len(), 0x1000);
    }

    #[test]
    fn pfn_base_roundtrip() {
        let pa = PhysAddr::new(0x1234_5000);
        let pfn = pa.pfn(PageSize::Base4K);
        assert_eq!(pfn.base(), pa);
        assert_eq!(pfn.containing(PageSize::Huge2M).size(), PageSize::Huge2M);
    }

    #[test]
    fn display_impls_nonempty() {
        assert!(!format!("{}", PageSize::Huge2M).is_empty());
        assert!(!format!("{}", VirtAddr::new(0)).is_empty());
        assert!(!format!("{}", PhysAddr::new(0)).is_empty());
        assert!(!format!("{}", Vpn::new(0, PageSize::Base4K)).is_empty());
        assert!(!format!("{}", Pfn::new(0, PageSize::Base4K)).is_empty());
        assert!(!format!("{}", Region::new(VirtAddr::new(0), 1)).is_empty());
    }
}
