//! A vendored deterministic fast hasher for the simulator's hot maps.
//!
//! The page-table radix levels (and every other map probed on the
//! per-access path) key on small integers — PUD/PMD/PTE indices, VPNs,
//! region indices. `std::collections::HashMap`'s default SipHash is
//! DoS-resistant but costs tens of cycles per probe and is randomly
//! seeded per map, which is wasted work here: keys come from the
//! simulated workload, not an adversary, and the simulator's outputs
//! must be bit-reproducible anyway.
//!
//! [`FxHasher`] is the multiply-xor hash used by rustc (`FxHashMap`),
//! reimplemented from its public recurrence so no external crate is
//! needed: per 8-byte word, `hash = (hash.rotate_left(5) ^ word) *
//! SEED` with the golden-ratio multiplier. It is deterministic across
//! runs, processes, and platforms of the same pointer width — our
//! fixed-vector tests pin the 64-bit variant — and hashes one `u64`
//! key in a couple of instructions.
//!
//! Determinism note: iteration order of a [`FxHashMap`] is stable for a
//! given insertion history but still *unspecified*; simulation code
//! must keep sorting before iteration order can reach any output, the
//! same discipline SipHash maps already required.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier: `2^64 / φ`, rounded to odd.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style Fx hasher: fast, deterministic, not DoS-resistant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(
                word.try_into().expect("4 bytes"),
            )));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s — zero-sized, so maps carry no
/// per-instance random state (unlike `RandomState`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic Fx hash. Drop-in replacement
/// for `std::collections::HashMap` on the simulator's hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` on the deterministic Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_u64(x: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(x);
        h.finish()
    }

    #[test]
    fn fixed_vectors_pin_the_function() {
        // The exact Fx recurrence for single u64 keys:
        // (0.rotate_left(5) ^ x) * SEED. A change to the algorithm (or
        // an accidental platform dependence) breaks these constants.
        for (x, expect) in [
            (0u64, 0u64),
            (1, 0x517c_c1b7_2722_0a95),
            (0xdead_beef, 0x67f3_c037_2953_771b),
            (u64::MAX, 0xae83_3e48_d8dd_f56b),
        ] {
            assert_eq!(hash_u64(x), expect, "hash({x:#x})");
        }
    }

    #[test]
    fn multi_word_and_byte_tails() {
        // 12 bytes exercise the 8-byte word, the 4-byte chunk, and
        // their combination; the constant pins the result.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let full = h.finish();
        let mut h2 = FxHasher::default();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        h2.write_u32(u32::from_le_bytes([9, 10, 11, 12]));
        assert_eq!(full, h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(&[0xAB; 3]);
        assert_eq!(h3.finish(), 0xfc67_6cf0_d218_ee02);
    }

    #[test]
    fn build_hasher_is_stateless() {
        // Two independently-built hashers agree — no RandomState-style
        // per-instance seed, which is what makes map behaviour
        // reproducible across runs.
        let a = FxBuildHasher::default().hash_one(42u64);
        let b = FxBuildHasher::default().hash_one(42u64);
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&2997));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn adjacent_keys_spread() {
        // Radix-level indices are sequential; the hash must still
        // scatter them across buckets (low bits must differ).
        let mask = 127u64;
        let buckets: std::collections::HashSet<u64> =
            (0..128).map(|i| hash_u64(i) & mask).collect();
        assert!(
            buckets.len() > 96,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}
