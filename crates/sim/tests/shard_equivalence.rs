//! Property test: the sharded simulation engine is observationally
//! equivalent to the sequential one.
//!
//! The unit tests in `simulation.rs` pin a handful of hand-picked
//! scenarios; this suite samples the space — policy × fault plan ×
//! process mix × worker count — and requires, for every draw, that the
//! sharded run reproduces the sequential run **byte-for-byte**: the
//! [`SimReport`] (which carries per-process stats, interval series,
//! audit findings, and the promotion ledger via `PartialEq`) and the
//! full JSONL event stream.
//!
//! Case count is deliberately small: each case simulates hundreds of
//! thousands of accesses twice, so eight draws already cover more
//! scenario combinations than the unit tests while keeping the suite
//! in CI-friendly time.

use hpage_faults::{FaultKind, FaultPlan, FaultWindow};
use hpage_sim::{JsonlSink, PolicyChoice, ProcessSpec, SimReport, Simulation};
use hpage_trace::{Pattern, SyntheticBuilder, SyntheticWorkload, Workload};
use hpage_types::SystemConfig;
use proptest::prelude::*;

/// One tenant: a synthetic workload whose pattern, footprint, and
/// length are all derived from a single sampled seed.
fn workload(ordinal: usize, seed: u64) -> SyntheticWorkload {
    let mb = 2 + (seed % 5); // 2..=6 MiB footprint
    let accesses = 40_000 + (seed % 4) * 20_000; // 40k..=100k accesses
    let mut b = SyntheticBuilder::new(format!("p{ordinal}"), seed);
    let arr = b.array(8, mb * (1 << 20) / 8);
    let pattern = match seed % 3 {
        0 => Pattern::UniformRandom { count: accesses },
        1 => Pattern::Sequential {
            stride: 1,
            count: accesses,
        },
        _ => Pattern::Zipf {
            count: accesses,
            exponent: 0.9,
        },
    };
    b.phase(arr, pattern, (seed % 30) as u8);
    b.build()
}

fn policy(index: u64) -> PolicyChoice {
    match index % 5 {
        0 => PolicyChoice::pcc_default(),
        1 => PolicyChoice::LinuxThp,
        2 => PolicyChoice::BasePages,
        3 => PolicyChoice::IdealHuge,
        _ => PolicyChoice::VictimCache { entries: 64 },
    }
}

/// A sampled fault plan: none, a fragmentation shock, or a pile-up of
/// every fault kind. Windows land in the first few promotion
/// intervals, where these short workloads actually run.
fn faults(index: u64) -> Option<FaultPlan> {
    let windows = match index % 3 {
        0 => return None,
        1 => vec![FaultWindow {
            kind: FaultKind::FragmentationShock {
                percent: 50,
                seed: 21,
            },
            at: 2,
            duration: 1,
        }],
        _ => vec![
            FaultWindow {
                kind: FaultKind::OomWindow,
                at: 1,
                duration: 2,
            },
            FaultWindow {
                kind: FaultKind::CompactionStall,
                at: 2,
                duration: 2,
            },
            FaultWindow {
                kind: FaultKind::FragmentationShock {
                    percent: 35,
                    seed: 7,
                },
                at: 3,
                duration: 1,
            },
            FaultWindow {
                kind: FaultKind::PccReset,
                at: 4,
                duration: 1,
            },
            FaultWindow {
                kind: FaultKind::ShootdownSpike,
                at: 5,
                duration: 1,
            },
        ],
    };
    Some(FaultPlan::new("shard-equivalence", windows).expect("static plan is valid"))
}

/// Runs one configuration to completion and captures everything
/// observable: the report and the serialized event stream.
fn run(
    policy: PolicyChoice,
    plan: Option<FaultPlan>,
    tenants: &[SyntheticWorkload],
    sim_threads: usize,
) -> (SimReport, String) {
    let mut sim = Simulation::new(SystemConfig::tiny(), policy)
        .with_ledger()
        .with_audit()
        .with_sim_threads(sim_threads);
    if let Some(plan) = plan {
        sim = sim.with_faults(plan);
    }
    let specs: Vec<ProcessSpec<'_>> = tenants
        .iter()
        .map(|w| ProcessSpec::new(w as &dyn Workload))
        .collect();
    let mut buf = Vec::new();
    let mut sink = JsonlSink::new(&mut buf);
    let report = sim.run_recorded(&specs, &mut sink);
    sink.finish().expect("stream to memory");
    (report, String::from_utf8(buf).expect("JSONL is UTF-8"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    fn sharded_engine_matches_sequential(
        policy_index in 0u64..5,
        fault_index in 0u64..3,
        seeds in prop::collection::vec(1u64..10_000, 1..5),
        sim_threads in 2usize..9,
    ) {
        let tenants: Vec<SyntheticWorkload> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| workload(i, s))
            .collect();
        let (seq_report, seq_events) =
            run(policy(policy_index), faults(fault_index), &tenants, 1);
        let (par_report, par_events) =
            run(policy(policy_index), faults(fault_index), &tenants, sim_threads);
        prop_assert!(
            seq_report.audit_violations.is_empty(),
            "sequential run violated invariants: {:?}",
            seq_report.audit_violations
        );
        prop_assert_eq!(
            &par_report,
            &seq_report,
            "report diverged: policy {} faults {} tenants {:?} threads {}",
            policy_index,
            fault_index,
            seeds,
            sim_threads
        );
        prop_assert_eq!(
            &par_events,
            &seq_events,
            "event stream diverged: policy {} faults {} tenants {:?} threads {}",
            policy_index,
            fault_index,
            seeds,
            sim_threads
        );
    }
}
