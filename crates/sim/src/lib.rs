//! End-to-end simulation of the paper's system: workload traces through
//! per-core TLB hierarchies and PCCs, OS promotion policies, and the
//! experiment drivers that regenerate every figure of the evaluation.
//!
//! # Example
//!
//! ```
//! use hpage_sim::{PolicyChoice, ProcessSpec, Simulation};
//! use hpage_trace::{Pattern, SyntheticBuilder, Workload};
//! use hpage_types::SystemConfig;
//!
//! // A TLB-hostile workload: random accesses over 8 MiB.
//! let mut b = SyntheticBuilder::new("demo", 7);
//! let arr = b.array(8, (8 << 20) / 8);
//! b.phase(arr, Pattern::UniformRandom { count: 200_000 }, 0);
//! let workload = b.build();
//!
//! let base = Simulation::new(SystemConfig::tiny(), PolicyChoice::BasePages)
//!     .run(&[ProcessSpec::new(&workload)]);
//! let pcc = Simulation::new(SystemConfig::tiny(), PolicyChoice::pcc_default())
//!     .run(&[ProcessSpec::new(&workload)]);
//! assert!(pcc.aggregate.walks < base.aggregate.walks);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod journal;
mod profile;
mod runner;
mod shard;
mod simulation;

pub use experiments::{
    ablation_design_choices, ablation_design_choices_on, consolidation_on, dataset_geomean,
    dataset_sweep, dataset_sweep_on, fig1_geomean_2m, fig1_page_sizes, fig1_page_sizes_on,
    fig2_reuse, fig2_reuse_on, fig5_utility, fig5_utility_on, fig6_pcc_size, fig6_pcc_size_on,
    fig7_fragmentation, fig7_fragmentation_on, fig8_multithread, fig8_multithread_on,
    fig9_multiprocess, fig9_multiprocess_on, virt_on, AblationRow, ConsolidationConfig,
    ConsolidationReport, ConsolidationTenantRow, DatasetRow, Fig1Row, Fig2Summary, Fig6Row,
    Fig7Row, Fig8Row, Fig9Config, Fig9Row, VirtConfig, VirtPlacementRow, VirtReport, VirtVmRow,
};
pub use journal::CellJournal;
pub use profile::SimProfile;
pub use runner::{Cell, CellFailure, Harness, SharedWorkload, SupervisorConfig, EXPERIMENT_SEED};
pub use simulation::{PolicyChoice, ProcessSpec, SimReport, Simulation};

// Re-export the flight-recorder surface so simulator users need not
// depend on `hpage-obs` directly.
pub use hpage_obs::{
    CellTiming, DeadlineFlag, Event, FailureRecord, HarnessLog, IntervalRow, IntervalSeries,
    JsonlSink, MemoryRecorder, NullRecorder, Recorder, RetryRecord, SectionTiming, Tee,
};

// Likewise the promotion ledger, which [`SimReport::ledger`] carries.
pub use hpage_os::{LedgerEntry, LedgerSummary, PromotionLedger};
