//! End-to-end simulation of the paper's system: workload traces through
//! per-core TLB hierarchies and PCCs, OS promotion policies, and the
//! experiment drivers that regenerate every figure of the evaluation.
//!
//! # Example
//!
//! ```
//! use hpage_sim::{PolicyChoice, ProcessSpec, Simulation};
//! use hpage_trace::{Pattern, SyntheticBuilder, Workload};
//! use hpage_types::SystemConfig;
//!
//! // A TLB-hostile workload: random accesses over 8 MiB.
//! let mut b = SyntheticBuilder::new("demo", 7);
//! let arr = b.array(8, (8 << 20) / 8);
//! b.phase(arr, Pattern::UniformRandom { count: 200_000 }, 0);
//! let workload = b.build();
//!
//! let base = Simulation::new(SystemConfig::tiny(), PolicyChoice::BasePages)
//!     .run(&[ProcessSpec::new(&workload)]);
//! let pcc = Simulation::new(SystemConfig::tiny(), PolicyChoice::pcc_default())
//!     .run(&[ProcessSpec::new(&workload)]);
//! assert!(pcc.aggregate.walks < base.aggregate.walks);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod profile;
mod simulation;

pub use experiments::{
    ablation_design_choices, dataset_geomean, dataset_sweep, fig1_geomean_2m, fig1_page_sizes,
    fig2_reuse, fig5_utility, fig6_pcc_size, fig7_fragmentation, fig8_multithread,
    fig9_multiprocess, AblationRow, DatasetRow, Fig1Row, Fig2Summary, Fig6Row, Fig7Row, Fig8Row,
    Fig9Config, Fig9Row,
};
pub use profile::SimProfile;
pub use simulation::{PolicyChoice, ProcessSpec, SimReport, Simulation};

// Re-export the flight-recorder surface so simulator users need not
// depend on `hpage-obs` directly.
pub use hpage_obs::{
    Event, IntervalRow, IntervalSeries, JsonlSink, MemoryRecorder, NullRecorder, Recorder,
};
