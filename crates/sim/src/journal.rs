//! Cell-level checkpoint/resume journal for long repro runs.
//!
//! A supervised run can be interrupted hours in — by a crash, an OOM
//! kill, or an operator — and restarting the whole grid from scratch
//! wastes everything already computed. The journal is the fix: an
//! append-only JSONL file recording every completed cell (keyed by its
//! [`fingerprint`](crate::Cell::fingerprint)) and every completed
//! *section* together with its fully rendered output. `repro --resume
//! <journal>` replays the stored section text verbatim and re-runs only
//! what is missing, so a resumed run's stdout is byte-identical to an
//! uninterrupted one.
//!
//! Wire format (one JSON object per line):
//!
//! ```text
//! {"journal":"hpage-repro","version":1,"profile":"test","scale":"both"}
//! {"type":"cell","fp":"0x1b2e...","label":"fig7/BFS/pcc","attempts":1,"wall_ms":412}
//! {"type":"section","label":"figure 7","output":"...escaped full text..."}
//! ```
//!
//! The header pins the profile and scale so a journal recorded under
//! `HPAGE_PROFILE=test` cannot silently poison a paper-scale run.
//! Resume tolerates a truncated or corrupt *trailing* region — the
//! expected wreckage of an interrupt mid-write — by skipping unparseable
//! lines and counting them (same philosophy as `bench_trend`'s history
//! splice). Writes flush per line so the journal is as current as the
//! last completed cell.

use hpage_faults::json::{parse, Value};
use hpage_obs::json::esc;
use std::collections::{BTreeMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::sync::Mutex;

/// Magic string identifying a journal file.
const MAGIC: &str = "hpage-repro";
/// Current wire-format version.
const VERSION: u64 = 1;

/// An append-only journal of completed cells and sections.
///
/// Thread-safe: the supervised runner's workers record cells
/// concurrently; the driving binary records sections between grids.
#[derive(Debug)]
pub struct CellJournal {
    path: String,
    writer: Mutex<BufWriter<File>>,
    cells_done: Mutex<HashSet<u64>>,
    sections_done: Mutex<BTreeMap<String, String>>,
    skipped_lines: u64,
}

impl CellJournal {
    /// Creates (truncating) a fresh journal at `path` and writes the
    /// header pinning `profile` and `scale`.
    pub fn create(path: &str, profile: &str, scale: &str) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut writer = BufWriter::new(file);
        writeln!(
            writer,
            "{{\"journal\":\"{MAGIC}\",\"version\":{VERSION},\"profile\":\"{}\",\"scale\":\"{}\"}}",
            esc(profile),
            esc(scale)
        )?;
        writer.flush()?;
        Ok(CellJournal {
            path: path.to_string(),
            writer: Mutex::new(writer),
            cells_done: Mutex::new(HashSet::new()),
            sections_done: Mutex::new(BTreeMap::new()),
            skipped_lines: 0,
        })
    }

    /// Reopens an existing journal for resume: parses every line,
    /// validates the header against `profile` and `scale`, loads the
    /// completed-cell and completed-section sets, and reopens the file
    /// in append mode. Corrupt or truncated lines are skipped and
    /// counted ([`skipped_lines`](Self::skipped_lines)), not fatal —
    /// an interrupt mid-write is exactly the case resume exists for.
    pub fn resume(path: &str, profile: &str, scale: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("journal {path}: cannot read: {e}"))?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| format!("journal {path}: empty file"))?;
        let header = parse(header).map_err(|e| format!("journal {path}: bad header: {e}"))?;
        let header = header
            .as_object()
            .ok_or_else(|| format!("journal {path}: header is not an object"))?;
        let field = |key: &str| -> Result<&str, String> {
            header
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("journal {path}: header missing \"{key}\""))
        };
        if field("journal")? != MAGIC {
            return Err(format!("journal {path}: not an {MAGIC} journal"));
        }
        let version = header
            .get("version")
            .and_then(Value::as_uint)
            .ok_or_else(|| format!("journal {path}: header missing \"version\""))?;
        if version != VERSION {
            return Err(format!(
                "journal {path}: version {version} (this build reads {VERSION})"
            ));
        }
        let (j_profile, j_scale) = (field("profile")?, field("scale")?);
        if j_profile != profile || j_scale != scale {
            return Err(format!(
                "journal {path}: recorded under profile={j_profile} scale={j_scale}, \
                 but this run is profile={profile} scale={scale}"
            ));
        }

        let mut cells_done = HashSet::new();
        let mut sections_done = BTreeMap::new();
        let mut skipped = 0u64;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_entry(line) {
                Some(Entry::Cell(fp)) => {
                    cells_done.insert(fp);
                }
                Some(Entry::Section { label, output }) => {
                    sections_done.insert(label, output);
                }
                None => skipped += 1,
            }
        }

        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("journal {path}: cannot reopen for append: {e}"))?;
        Ok(CellJournal {
            path: path.to_string(),
            writer: Mutex::new(BufWriter::new(file)),
            cells_done: Mutex::new(cells_done),
            sections_done: Mutex::new(sections_done),
            skipped_lines: skipped,
        })
    }

    fn parse_entry(line: &str) -> Option<Entry> {
        let v = parse(line).ok()?;
        let obj = v.as_object()?;
        match obj.get("type")?.as_str()? {
            "cell" => {
                let fp = obj.get("fp")?.as_str()?;
                let fp = fp.strip_prefix("0x")?;
                Some(Entry::Cell(u64::from_str_radix(fp, 16).ok()?))
            }
            "section" => Some(Entry::Section {
                label: obj.get("label")?.as_str()?.to_string(),
                output: obj.get("output")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }

    /// The journal's file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Lines skipped as corrupt/truncated during [`resume`](Self::resume).
    pub fn skipped_lines(&self) -> u64 {
        self.skipped_lines
    }

    /// Number of completed cells on record.
    pub fn completed_cells(&self) -> usize {
        self.cells_done.lock().unwrap().len()
    }

    /// Whether a cell with this fingerprint already completed.
    pub fn cell_is_done(&self, fingerprint: u64) -> bool {
        self.cells_done.lock().unwrap().contains(&fingerprint)
    }

    /// The stored output of a completed section, if any.
    pub fn completed_section(&self, label: &str) -> Option<String> {
        self.sections_done.lock().unwrap().get(label).cloned()
    }

    /// Number of completed sections on record.
    pub fn completed_sections(&self) -> usize {
        self.sections_done.lock().unwrap().len()
    }

    /// Records one completed cell. Flushes so an interrupt right after
    /// loses nothing.
    pub fn record_cell(
        &self,
        fingerprint: u64,
        label: &str,
        attempts: u32,
        wall_ms: u64,
    ) -> std::io::Result<()> {
        {
            let mut w = self.writer.lock().unwrap();
            writeln!(
                w,
                "{{\"type\":\"cell\",\"fp\":\"{fingerprint:#018x}\",\"label\":\"{}\",\
                 \"attempts\":{attempts},\"wall_ms\":{wall_ms}}}",
                esc(label)
            )?;
            w.flush()?;
        }
        self.cells_done.lock().unwrap().insert(fingerprint);
        Ok(())
    }

    /// Records one completed section with its fully rendered output.
    pub fn record_section(&self, label: &str, output: &str) -> std::io::Result<()> {
        {
            let mut w = self.writer.lock().unwrap();
            writeln!(
                w,
                "{{\"type\":\"section\",\"label\":\"{}\",\"output\":\"{}\"}}",
                esc(label),
                esc(output)
            )?;
            w.flush()?;
        }
        self.sections_done
            .lock()
            .unwrap()
            .insert(label.to_string(), output.to_string());
        Ok(())
    }
}

enum Entry {
    Cell(u64),
    Section { label: String, output: String },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> String {
        let dir = std::env::temp_dir();
        dir.join(format!("hpage-journal-{}-{tag}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn create_resume_round_trip() {
        let path = temp_path("roundtrip");
        {
            let j = CellJournal::create(&path, "test", "both").unwrap();
            j.record_cell(0xDEAD_BEEF, "fig7/BFS/pcc", 2, 412).unwrap();
            j.record_section("figure 7", "fig7 header\nrow a | 1.0\n")
                .unwrap();
        }
        let j = CellJournal::resume(&path, "test", "both").unwrap();
        assert_eq!(j.skipped_lines(), 0);
        assert!(j.cell_is_done(0xDEAD_BEEF));
        assert!(!j.cell_is_done(0xDEAD_BEF0));
        assert_eq!(
            j.completed_section("figure 7").as_deref(),
            Some("fig7 header\nrow a | 1.0\n")
        );
        assert_eq!(j.completed_section("figure 8"), None);
        // Appends after resume land in the same file.
        j.record_section("figure 8", "fig8\n").unwrap();
        let again = CellJournal::resume(&path, "test", "both").unwrap();
        assert_eq!(again.completed_sections(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_tolerates_truncated_tail() {
        let path = temp_path("truncated");
        {
            let j = CellJournal::create(&path, "test", "both").unwrap();
            j.record_section("figure 1", "ok output\n").unwrap();
        }
        // Emulate an interrupt mid-write: a half line at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"type\":\"section\",\"label\":\"fig").unwrap();
        }
        let j = CellJournal::resume(&path, "test", "both").unwrap();
        assert_eq!(j.skipped_lines(), 1);
        assert_eq!(j.completed_sections(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_profile_mismatch_and_junk() {
        let path = temp_path("mismatch");
        {
            let _ = CellJournal::create(&path, "test", "both").unwrap();
        }
        assert!(CellJournal::resume(&path, "paper", "both")
            .unwrap_err()
            .contains("profile=test"));
        assert!(CellJournal::resume(&path, "test", "graph").is_err());
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(CellJournal::resume(&path, "test", "both").is_err());
        std::fs::write(&path, "").unwrap();
        assert!(CellJournal::resume(&path, "test", "both")
            .unwrap_err()
            .contains("empty"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn section_output_escaping_round_trips() {
        let path = temp_path("escape");
        let gnarly = "tab\there \"quoted\" back\\slash\nline2 \u{1F600}\n";
        {
            let j = CellJournal::create(&path, "test", "both").unwrap();
            j.record_section("weird", gnarly).unwrap();
        }
        let j = CellJournal::resume(&path, "test", "both").unwrap();
        assert_eq!(j.completed_section("weird").as_deref(), Some(gnarly));
        let _ = std::fs::remove_file(&path);
    }
}
