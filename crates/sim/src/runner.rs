//! Deterministic parallel experiment runner.
//!
//! Every figure driver decomposes into independent *cells* — one fully
//! configured [`Simulation`] plus the workloads it runs — and submits
//! them to a [`Harness`]. The harness executes cells on a std-only
//! worker pool (`std::thread::scope`, no external dependencies) and
//! returns the reports **in submission order**, so the tables a driver
//! assembles are byte-identical whether the grid ran on one worker or
//! sixteen.
//!
//! Determinism survives the fan-out because of three properties:
//!
//! 1. Cells share nothing mutable. Workloads cross the pool boundary as
//!    `Arc<AnyWorkload>` (immutable once built; `Send + Sync` is pinned
//!    by compile-time asserts here and in `hpage-trace`), and each cell
//!    owns its `Simulation` outright.
//! 2. Every RNG stream is seeded from the cell's configuration, never
//!    from global state, time, or worker identity.
//! 3. Results are written into per-cell slots indexed by submission
//!    order; only wall-clock *observability* (the [`HarnessLog`]) sees
//!    completion order.
//!
//! The harness also owns the run's [`WorkloadCache`], so each workload
//! is instantiated once per `repro` invocation no matter how many
//! figures touch it.

use crate::profile::SimProfile;
use crate::simulation::{ProcessSpec, SimReport, Simulation};
use hpage_obs::HarnessLog;
use hpage_trace::{AnyWorkload, AppId, Dataset, Workload, WorkloadCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A workload shared across the worker-pool boundary. `Arc<AnyWorkload>`
/// (what [`Harness::workload`] serves) coerces into this at any call
/// site; recorded traces and other [`Workload`] impls fit too.
pub type SharedWorkload = Arc<dyn Workload + Send + Sync>;

/// Default RNG seed for experiment workloads (shared by every figure
/// driver; per-purpose streams are derived via
/// [`hpage_types::derive_seed`], never by reusing this value raw).
pub const EXPERIMENT_SEED: u64 = 0xC0FFEE;

// Compile-time audit: cells cross the worker-pool boundary by reference,
// so everything inside one must be shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Cell>();
    assert_send_sync::<Simulation>();
    assert_send_sync::<Harness>();
};

/// One independent unit of experiment work: a fully configured
/// simulation and the workloads it runs. Building a cell is cheap (the
/// workloads are shared `Arc`s); running it is the expensive part the
/// pool parallelises.
#[derive(Clone)]
pub struct Cell {
    /// Display label, e.g. `fig7/BFS/pcc` — used for per-cell timings in
    /// the perf artifact, never for results.
    pub label: String,
    /// The configured simulation (policy, sizing, fragmentation, budget,
    /// replacement, cache model — everything baked in).
    pub sim: Simulation,
    /// Processes to run: `(workload, thread count)` pairs.
    pub processes: Vec<(SharedWorkload, u32)>,
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Workloads are trait objects; show their names instead.
        let processes: Vec<(&str, u32)> = self
            .processes
            .iter()
            .map(|(w, threads)| (w.name(), *threads))
            .collect();
        f.debug_struct("Cell")
            .field("label", &self.label)
            .field("sim", &self.sim)
            .field("processes", &processes)
            .finish()
    }
}

impl Cell {
    /// Single-process, single-threaded cell.
    pub fn new(label: impl Into<String>, sim: Simulation, workload: SharedWorkload) -> Self {
        Cell {
            label: label.into(),
            sim,
            processes: vec![(workload, 1)],
        }
    }

    /// Single-process cell with `threads` threads.
    pub fn with_threads(
        label: impl Into<String>,
        sim: Simulation,
        workload: SharedWorkload,
        threads: u32,
    ) -> Self {
        Cell {
            label: label.into(),
            sim,
            processes: vec![(workload, threads)],
        }
    }

    /// Multi-process cell (one entry per process).
    pub fn multiprocess(
        label: impl Into<String>,
        sim: Simulation,
        processes: Vec<(SharedWorkload, u32)>,
    ) -> Self {
        Cell {
            label: label.into(),
            sim,
            processes,
        }
    }

    /// Runs the cell to completion. Pure in its configuration: equal
    /// cells produce equal reports on any thread at any time.
    pub fn run(&self) -> SimReport {
        self.run_recorded(&mut hpage_obs::NullRecorder)
    }

    /// Runs the cell with a flight recorder attached. The recorder only
    /// sees this cell's events; merging across cells is the caller's
    /// job (see [`Harness::run_map`], which keeps merges deterministic
    /// by folding in submission order).
    pub fn run_recorded<R: hpage_obs::Recorder>(&self, recorder: &mut R) -> SimReport {
        let specs: Vec<ProcessSpec<'_>> = self
            .processes
            .iter()
            .map(|(w, threads)| ProcessSpec::with_threads(w.as_ref(), *threads))
            .collect();
        self.sim.run_recorded(&specs, recorder)
    }
}

/// The experiment harness: a worker pool plus the run-wide workload
/// cache and observability log. One harness drives one `repro`/`hpsim`
/// invocation; figure drivers borrow it.
#[derive(Debug)]
pub struct Harness {
    jobs: usize,
    cache: WorkloadCache,
    log: Arc<HarnessLog>,
}

impl Harness {
    /// Creates a harness running up to `jobs` cells concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0` (binaries validate and reject this with a
    /// usage error before construction).
    pub fn new(jobs: usize) -> Self {
        assert!(jobs >= 1, "harness needs at least one worker");
        Harness {
            jobs,
            cache: WorkloadCache::new(),
            log: Arc::new(HarnessLog::new()),
        }
    }

    /// A single-worker harness — cells run inline, in order, exactly as
    /// the pre-harness sequential drivers did.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The run-wide workload cache.
    pub fn cache(&self) -> &WorkloadCache {
        &self.cache
    }

    /// The run's observability log (wall-clock timings + warnings).
    pub fn log(&self) -> &HarnessLog {
        &self.log
    }

    /// The figure drivers' standard workload: `app` on Kronecker at the
    /// profile's scale, seeded with [`EXPERIMENT_SEED`]; served from the
    /// cache.
    pub fn workload(&self, profile: &SimProfile, app: AppId) -> Arc<AnyWorkload> {
        self.cache
            .get_parts(app, Dataset::Kronecker, profile.workloads, EXPERIMENT_SEED)
    }

    /// Runs `cells` and returns their reports in submission order.
    ///
    /// With `jobs == 1` the cells run inline on the calling thread. With
    /// more, a scoped worker pool claims cells via an atomic cursor and
    /// writes each report into its submission-index slot, so the
    /// returned order — and therefore every table assembled from it —
    /// is independent of scheduling.
    pub fn run(&self, cells: Vec<Cell>) -> Vec<SimReport> {
        self.run_map(cells, Cell::run)
    }

    /// Runs `f` over every cell and returns the results in submission
    /// order. [`run`](Self::run) is `run_map(cells, Cell::run)`; drivers
    /// that want per-cell telemetry pass a closure that attaches a
    /// recorder (e.g. via [`Cell::run_recorded`]) and returns the report
    /// *plus* whatever the recorder captured. Because results come back
    /// in submission order, folding them left-to-right (metric merges,
    /// ledger concatenation) is deterministic at any `--jobs` level.
    pub fn run_map<T, F>(&self, cells: Vec<Cell>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Cell) -> T + Sync,
    {
        if self.jobs == 1 || cells.len() <= 1 {
            return cells
                .iter()
                .map(|cell| {
                    let start = Instant::now();
                    let result = f(cell);
                    self.log
                        .record_cell(&cell.label, start.elapsed().as_secs_f64());
                    result
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..cells.len()).map(|_| Mutex::new(None)).collect();
        let workers = self.jobs.min(cells.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let start = Instant::now();
                    let result = f(&cells[i]);
                    self.log
                        .record_cell(&cells[i].label, start.elapsed().as_secs_f64());
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every claimed cell fills its slot")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::PolicyChoice;

    fn profile() -> SimProfile {
        let mut p = SimProfile::test();
        p.max_accesses_per_core = Some(100_000);
        p
    }

    fn cells(h: &Harness, n: usize) -> Vec<Cell> {
        let p = profile();
        let w = h.workload(&p, AppId::Canneal);
        let sized = p
            .clone()
            .sized_for(hpage_trace::Workload::footprint_bytes(w.as_ref()));
        (0..n)
            .map(|i| {
                let policy = if i % 2 == 0 {
                    PolicyChoice::BasePages
                } else {
                    PolicyChoice::pcc_default()
                };
                let sim = Simulation::new(sized.system.clone(), policy)
                    .with_max_accesses_per_core(100_000);
                Cell::new(format!("cell/{i}"), sim, Arc::clone(&w) as SharedWorkload)
            })
            .collect()
    }

    #[test]
    fn parallel_results_equal_sequential_in_order() {
        let seq = Harness::sequential();
        let par = Harness::new(8);
        let expected = seq.run(cells(&seq, 7));
        let got = par.run(cells(&par, 7));
        assert_eq!(expected, got, "submission order must survive the pool");
        // Alternating policies prove slots didn't get shuffled.
        assert_eq!(got[0].policy, got[2].policy);
        assert_ne!(got[0].policy, got[1].policy);
    }

    #[test]
    fn timings_cover_every_cell() {
        let h = Harness::new(4);
        let n = 5;
        let _ = h.run(cells(&h, n));
        assert_eq!(h.log().cells().len(), n);
        assert!(h.log().total_cell_seconds() >= 0.0);
    }

    #[test]
    fn workload_is_cached_across_lookups() {
        let h = Harness::sequential();
        let p = profile();
        let a = h.workload(&p, AppId::Canneal);
        let b = h.workload(&p, AppId::Canneal);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(h.cache().len(), 1);
    }

    #[test]
    fn run_map_merges_recordings_deterministically() {
        use hpage_obs::MemoryRecorder;
        let record = |cell: &Cell| {
            let mut rec = MemoryRecorder::new();
            let report = cell.run_recorded(&mut rec);
            (report, rec.counts_by_kind())
        };
        let seq = Harness::sequential();
        let par = Harness::new(8);
        let expected = seq.run_map(cells(&seq, 6), record);
        let got = par.run_map(cells(&par, 6), record);
        // Submission-order slots make the fold of per-cell event counts
        // (and everything else derived left-to-right) jobs-invariant.
        assert_eq!(expected, got);
        assert!(got.iter().any(|(_, counts)| !counts.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_is_rejected() {
        let _ = Harness::new(0);
    }
}
