//! Deterministic parallel experiment runner.
//!
//! Every figure driver decomposes into independent *cells* — one fully
//! configured [`Simulation`] plus the workloads it runs — and submits
//! them to a [`Harness`]. The harness executes cells on a std-only
//! worker pool (`std::thread::scope`, no external dependencies) and
//! returns the reports **in submission order**, so the tables a driver
//! assembles are byte-identical whether the grid ran on one worker or
//! sixteen.
//!
//! Determinism survives the fan-out because of three properties:
//!
//! 1. Cells share nothing mutable. Workloads cross the pool boundary as
//!    `Arc<AnyWorkload>` (immutable once built; `Send + Sync` is pinned
//!    by compile-time asserts here and in `hpage-trace`), and each cell
//!    owns its `Simulation` outright.
//! 2. Every RNG stream is seeded from the cell's configuration, never
//!    from global state, time, or worker identity.
//! 3. Results are written into per-cell slots indexed by submission
//!    order; only wall-clock *observability* (the [`HarnessLog`]) sees
//!    completion order.
//!
//! The harness also owns the run's [`WorkloadCache`], so each workload
//! is instantiated once per `repro` invocation no matter how many
//! figures touch it.

use crate::journal::CellJournal;
use crate::profile::SimProfile;
use crate::simulation::{ProcessSpec, SimReport, Simulation};
use hpage_faults::{FaultKind, FaultPlan};
use hpage_obs::{Event, HarnessLog};
use hpage_trace::{AnyWorkload, AppId, Dataset, Workload, WorkloadCache};
use hpage_types::derive_seed;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A workload shared across the worker-pool boundary. `Arc<AnyWorkload>`
/// (what [`Harness::workload`] serves) coerces into this at any call
/// site; recorded traces and other [`Workload`] impls fit too.
pub type SharedWorkload = Arc<dyn Workload + Send + Sync>;

/// Default RNG seed for experiment workloads (shared by every figure
/// driver; per-purpose streams are derived via
/// [`hpage_types::derive_seed`], never by reusing this value raw).
pub const EXPERIMENT_SEED: u64 = 0xC0FFEE;

// Compile-time audit: cells cross the worker-pool boundary by reference,
// so everything inside one must be shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Cell>();
    assert_send_sync::<Simulation>();
    assert_send_sync::<Harness>();
    assert_send_sync::<CellFailure>();
};

/// Why the supervisor gave up on a cell. Carried in the cell's result
/// slot (`Err` side of [`Harness::try_run_map`]) instead of unwinding
/// through — and poisoning — the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFailure {
    /// Every attempt panicked; `message` is the last panic's payload.
    Panicked {
        /// The last attempt's panic message.
        message: String,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// The last attempt overran the supervisor's hard deadline and was
    /// abandoned.
    HardDeadline {
        /// The hard deadline, in milliseconds.
        limit_ms: u64,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
}

impl CellFailure {
    /// Attempts made before the supervisor gave up.
    pub fn attempts(&self) -> u32 {
        match self {
            CellFailure::Panicked { attempts, .. } | CellFailure::HardDeadline { attempts, .. } => {
                *attempts
            }
        }
    }

    /// Short human-readable reason, e.g. for `n/a (cell failed: …)` rows.
    pub fn reason(&self) -> String {
        match self {
            CellFailure::Panicked { message, .. } => format!("panicked: {message}"),
            CellFailure::HardDeadline { limit_ms, .. } => {
                format!("exceeded hard deadline of {limit_ms} ms")
            }
        }
    }
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellFailure::Panicked { message, attempts } => {
                write!(f, "panicked after {attempts} attempt(s): {message}")
            }
            CellFailure::HardDeadline { limit_ms, attempts } => write!(
                f,
                "exceeded hard deadline of {limit_ms} ms after {attempts} attempt(s)"
            ),
        }
    }
}

/// Supervisor policy for a [`Harness`]: retry budget, seeded backoff,
/// deadlines, and harness-level fault injection.
///
/// The default config is the pre-supervisor behaviour — no retries, no
/// deadlines, no injected faults — except that panics are *always*
/// isolated per cell rather than poisoning the pool.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retries after the first attempt (0 = fail on first error).
    pub max_retries: u32,
    /// Seed for the per-cell backoff schedule (derived, never used raw).
    pub retry_seed: u64,
    /// Upper bound on one backoff sleep, in milliseconds (0 disables
    /// sleeping entirely; retries are then immediate).
    pub max_backoff_ms: u64,
    /// Flag cells running longer than this into the [`HarnessLog`]
    /// (observability only; the cell keeps running).
    pub soft_deadline: Option<Duration>,
    /// Abandon attempts running longer than this and retry/fail the
    /// cell. Only enforced by report-shaped runs ([`Harness::run`] /
    /// [`Harness::run_supervised`]); `run_map` closures borrow local
    /// state and cannot be abandoned mid-flight.
    pub hard_deadline: Option<Duration>,
    /// Harness-level fault plan: `cell_panic` / `cell_stall` windows
    /// covering cell *submission indices* (other kinds are ignored
    /// here; they act inside simulations via `FaultInjector`).
    pub faults: Option<FaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 0,
            retry_seed: EXPERIMENT_SEED,
            max_backoff_ms: 20,
            soft_deadline: None,
            hard_deadline: None,
            faults: None,
        }
    }
}

impl SupervisorConfig {
    /// Config with a retry budget and everything else default.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Overrides the backoff-schedule seed.
    pub fn with_retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }

    /// Overrides the backoff upper bound (milliseconds).
    pub fn with_max_backoff_ms(mut self, ms: u64) -> Self {
        self.max_backoff_ms = ms;
        self
    }

    /// Sets the soft deadline in milliseconds.
    pub fn with_soft_deadline_ms(mut self, ms: u64) -> Self {
        self.soft_deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Sets the hard deadline in milliseconds.
    pub fn with_hard_deadline_ms(mut self, ms: u64) -> Self {
        self.hard_deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Attaches a harness-level fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The seeded backoff before `attempt` (1-based) of the cell with
    /// this label, in milliseconds. Pure: equal (seed, label, attempt)
    /// always sleep equally, so a retried run stays reproducible.
    pub fn backoff_ms(&self, label: &str, attempt: u32) -> u64 {
        if self.max_backoff_ms == 0 {
            return 0;
        }
        let per_cell = derive_seed(self.retry_seed, label);
        derive_seed(per_cell, &format!("retry/{attempt}")) % (self.max_backoff_ms + 1)
    }

    /// How many leading attempts of cell `index` the fault plan panics
    /// (the max across covering `cell_panic` windows).
    fn injected_panics(&self, index: u64) -> u32 {
        self.faults.as_ref().map_or(0, |plan| {
            plan.cell_windows()
                .filter(|w| w.covers(index))
                .filter_map(|w| match w.kind {
                    FaultKind::CellPanic { failures } => Some(failures),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        })
    }

    /// Injected stall per attempt of cell `index`, in milliseconds (the
    /// max across covering `cell_stall` windows).
    fn injected_stall_ms(&self, index: u64) -> u64 {
        self.faults.as_ref().map_or(0, |plan| {
            plan.cell_windows()
                .filter(|w| w.covers(index))
                .filter_map(|w| match w.kind {
                    FaultKind::CellStall { millis } => Some(millis),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        })
    }
}

/// Internal: how one attempt ended short of success.
enum AttemptError {
    Panicked(String),
    Deadline(u64),
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One independent unit of experiment work: a fully configured
/// simulation and the workloads it runs. Building a cell is cheap (the
/// workloads are shared `Arc`s); running it is the expensive part the
/// pool parallelises.
#[derive(Clone)]
pub struct Cell {
    /// Display label, e.g. `fig7/BFS/pcc` — used for per-cell timings in
    /// the perf artifact, never for results.
    pub label: String,
    /// The configured simulation (policy, sizing, fragmentation, budget,
    /// replacement, cache model — everything baked in).
    pub sim: Simulation,
    /// Processes to run: `(workload, thread count)` pairs.
    pub processes: Vec<(SharedWorkload, u32)>,
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Workloads are trait objects; show their names instead.
        let processes: Vec<(&str, u32)> = self
            .processes
            .iter()
            .map(|(w, threads)| (w.name(), *threads))
            .collect();
        f.debug_struct("Cell")
            .field("label", &self.label)
            .field("sim", &self.sim)
            .field("processes", &processes)
            .finish()
    }
}

impl Cell {
    /// Single-process, single-threaded cell.
    pub fn new(label: impl Into<String>, sim: Simulation, workload: SharedWorkload) -> Self {
        Cell {
            label: label.into(),
            sim,
            processes: vec![(workload, 1)],
        }
    }

    /// Single-process cell with `threads` threads.
    pub fn with_threads(
        label: impl Into<String>,
        sim: Simulation,
        workload: SharedWorkload,
        threads: u32,
    ) -> Self {
        Cell {
            label: label.into(),
            sim,
            processes: vec![(workload, threads)],
        }
    }

    /// Multi-process cell (one entry per process).
    pub fn multiprocess(
        label: impl Into<String>,
        sim: Simulation,
        processes: Vec<(SharedWorkload, u32)>,
    ) -> Self {
        Cell {
            label: label.into(),
            sim,
            processes,
        }
    }

    /// Runs the cell to completion. Pure in its configuration: equal
    /// cells produce equal reports on any thread at any time.
    pub fn run(&self) -> SimReport {
        self.run_recorded(&mut hpage_obs::NullRecorder)
    }

    /// Runs the cell with a flight recorder attached. The recorder only
    /// sees this cell's events; merging across cells is the caller's
    /// job (see [`Harness::run_map`], which keeps merges deterministic
    /// by folding in submission order).
    pub fn run_recorded<R: hpage_obs::Recorder>(&self, recorder: &mut R) -> SimReport {
        let specs: Vec<ProcessSpec<'_>> = self
            .processes
            .iter()
            .map(|(w, threads)| ProcessSpec::with_threads(w.as_ref(), *threads))
            .collect();
        self.sim.run_recorded(&specs, recorder)
    }

    /// A stable 64-bit key over everything that determines this cell's
    /// result: label, full simulation config, and workload identities.
    /// The checkpoint journal uses it to decide which cells a resumed
    /// run may skip. Equal configurations hash equally across runs of
    /// the same build (FxHash, no per-process randomness).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = hpage_types::FxHasher::default();
        h.write(format!("{self:?}").as_bytes());
        h.finish()
    }
}

/// The experiment harness: a worker pool plus the run-wide workload
/// cache, observability log, and supervisor. One harness drives one
/// `repro`/`hpsim` invocation; figure drivers borrow it.
#[derive(Debug)]
pub struct Harness {
    jobs: usize,
    cache: WorkloadCache,
    log: Arc<HarnessLog>,
    supervisor: SupervisorConfig,
    /// Supervisor events (cell panics, retries, deadline flags), in
    /// occurrence order. Wall-clock domain — merge only into telemetry
    /// counters, never into figure output.
    events: Mutex<Vec<Event>>,
    journal: Option<Arc<CellJournal>>,
}

impl Harness {
    /// Creates a harness running up to `jobs` cells concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0` (binaries validate and reject this with a
    /// usage error before construction).
    pub fn new(jobs: usize) -> Self {
        assert!(jobs >= 1, "harness needs at least one worker");
        Harness {
            jobs,
            cache: WorkloadCache::new(),
            log: Arc::new(HarnessLog::new()),
            supervisor: SupervisorConfig::default(),
            events: Mutex::new(Vec::new()),
            journal: None,
        }
    }

    /// Replaces the supervisor config (retries, deadlines, faults).
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Attaches a checkpoint journal; completed cells are recorded as
    /// they finish.
    pub fn with_journal(mut self, journal: Arc<CellJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The active supervisor config.
    pub fn supervisor(&self) -> &SupervisorConfig {
        &self.supervisor
    }

    /// The attached checkpoint journal, if any.
    pub fn journal(&self) -> Option<&Arc<CellJournal>> {
        self.journal.as_ref()
    }

    /// Snapshot of supervisor events so far (occurrence order).
    pub fn supervisor_events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn emit(&self, event: Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// A single-worker harness — cells run inline, in order, exactly as
    /// the pre-harness sequential drivers did.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The run-wide workload cache.
    pub fn cache(&self) -> &WorkloadCache {
        &self.cache
    }

    /// The run's observability log (wall-clock timings + warnings).
    pub fn log(&self) -> &HarnessLog {
        &self.log
    }

    /// The figure drivers' standard workload: `app` on Kronecker at the
    /// profile's scale, seeded with [`EXPERIMENT_SEED`]; served from the
    /// cache.
    pub fn workload(&self, profile: &SimProfile, app: AppId) -> Arc<AnyWorkload> {
        self.cache
            .get_parts(app, Dataset::Kronecker, profile.workloads, EXPERIMENT_SEED)
    }

    /// Runs `cells` and returns their reports in submission order.
    ///
    /// With `jobs == 1` the cells run inline on the calling thread. With
    /// more, a scoped worker pool claims cells via an atomic cursor and
    /// writes each report into its submission-index slot, so the
    /// returned order — and therefore every table assembled from it —
    /// is independent of scheduling.
    ///
    /// Cells run supervised (retries, deadlines, fault injection per
    /// [`SupervisorConfig`]). A cell that still fails after its retry
    /// budget does **not** abort the grid: every other cell completes
    /// first, then this method panics with an aggregate message (the
    /// driving binary's per-section `catch_unwind` renders it as an
    /// `n/a (cell failed: …)` row). Callers that want the failures as
    /// values use [`run_supervised`](Self::run_supervised).
    pub fn run(&self, cells: Vec<Cell>) -> Vec<SimReport> {
        let labels: Vec<String> = cells.iter().map(|c| c.label.clone()).collect();
        unwrap_all(&labels, self.run_supervised(cells))
    }

    /// Runs `cells` supervised and returns per-cell results in
    /// submission order, failures as `Err` values. This is the
    /// deadline-capable path: attempts run on dedicated threads, so a
    /// hard-deadline overrun abandons the attempt instead of blocking
    /// the pool. (The abandoned thread finishes in the background; its
    /// result is discarded.)
    pub fn run_supervised(&self, cells: Vec<Cell>) -> Vec<Result<SimReport, CellFailure>> {
        let sup = &self.supervisor;
        if sup.soft_deadline.is_none() && sup.hard_deadline.is_none() {
            return self.try_run_map(cells, Cell::run);
        }
        let cells: Vec<Arc<Cell>> = cells.into_iter().map(Arc::new).collect();
        self.dispatch(cells.len(), |i| {
            let cell = &cells[i];
            self.supervise_loop(i, cell, |attempt| self.deadline_attempt(i, cell, attempt))
        })
    }

    /// Runs `f` over every cell and returns the results in submission
    /// order. [`run`](Self::run) routes here when no deadlines are set;
    /// drivers that want per-cell telemetry pass a closure that attaches
    /// a recorder (e.g. via [`Cell::run_recorded`]) and returns the
    /// report *plus* whatever the recorder captured. Because results
    /// come back in submission order, folding them left-to-right (metric
    /// merges, ledger concatenation) is deterministic at any `--jobs`
    /// level.
    ///
    /// Panics with an aggregate message if any cell fails after its
    /// retry budget — but only after every other cell has completed.
    pub fn run_map<T, F>(&self, cells: Vec<Cell>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Cell) -> T + Sync,
    {
        let labels: Vec<String> = cells.iter().map(|c| c.label.clone()).collect();
        unwrap_all(&labels, self.try_run_map(cells, f))
    }

    /// The fallible form of [`run_map`](Self::run_map): each cell runs
    /// under `catch_unwind` with the supervisor's retry budget, and a
    /// cell that exhausts it yields `Err(CellFailure)` in its slot
    /// while the rest of the grid completes normally. Deadlines are not
    /// enforced on this path (`f` borrows local state and cannot be
    /// abandoned); use [`run_supervised`](Self::run_supervised) for
    /// deadline coverage.
    pub fn try_run_map<T, F>(&self, cells: Vec<Cell>, f: F) -> Vec<Result<T, CellFailure>>
    where
        T: Send,
        F: Fn(&Cell) -> T + Sync,
    {
        self.dispatch(cells.len(), |i| {
            let cell = &cells[i];
            let injected = self.supervisor.injected_panics(i as u64);
            let stall = self.supervisor.injected_stall_ms(i as u64);
            self.supervise_loop(i, cell, |attempt| {
                catch_unwind(AssertUnwindSafe(|| {
                    if stall > 0 {
                        std::thread::sleep(Duration::from_millis(stall));
                    }
                    if u64::from(attempt) <= u64::from(injected) {
                        panic!(
                            "injected cell panic (attempt {attempt} of {injected} injected failures)"
                        );
                    }
                    f(cell)
                }))
                .map_err(|payload| AttemptError::Panicked(panic_message(payload)))
            })
        })
    }

    /// Claims indices `0..n` across the worker pool (inline when
    /// `jobs == 1` or `n <= 1`) and returns `exec(i)` results in index
    /// order. The result slots recover from poisoning: even if a
    /// recorder or log hook panicked through a worker, the remaining
    /// slots stay readable instead of wedging the whole grid.
    fn dispatch<T, E>(&self, n: usize, exec: E) -> Vec<T>
    where
        T: Send,
        E: Fn(usize) -> T + Sync,
    {
        if self.jobs == 1 || n <= 1 {
            return (0..n).map(exec).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.jobs.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = exec(i);
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every claimed cell fills its slot")
            })
            .collect()
    }

    /// The supervisor's attempt loop for one cell: seeded backoff
    /// between attempts, retry/failure bookkeeping into the log and
    /// event stream, cell timing and journal entry on success.
    fn supervise_loop<T>(
        &self,
        index: usize,
        cell: &Cell,
        mut attempt_fn: impl FnMut(u32) -> Result<T, AttemptError>,
    ) -> Result<T, CellFailure> {
        let sup = &self.supervisor;
        let start = Instant::now();
        let max_attempts = sup.max_retries.saturating_add(1);
        let mut attempt: u32 = 1;
        loop {
            if attempt > 1 {
                let backoff = sup.backoff_ms(&cell.label, attempt);
                self.log.record_retry(&cell.label, attempt, backoff);
                self.emit(Event::CellRetried {
                    cell: index as u64,
                    attempt,
                    backoff_ms: backoff,
                });
                if backoff > 0 {
                    std::thread::sleep(Duration::from_millis(backoff));
                }
            }
            let error = match attempt_fn(attempt) {
                Ok(result) => {
                    let wall_s = start.elapsed().as_secs_f64();
                    self.log.record_cell(&cell.label, wall_s);
                    if let Some(journal) = &self.journal {
                        if let Err(e) = journal.record_cell(
                            cell.fingerprint(),
                            &cell.label,
                            attempt,
                            (wall_s * 1000.0) as u64,
                        ) {
                            self.log.warn(format!(
                                "journal {}: failed to record cell {}: {e}",
                                journal.path(),
                                cell.label
                            ));
                        }
                    }
                    return Ok(result);
                }
                Err(e) => e,
            };
            match &error {
                AttemptError::Panicked(_) => self.emit(Event::CellPanicked {
                    cell: index as u64,
                    attempt,
                }),
                AttemptError::Deadline(_) => self.emit(Event::CellHardDeadline {
                    cell: index as u64,
                    attempt,
                }),
            }
            if attempt >= max_attempts {
                let failure = match error {
                    AttemptError::Panicked(message) => CellFailure::Panicked {
                        message,
                        attempts: attempt,
                    },
                    AttemptError::Deadline(limit_ms) => CellFailure::HardDeadline {
                        limit_ms,
                        attempts: attempt,
                    },
                };
                self.log
                    .record_failure(&cell.label, failure.reason(), attempt);
                return Err(failure);
            }
            attempt += 1;
        }
    }

    /// One deadline-watched attempt: the cell runs on a dedicated
    /// thread while this worker plays watchdog over an mpsc channel.
    /// Soft-deadline overruns are flagged and waiting continues;
    /// hard-deadline overruns abandon the attempt (the thread finishes
    /// in the background and its send lands in a closed channel).
    fn deadline_attempt(
        &self,
        index: usize,
        cell: &Arc<Cell>,
        attempt: u32,
    ) -> Result<SimReport, AttemptError> {
        let sup = &self.supervisor;
        let injected = sup.injected_panics(index as u64);
        let stall = sup.injected_stall_ms(index as u64);
        let (tx, rx) = mpsc::channel();
        let worker_cell = Arc::clone(cell);
        std::thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if stall > 0 {
                    std::thread::sleep(Duration::from_millis(stall));
                }
                if u64::from(attempt) <= u64::from(injected) {
                    panic!(
                        "injected cell panic (attempt {attempt} of {injected} injected failures)"
                    );
                }
                worker_cell.run()
            }));
            // A send into a closed channel means the watchdog abandoned
            // this attempt; the completed (or failed) result is dropped.
            let _ = tx.send(outcome.map_err(panic_message));
        });

        let started = Instant::now();
        let finish = |out: Result<SimReport, String>| out.map_err(AttemptError::Panicked);
        let disconnected = || AttemptError::Panicked("cell worker died without reporting".into());

        // Phase 1: wait out the soft deadline (when it precedes the
        // hard one) and flag the overrun.
        if let Some(soft) = sup.soft_deadline {
            if sup.hard_deadline.is_none_or(|h| soft < h) {
                match rx.recv_timeout(soft) {
                    Ok(out) => return finish(out),
                    Err(RecvTimeoutError::Timeout) => {
                        let elapsed = started.elapsed();
                        self.log
                            .record_deadline(&cell.label, false, elapsed.as_secs_f64());
                        self.emit(Event::CellSoftDeadline {
                            cell: index as u64,
                            elapsed_ms: elapsed.as_millis() as u64,
                        });
                    }
                    Err(RecvTimeoutError::Disconnected) => return Err(disconnected()),
                }
            }
        }

        // Phase 2: wait out the hard deadline, or forever without one.
        match sup.hard_deadline {
            Some(hard) => {
                let left = hard.saturating_sub(started.elapsed());
                match rx.recv_timeout(left) {
                    Ok(out) => finish(out),
                    Err(RecvTimeoutError::Timeout) => {
                        self.log.record_deadline(
                            &cell.label,
                            true,
                            started.elapsed().as_secs_f64(),
                        );
                        Err(AttemptError::Deadline(hard.as_millis() as u64))
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(disconnected()),
                }
            }
            None => match rx.recv() {
                Ok(out) => finish(out),
                Err(_) => Err(disconnected()),
            },
        }
    }
}

/// Zips labels with supervised results; if any cell failed, panics with
/// one aggregate message *after* the whole grid has completed.
fn unwrap_all<T>(labels: &[String], results: Vec<Result<T, CellFailure>>) -> Vec<T> {
    let failed: Vec<String> = labels
        .iter()
        .zip(&results)
        .filter_map(|(label, r)| r.as_ref().err().map(|e| format!("{label}: {e}")))
        .collect();
    if !failed.is_empty() {
        panic!("{} cell(s) failed: {}", failed.len(), failed.join("; "));
    }
    results
        .into_iter()
        .map(|r| r.expect("failures handled above"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::PolicyChoice;

    fn profile() -> SimProfile {
        let mut p = SimProfile::test();
        p.max_accesses_per_core = Some(100_000);
        p
    }

    fn cells(h: &Harness, n: usize) -> Vec<Cell> {
        let p = profile();
        let w = h.workload(&p, AppId::Canneal);
        let sized = p
            .clone()
            .sized_for(hpage_trace::Workload::footprint_bytes(w.as_ref()));
        (0..n)
            .map(|i| {
                let policy = if i % 2 == 0 {
                    PolicyChoice::BasePages
                } else {
                    PolicyChoice::pcc_default()
                };
                let sim = Simulation::new(sized.system.clone(), policy)
                    .with_max_accesses_per_core(100_000);
                Cell::new(format!("cell/{i}"), sim, Arc::clone(&w) as SharedWorkload)
            })
            .collect()
    }

    #[test]
    fn parallel_results_equal_sequential_in_order() {
        let seq = Harness::sequential();
        let par = Harness::new(8);
        let expected = seq.run(cells(&seq, 7));
        let got = par.run(cells(&par, 7));
        assert_eq!(expected, got, "submission order must survive the pool");
        // Alternating policies prove slots didn't get shuffled.
        assert_eq!(got[0].policy, got[2].policy);
        assert_ne!(got[0].policy, got[1].policy);
    }

    #[test]
    fn timings_cover_every_cell() {
        let h = Harness::new(4);
        let n = 5;
        let _ = h.run(cells(&h, n));
        assert_eq!(h.log().cells().len(), n);
        assert!(h.log().total_cell_seconds() >= 0.0);
    }

    #[test]
    fn workload_is_cached_across_lookups() {
        let h = Harness::sequential();
        let p = profile();
        let a = h.workload(&p, AppId::Canneal);
        let b = h.workload(&p, AppId::Canneal);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(h.cache().len(), 1);
    }

    #[test]
    fn run_map_merges_recordings_deterministically() {
        use hpage_obs::MemoryRecorder;
        let record = |cell: &Cell| {
            let mut rec = MemoryRecorder::new();
            let report = cell.run_recorded(&mut rec);
            (report, rec.counts_by_kind())
        };
        let seq = Harness::sequential();
        let par = Harness::new(8);
        let expected = seq.run_map(cells(&seq, 6), record);
        let got = par.run_map(cells(&par, 6), record);
        // Submission-order slots make the fold of per-cell event counts
        // (and everything else derived left-to-right) jobs-invariant.
        assert_eq!(expected, got);
        assert!(got.iter().any(|(_, counts)| !counts.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_is_rejected() {
        let _ = Harness::new(0);
    }
}
