//! The sharded barrier-round simulation engine behind
//! [`Simulation::try_run_recorded`](crate::Simulation::try_run_recorded).
//!
//! # Execution model
//!
//! The run is a sequence of **rounds**. In each round every live core
//! receives a quota of up to [`CHUNK`] accesses, truncated in core order
//! so the round total never crosses the next promotion-interval
//! boundary: boundaries are *exact* at any core count (the old loop ran
//! the interval block only after a full sweep over all cores, so the
//! boundary drifted by up to `cores × CHUNK` accesses and the drift
//! depended on the core count). When `total_accesses` lands exactly on
//! a boundary the coordinator reassembles the full OS-visible state and
//! runs the single-threaded interval block — policy, injector, ledger,
//! auditor — verbatim.
//!
//! Cores are grouped into **shards**. Every core of a process lives on
//! the shard that owns the process's [`AddressSpace`], so page-table
//! walks (which set A-bits) never cross a shard boundary between
//! barriers. With `--sim-threads 1` (the default) the single shard runs
//! inline on the calling thread; with more, each shard is an OS thread
//! and rounds execute in parallel.
//!
//! # Determinism
//!
//! The protocol is canonical — the schedule of every simulated event is
//! a pure function of the inputs, never of the shard count:
//!
//! * **Timestamps** are block-sequential: after the fill phase the
//!   coordinator prefix-sums the per-core chunk lengths in core order,
//!   so core *c*'s accesses occupy a contiguous timestamp block that
//!   only depends on the lengths of cores `< c`.
//! * **Page faults** pause the faulting core. Workers run every core to
//!   its first unserved fault (or chunk end), then the coordinator
//!   serves all pending allocation requests against the shared
//!   [`PhysicalMemory`] in global core order (a *wave*), workers
//!   install the granted frames and resume. Wave composition depends
//!   only on per-core fault positions, which are shard-independent.
//!   Two cores of one process can fault on the same region in the same
//!   wave; the later install detects the overlap (or a huge grant that
//!   no longer fits over freshly installed base pages), returns the
//!   frame, and — for the unusable-huge case — re-requests a base
//!   frame in the next wave. Returned frames are freed, and new
//!   requests allocated, in global core order.
//! * **Events** are buffered per core and drained into the recorder in
//!   core order at the end of each round, which equals timestamp order.
//! * **Merges** at interval barriers (PCC banks, TLBs, per-core
//!   counters, ledger walk tallies) key by core or by region and are
//!   order-insensitive sums, so the assembled state is byte-identical
//!   at any `--sim-threads`.
//!
//! The shared-LLC data-cache model couples cores through one
//! [`CacheHierarchy`], so enabling it forces a single shard.

use std::collections::VecDeque;
use std::sync::mpsc::{self, Receiver, Sender};

use hpage_cache::{CacheHierarchy, CacheOutcome};
use hpage_faults::FaultInjector;
use hpage_obs::{
    Event, FailureReason, IntervalRow, IntervalSeries, IntervalSnapshot, PccAction, Recorder,
    TlbLevel, FREQ_HISTOGRAM_BUCKETS,
};
use hpage_os::{
    AddressSpace, AllocGate, AuditViolation, Auditor, BasePagesPolicy, FaultGrant, FaultOutcome,
    HugePagePolicy, OsState, PccPolicy, PhysicalMemory, PromotionBudget, PromotionLedger,
    PromotionSchedule, RegionWalks, ScheduledPromotion,
};
use hpage_pcc::{Pcc, PccBank, PccEvent};
use hpage_perf::RunCounters;
use hpage_tlb::{
    HostSpace, NestedPwc, PageWalkCache, TlbHierarchy, TlbOutcome, Translation, WalkResult,
};
use hpage_trace::TraceStream;
use hpage_types::{
    derive_seed, CoreId, HpageError, MemoryAccess, NestedConfig, PageSize, ProcessId,
    PromotionPolicyKind, VirtAddr, Vpn,
};

use crate::simulation::{ProcessSpec, SimReport, Simulation};

/// Accesses per core per round. Also the upper bound on how far one
/// core's timestamp block can run ahead of another's within a round.
pub(crate) const CHUNK: u32 = 256;

/// Hot-path configuration copied into every shard worker.
#[derive(Clone, Copy)]
struct WorkerFlags {
    /// Policy faults prefer 2 MiB frames.
    prefer_huge: bool,
    /// §5.4.1 ablation: PCC banks are fed from L2-TLB evictions.
    victim_mode: bool,
    /// Tally per-region walk counts for the promotion ledger.
    ledger_on: bool,
    /// Buffer per-access events for the recorder.
    recorder_on: bool,
}

/// A page-fault allocation request: the page-table half of the fault
/// already ran on the worker; the coordinator supplies the frame.
struct FaultRequest {
    core: usize,
    va: VirtAddr,
    wants_huge: bool,
}

/// The host half of one guest VM in a nested run: a private host
/// address space (the VM's guest-physical memory, faulted in on
/// demand), the host promotion engine, and — when the PCC placement
/// enables the host dimension — a one-core host PCC bank fed from the
/// host walks the [`NestedPwc`] actually performs.
///
/// Every core of a process lives on the shard that owns the process's
/// guest address space, so the whole VM travels with that shard between
/// barriers; the coordinator reclaims it at each interval boundary to
/// run the single-threaded host promotion phase in pid order.
struct NestedVm {
    /// Host OS state: one space (gPA→hPA) over a private
    /// [`PhysicalMemory`] sized past the guest's.
    os: OsState,
    /// Host-dimension promotion engine ([`PccPolicy`] when the
    /// placement enables the host PCC, [`BasePagesPolicy`] otherwise —
    /// host faults never allocate huge frames, so without a host PCC
    /// the host dimension stays all-4K). `Send` because the VM travels
    /// with its shard's worker thread between barriers.
    policy: Box<dyn HugePagePolicy + Send>,
    /// The host PCC bank (one core): resident here only across interval
    /// barriers.
    bank: Option<PccBank>,
    /// The bank's single PCC, taken out while the VM executes on a
    /// worker so the walk path feeds it without bank indirection.
    pcc: Option<Pcc>,
    /// Per-VM invariant auditor over the host OS state.
    auditor: Option<Auditor>,
}

impl NestedVm {
    /// Builds the host half of VM `pid`. Host physical memory is sized
    /// at twice the guest's plus slack: data gPAs are bounded by guest
    /// RAM, and the extra headroom covers guest table pages plus the
    /// bloat of host promotions over sparsely-touched regions.
    fn new(sim: &Simulation, nested: &NestedConfig, pid: usize) -> Result<NestedVm, HpageError> {
        let mut phys = PhysicalMemory::new(sim.config.phys_mem_bytes * 2 + (64 << 20));
        if sim.fragmentation_pct > 0 {
            // An independent stream per VM: host fragmentation must not
            // correlate with the guest's (or another VM's) layout.
            let seed = derive_seed(sim.fragmentation_seed, &format!("host-frag-{pid}"));
            phys.fragment(sim.fragmentation_pct, seed);
        }
        let os = OsState::new(phys, 1, vec![0])?;
        let host_pcc = nested.placement.host_enabled();
        let policy: Box<dyn HugePagePolicy + Send> = if host_pcc {
            Box::new(PccPolicy::new(
                PromotionPolicyKind::HighestFrequency,
                sim.config.regions_to_promote,
            ))
        } else {
            Box::new(BasePagesPolicy)
        };
        let mut bank = host_pcc.then(|| {
            PccBank::with_replacement(1, sim.config.pcc_2m, PageSize::Huge2M, sim.replacement)
        });
        let pcc = bank.as_mut().map(|b| b.take(CoreId(0)));
        let auditor = sim.audit.then(|| Auditor::new(&os));
        Ok(NestedVm {
            os,
            policy,
            bank,
            pcc,
            auditor,
        })
    }
}

/// [`HostSpace`] over a VM's host address space: a host walk that finds
/// the guest-physical page unmapped faults it in with a base frame
/// (host huge pages come only from host promotion). The mapped check
/// uses `translate` (no accessed bits) so a first touch still reports
/// a clear PMD A-bit to the host PCC's cold-miss filter.
struct VmHost<'a> {
    space: &'a mut AddressSpace,
    phys: &'a mut PhysicalMemory,
}

impl HostSpace for VmHost<'_> {
    fn walk_gpa(&mut self, gpa: VirtAddr) -> Result<WalkResult, HpageError> {
        if self.space.page_table().translate(gpa).is_none() {
            self.space.fault(gpa, false, self.phys)?;
        }
        self.space.page_table_mut().walk(gpa)
    }
}

/// OS-visible state a shard surrenders at an interval barrier.
#[derive(Default)]
struct OsSlice {
    spaces: Vec<(usize, AddressSpace)>,
    vms: Vec<(usize, NestedVm)>,
    tlbs: Vec<(usize, TlbHierarchy)>,
    pwcs: Vec<(usize, PageWalkCache)>,
    npwcs: Vec<(usize, NestedPwc)>,
    pccs: Vec<(usize, Pcc)>,
    pccs_1g: Vec<(usize, Pcc)>,
    /// Running per-core counters (overwrite, not delta). Surrendered at
    /// barriers only — the interval block and the final report are the
    /// sole readers, and both sit behind [`ToShard::TakeOs`], so the
    /// per-round protocol does not carry counters at all.
    counters: Vec<(usize, RunCounters)>,
    /// Drained per-region walk tallies, merged (summed) into the
    /// coordinator's ledger feed.
    region_walks: Vec<((u32, u64), u64)>,
    /// Same, for the host dimension of a nested run, keyed by
    /// `(VM pid, gPA 2 MiB region index)`.
    host_region_walks: Vec<((u32, u64), u64)>,
}

enum ToShard {
    /// Start a round: refill each listed core's chunk (quota accesses).
    Fill { quotas: Vec<(usize, u64)> },
    /// Execute the filled chunks; `ts_bases[i]` is the global access
    /// count just before core `i`'s block.
    Execute { ts_bases: Vec<(usize, u64)> },
    /// Deliver fault grants to paused cores and resume them.
    Grants { grants: Vec<(usize, FaultGrant)> },
    /// Surrender all OS-visible state for an interval barrier.
    TakeOs,
    /// Reclaim state after the barrier. No reply.
    RestoreOs(Box<OsSlice>),
}

enum FromShard {
    /// Reply to `Fill`: the request's own buffer handed back, each
    /// quota overwritten with how many accesses the core's trace
    /// produced — the coordinator recycles it, so steady-state rounds
    /// allocate nothing for fill traffic.
    Filled { gots: Vec<(usize, u64)> },
    /// Reply to `Execute`/`Grants`.
    Progress(Box<ShardProgress>),
    /// Reply to `TakeOs`.
    Os(Box<OsSlice>),
}

enum ShardProgress {
    /// At least one core hit an unserved page fault.
    Paused {
        requests: Vec<FaultRequest>,
        /// Grants that turned out redundant at install time (another
        /// core of the same process mapped the address in the same
        /// wave). The coordinator frees them in core order.
        unused: Vec<(usize, FaultGrant)>,
    },
    /// Every filled chunk ran to completion.
    RoundDone {
        /// Per-core event buffers, each in timestamp order.
        events: Vec<(usize, Vec<(u64, Event)>)>,
        unused: Vec<(usize, FaultGrant)>,
    },
    /// A page-table operation failed; the run aborts.
    Failed(HpageError),
}

/// One simulated core's private state: TLB hierarchy, page-walk cache,
/// PCC slice, trace stream, and the in-flight chunk.
///
/// The chunk itself is *not* stored here: it is the trace stream's
/// current window ([`TraceStream::window`]), borrowed zero-copy by
/// [`run_seat`] — a decoded HPT2 block, a slice of the recorded trace,
/// or a kernel's pending queue. Only its length is tracked.
struct CoreSeat<'w> {
    core: usize,
    pid: usize,
    /// Index into the owning worker's `spaces`.
    space_slot: usize,
    trace: Box<dyn TraceStream + Send + 'w>,
    // `Option` so the state can travel to the coordinator at barriers;
    // always `Some` while the worker executes.
    tlb: Option<TlbHierarchy>,
    pwc: Option<PageWalkCache>,
    /// Nested mode: the 2D translation-cache complex replacing `pwc`
    /// (which is forced `None` when the run is nested).
    npwc: Option<NestedPwc>,
    pcc: Option<Pcc>,
    pcc_1g: Option<Pcc>,
    /// Length of the trace stream's current window.
    chunk_len: usize,
    /// Next unexecuted index into the window.
    pos: usize,
    /// Timestamp of the access at `pos`.
    ts: u64,
    /// The access at `pos` already faulted; retry the walk directly
    /// (the TLB lookup already counted its miss).
    resume_walk: bool,
    pending_grant: Option<FaultGrant>,
    /// The core has an unfinished chunk in the current round.
    in_round: bool,
    /// TLB stats snapshot (accesses, l1, l2, walks) at chunk start;
    /// the delta folds into `counters` when the chunk completes.
    chunk_base: (u64, u64, u64, u64),
    counters: RunCounters,
    events: Vec<(u64, Event)>,
    region_walks: RegionWalks,
    unused_grants: Vec<FaultGrant>,
    /// Batched A-bit harvest for the 2 MiB PCC: `(region, a_bit)` pairs
    /// collected during the chunk and replayed once at chunk
    /// completion. Only used when no recorder is attached (with a
    /// recorder, `PccUpdate` events must interleave in timestamp order,
    /// so the feed runs inline). Persists across fault pauses within a
    /// chunk.
    pcc_feed: Vec<(Vpn, bool)>,
    /// Same, for the 1 GiB PCC bank.
    pcc_feed_1g: Vec<(Vpn, bool)>,
    /// Scratch for the host walks one 2D walk performs (nTLB misses);
    /// recycled across walks, drained into the host PCC feed and the
    /// host ledger tally immediately after each walk.
    host_scratch: Vec<WalkResult>,
    /// Host-dimension walk tallies for the host promotion ledger,
    /// keyed by `(VM pid, gPA 2 MiB region index)`.
    host_region_walks: RegionWalks,
}

/// A shard: a set of cores plus the address spaces they fault into.
struct ShardWorker<'w> {
    /// Seats in global core order.
    seats: Vec<CoreSeat<'w>>,
    /// Address spaces owned by this shard, keyed by process id.
    spaces: Vec<(usize, Option<AddressSpace>)>,
    /// Nested mode: the host half of each process's VM, slot-parallel
    /// to `spaces` (`None` entries in native runs, and while the VM is
    /// surrendered at a barrier).
    vms: Vec<Option<NestedVm>>,
    /// The shared data-cache model (forces a single shard, so at most
    /// one worker ever holds it).
    caches: Option<CacheHierarchy>,
    flags: WorkerFlags,
}

impl<'w> ShardWorker<'w> {
    fn seat_mut(&mut self, core: usize) -> &mut CoreSeat<'w> {
        self.seats
            .iter_mut()
            .find(|s| s.core == core)
            .expect("core belongs to this shard")
    }

    /// Processes one coordinator message. `RestoreOs` has no reply.
    fn handle(&mut self, msg: ToShard) -> Option<FromShard> {
        match msg {
            ToShard::Fill { mut quotas } => {
                self.fill(&mut quotas);
                Some(FromShard::Filled { gots: quotas })
            }
            ToShard::Execute { ts_bases } => {
                for (core, base) in ts_bases {
                    // First access of the block is access number base+1.
                    self.seat_mut(core).ts = base + 1;
                }
                Some(FromShard::Progress(Box::new(self.run_ready())))
            }
            ToShard::Grants { grants } => {
                for (core, grant) in grants {
                    self.seat_mut(core).pending_grant = Some(grant);
                }
                Some(FromShard::Progress(Box::new(self.run_ready())))
            }
            ToShard::TakeOs => Some(FromShard::Os(Box::new(self.take_os()))),
            ToShard::RestoreOs(slice) => {
                self.restore_os(*slice);
                None
            }
        }
    }

    /// Advances each listed core's trace to its next window (zero-copy:
    /// the stream keeps ownership, the seat only records the length)
    /// and overwrites each quota in place with the count produced.
    fn fill(&mut self, quotas: &mut [(usize, u64)]) {
        for slot in quotas.iter_mut() {
            let (core, quota) = *slot;
            let seat = self.seat_mut(core);
            seat.pos = 0;
            seat.resume_walk = false;
            let got = seat.trace.next_window(quota as usize).len();
            seat.chunk_len = got;
            seat.in_round = got > 0;
            if got > 0 {
                let s = seat.tlb.as_ref().expect("tlb resident").stats();
                seat.chunk_base = (s.accesses, s.l1_hits, s.l2_hits, s.walks);
            }
            slot.1 = got as u64;
        }
    }

    /// Runs every in-round seat until it pauses at a fault or finishes
    /// its chunk.
    fn run_ready(&mut self) -> ShardProgress {
        let flags = self.flags;
        let mut requests = Vec::new();
        let ShardWorker {
            seats,
            spaces,
            vms,
            caches,
            ..
        } = self;
        for seat in seats.iter_mut() {
            if !seat.in_round {
                continue;
            }
            let space = spaces[seat.space_slot]
                .1
                .as_mut()
                .expect("space resident between barriers");
            let vm = vms[seat.space_slot].as_mut();
            // Monomorphize the hot loop on "is a recorder attached":
            // event pushes and the inline PCC feed compile out of the
            // recorder-less path entirely.
            let ran = if flags.recorder_on {
                run_seat::<true>(seat, space, vm, caches, flags)
            } else {
                run_seat::<false>(seat, space, vm, caches, flags)
            };
            match ran {
                Ok(Some(req)) => requests.push(req),
                Ok(None) => {}
                Err(e) => return ShardProgress::Failed(e),
            }
        }
        let mut unused = Vec::new();
        for seat in seats.iter_mut() {
            for g in seat.unused_grants.drain(..) {
                unused.push((seat.core, g));
            }
        }
        if requests.is_empty() {
            let mut events = Vec::new();
            for seat in seats.iter_mut() {
                if !seat.events.is_empty() {
                    events.push((seat.core, std::mem::take(&mut seat.events)));
                }
            }
            ShardProgress::RoundDone { events, unused }
        } else {
            ShardProgress::Paused { requests, unused }
        }
    }

    fn take_os(&mut self) -> OsSlice {
        let mut slice = OsSlice::default();
        for (slot, (pid, s)) in self.spaces.iter_mut().enumerate() {
            slice.spaces.push((*pid, s.take().expect("space resident")));
            if let Some(vm) = self.vms[slot].take() {
                slice.vms.push((*pid, vm));
            }
        }
        for seat in self.seats.iter_mut() {
            slice
                .tlbs
                .push((seat.core, seat.tlb.take().expect("tlb resident")));
            if let Some(p) = seat.pwc.take() {
                slice.pwcs.push((seat.core, p));
            }
            if let Some(p) = seat.npwc.take() {
                slice.npwcs.push((seat.core, p));
            }
            if let Some(p) = seat.pcc.take() {
                slice.pccs.push((seat.core, p));
            }
            if let Some(p) = seat.pcc_1g.take() {
                slice.pccs_1g.push((seat.core, p));
            }
            slice.counters.push((seat.core, seat.counters));
            slice.region_walks.extend(seat.region_walks.drain());
            slice
                .host_region_walks
                .extend(seat.host_region_walks.drain());
        }
        slice
    }

    fn restore_os(&mut self, slice: OsSlice) {
        for (pid, space) in slice.spaces {
            let slot = self
                .spaces
                .iter_mut()
                .find(|(p, _)| *p == pid)
                .expect("process belongs to this shard");
            slot.1 = Some(space);
        }
        for (pid, vm) in slice.vms {
            let slot = self
                .spaces
                .iter()
                .position(|(p, _)| *p == pid)
                .expect("VM belongs to this shard");
            self.vms[slot] = Some(vm);
        }
        for (core, t) in slice.tlbs {
            self.seat_mut(core).tlb = Some(t);
        }
        for (core, p) in slice.pwcs {
            self.seat_mut(core).pwc = Some(p);
        }
        for (core, p) in slice.npwcs {
            self.seat_mut(core).npwc = Some(p);
        }
        for (core, p) in slice.pccs {
            self.seat_mut(core).pcc = Some(p);
        }
        for (core, p) in slice.pccs_1g {
            self.seat_mut(core).pcc_1g = Some(p);
        }
    }
}

/// Executes one seat until its chunk ends (`Ok(None)`) or it needs a
/// frame from the coordinator (`Ok(Some(request))`).
///
/// `REC` mirrors `flags.recorder_on` at the type level so the
/// recorder-less hot loop contains no event plumbing at all. The seat
/// is destructured into disjoint field borrows up front: the chunk is
/// the trace stream's current window, borrowed zero-copy for the whole
/// loop while the TLB, counters and PCC feeds stay mutable beside it.
fn run_seat<const REC: bool>(
    seat: &mut CoreSeat<'_>,
    space: &mut AddressSpace,
    mut vm: Option<&mut NestedVm>,
    caches: &mut Option<CacheHierarchy>,
    flags: WorkerFlags,
) -> Result<Option<FaultRequest>, HpageError> {
    debug_assert_eq!(REC, flags.recorder_on);
    let CoreSeat {
        core,
        pid,
        trace,
        tlb,
        pwc,
        npwc,
        pcc,
        pcc_1g,
        chunk_len,
        pos,
        ts,
        resume_walk,
        pending_grant,
        in_round,
        chunk_base,
        counters,
        events,
        region_walks,
        unused_grants,
        pcc_feed,
        pcc_feed_1g,
        host_scratch,
        host_region_walks,
        ..
    } = seat;
    let core = *core;
    let pid = *pid;
    let tlb = tlb.as_mut().expect("tlb resident");
    // Re-acquire the window on every entry (the seat may be resuming
    // from a fault pause); `window` re-borrows the same slice that
    // `next_window` produced at fill time.
    let chunk: &[MemoryAccess] = trace.window();
    debug_assert_eq!(chunk.len(), *chunk_len);
    // A grant arrived for the access we paused on.
    if let Some(grant) = pending_grant.take() {
        let access = chunk[*pos];
        if space.page_table().translate(access.addr).is_some() {
            // A sibling core's install in this same wave already mapped
            // the address; the grant is redundant — hand the frame back.
            unused_grants.push(grant);
        } else if matches!(grant, FaultGrant::Huge(_)) && !space.fault_wants_huge(access.addr, true)
        {
            // Sibling base-page installs landed in the region after the
            // request was posted; a huge mapping no longer fits. Return
            // the frame and re-request a base grant next wave.
            unused_grants.push(grant);
            return Ok(Some(FaultRequest {
                core,
                va: access.addr,
                wants_huge: false,
            }));
        } else {
            let out = space.install_grant(access.addr, grant)?;
            let size = match out {
                FaultOutcome::Base(_) => {
                    counters.faults_base += 1;
                    PageSize::Base4K
                }
                FaultOutcome::Huge(_) => {
                    counters.faults_huge += 1;
                    PageSize::Huge2M
                }
            };
            if REC {
                events.push((
                    *ts,
                    Event::Fault {
                        core: CoreId(core as u32),
                        process: ProcessId(pid as u32),
                        size,
                    },
                ));
            }
        }
        *resume_walk = true;
    }
    while *pos < *chunk_len {
        let access = chunk[*pos];
        let at = *ts;
        let data_translation: Option<Translation> = if *resume_walk {
            *resume_walk = false;
            let walk = space.page_table_mut().walk(access.addr)?;
            Some(handle_walk::<REC>(
                core,
                pid,
                pwc,
                npwc,
                vm.as_deref_mut(),
                host_scratch,
                host_region_walks,
                tlb,
                pcc,
                pcc_1g,
                pcc_feed,
                pcc_feed_1g,
                counters,
                events,
                region_walks,
                access,
                at,
                walk,
                flags,
            )?)
        } else {
            match tlb.lookup(access.addr) {
                TlbOutcome::L1Hit(t) => {
                    if REC {
                        events.push((
                            at,
                            Event::TlbHit {
                                core: CoreId(core as u32),
                                level: TlbLevel::L1,
                                size: t.size(),
                            },
                        ));
                    }
                    Some(t)
                }
                TlbOutcome::L2Hit(t) => {
                    if REC {
                        events.push((
                            at,
                            Event::TlbHit {
                                core: CoreId(core as u32),
                                level: TlbLevel::L2,
                                size: t.size(),
                            },
                        ));
                    }
                    Some(t)
                }
                TlbOutcome::Miss => match space.page_table_mut().walk(access.addr) {
                    Ok(walk) => Some(handle_walk::<REC>(
                        core,
                        pid,
                        pwc,
                        npwc,
                        vm.as_deref_mut(),
                        host_scratch,
                        host_region_walks,
                        tlb,
                        pcc,
                        pcc_1g,
                        pcc_feed,
                        pcc_feed_1g,
                        counters,
                        events,
                        region_walks,
                        access,
                        at,
                        walk,
                        flags,
                    )?),
                    Err(_) => {
                        // Page fault: ship the allocation request; the
                        // access retries here once the grant lands.
                        let wants_huge = space.fault_wants_huge(access.addr, flags.prefer_huge);
                        return Ok(Some(FaultRequest {
                            core,
                            va: access.addr,
                            wants_huge,
                        }));
                    }
                },
            }
        };
        // Optional data-cache model: physically indexed, so the
        // translation just resolved decides placement.
        if let (Some(caches), Some(t)) = (caches.as_mut(), data_translation) {
            let offset = access.addr.page_offset(t.size());
            let paddr = hpage_types::PhysAddr::new(t.pfn.base().raw() + offset);
            match caches.access(core, paddr) {
                CacheOutcome::L1 => {}
                CacheOutcome::L2 => counters.cache_l2_hits += 1,
                CacheOutcome::Llc => counters.cache_llc_hits += 1,
                CacheOutcome::Memory => counters.cache_memory += 1,
            }
        }
        *pos += 1;
        *ts += 1;
    }
    // Chunk complete. Without a recorder the A-bit harvest batched
    // during the chunk replays into the PCC banks here, once per chunk:
    // each bank is per-seat, the replay preserves the per-bank call
    // order, and PCC state is only read at interval barriers (which sit
    // between completed rounds), so the result is bit-identical to the
    // inline feed.
    if !REC {
        if let Some(pcc) = pcc.as_mut() {
            for &(region, a_bit) in pcc_feed.iter() {
                pcc.record_walk(region, a_bit);
            }
        }
        pcc_feed.clear();
        if let Some(pcc_1g) = pcc_1g.as_mut() {
            for &(region, a_bit) in pcc_feed_1g.iter() {
                pcc_1g.record_walk(region, a_bit);
            }
        }
        pcc_feed_1g.clear();
    }
    // Fold the TLB stats delta into the counters (the hierarchy already
    // counts lookups, so the hot loop doesn't).
    let s = tlb.stats();
    counters.accesses += s.accesses - chunk_base.0;
    counters.l1_hits += s.l1_hits - chunk_base.1;
    counters.l2_hits += s.l2_hits - chunk_base.2;
    counters.walks += s.walks - chunk_base.3;
    *in_round = false;
    Ok(None)
}

/// The post-walk datapath: PWC (or the nested 2D complex), ledger
/// tally, TLB fill, PCC feeds. A free function over the seat's
/// split-borrowed fields so it can run while the trace window (an
/// immutable borrow of the seat's stream) is live in [`run_seat`].
///
/// In nested mode the guest walk's level count is only the first
/// dimension: every referenced guest level and the data page are
/// host-translated through the seat's [`NestedPwc`], host faults are
/// served inline from the VM's private physical memory, and the host
/// walks actually performed feed the host PCC and the host ledger
/// tally. `Event::Walk` then carries the *nominal* cold 2D cost
/// (`guest_levels × 5 + 4`) as `levels` and the real reference count as
/// `effective_levels`; the host PCC feed runs inline on both the
/// recorded and unrecorded paths (it emits no events), so recording
/// stays pure observation.
///
/// # Errors
///
/// Returns [`HpageError::OutOfMemory`] when a host fault cannot back a
/// guest-physical page (nested mode only — the native path is
/// infallible).
#[allow(clippy::too_many_arguments)]
fn handle_walk<const REC: bool>(
    core: usize,
    pid: usize,
    pwc: &mut Option<PageWalkCache>,
    npwc: &mut Option<NestedPwc>,
    vm: Option<&mut NestedVm>,
    host_scratch: &mut Vec<WalkResult>,
    host_region_walks: &mut RegionWalks,
    tlb: &mut TlbHierarchy,
    pcc: &mut Option<Pcc>,
    pcc_1g: &mut Option<Pcc>,
    pcc_feed: &mut Vec<(Vpn, bool)>,
    pcc_feed_1g: &mut Vec<(Vpn, bool)>,
    counters: &mut RunCounters,
    events: &mut Vec<(u64, Event)>,
    region_walks: &mut RegionWalks,
    access: MemoryAccess,
    at: u64,
    walk: WalkResult,
    flags: WorkerFlags,
) -> Result<Translation, HpageError> {
    let (nominal_levels, effective_levels) = if let Some(npwc) = npwc.as_mut() {
        let vm = vm.expect("nested seats always have a VM");
        let gpa = hpage_tlb::data_gpa(&walk, access.addr);
        let refs = {
            let OsState { phys, spaces, .. } = &mut vm.os;
            let mut host = VmHost {
                space: &mut spaces[0],
                phys,
            };
            npwc.walk(
                access.addr,
                walk.levels_referenced,
                gpa,
                &mut host,
                host_scratch,
            )?
        };
        for hw in host_scratch.iter() {
            let region = hw.translation.vpn.base().vpn(PageSize::Huge2M);
            if let Some(host_pcc) = vm.pcc.as_mut() {
                if hw.translation.size() != PageSize::Huge1G {
                    host_pcc.record_walk(region, hw.pmd_accessed_before);
                }
            }
            if flags.ledger_on {
                *host_region_walks
                    .entry((pid as u32, region.index()))
                    .or_insert(0) += 1;
            }
        }
        (walk.levels_referenced * 5 + 4, refs)
    } else {
        let effective = match pwc.as_mut() {
            Some(pwc) => pwc.walk(access.addr, walk.levels_referenced),
            None => walk.levels_referenced,
        };
        (walk.levels_referenced, effective)
    };
    counters.walk_levels += u64::from(effective_levels);
    if flags.ledger_on {
        let key = (pid as u32, access.addr.vpn(PageSize::Huge2M).index());
        *region_walks.entry(key).or_insert(0) += 1;
    }
    if REC {
        events.push((
            at,
            Event::Walk {
                core: CoreId(core as u32),
                size: walk.translation.size(),
                levels: nominal_levels,
                effective_levels,
                a_bit_was_set: walk.pmd_accessed_before,
            },
        ));
    }
    let l2_victim = tlb.fill(walk.translation);
    // A-bit harvest → 2 MiB PCC. In victim mode (§5.4.1 ablation) the
    // feed is the L2 eviction stream: an eviction is evidence of prior
    // residence, so it always takes the A-bit-set update path (the
    // bank's cold-miss filter is off in this mode).
    if pcc.is_some() {
        let harvested = if flags.victim_mode {
            l2_victim.map(|victim| (victim.vpn.base().vpn(PageSize::Huge2M), true))
        } else if walk.translation.size() != PageSize::Huge1G {
            Some((access.addr.vpn(PageSize::Huge2M), walk.pmd_accessed_before))
        } else {
            None
        };
        if let Some((region, a_bit)) = harvested {
            if REC {
                record_pcc_walk(
                    events,
                    pcc.as_mut().expect("checked above"),
                    at,
                    core as u32,
                    region,
                    a_bit,
                );
            } else {
                pcc_feed.push((region, a_bit));
            }
        }
    }
    // Same for the 1 GiB bank, which rides the eviction feed in victim
    // mode and the PUD A-bit otherwise.
    if pcc_1g.is_some() {
        let harvested = if flags.victim_mode {
            l2_victim.map(|victim| (victim.vpn.base().vpn(PageSize::Huge1G), true))
        } else {
            Some((access.addr.vpn(PageSize::Huge1G), walk.pud_accessed_before))
        };
        if let Some((region, a_bit)) = harvested {
            if REC {
                record_pcc_walk(
                    events,
                    pcc_1g.as_mut().expect("checked above"),
                    at,
                    core as u32,
                    region,
                    a_bit,
                );
            } else {
                pcc_feed_1g.push((region, a_bit));
            }
        }
    }
    Ok(walk.translation)
}

/// Reports one walk to a per-core PCC and buffers the decision as an
/// event (recorder-attached path only — without a recorder the feed is
/// batched per chunk and replayed raw). Decay is detected via the
/// stats delta.
fn record_pcc_walk(
    events: &mut Vec<(u64, Event)>,
    pcc: &mut Pcc,
    at: u64,
    core: u32,
    region: Vpn,
    a_bit_was_set: bool,
) {
    let decays_before = pcc.stats().decays;
    let event = pcc.record_walk(region, a_bit_was_set);
    let decayed = pcc.stats().decays > decays_before;
    let action = match event {
        PccEvent::Hit(freq) => PccAction::Hit(freq),
        PccEvent::Inserted => PccAction::Inserted,
        PccEvent::InsertedWithEviction(victim) => PccAction::InsertedWithEviction(victim),
        PccEvent::FilteredColdMiss => PccAction::FilteredColdMiss,
    };
    events.push((
        at,
        Event::PccUpdate {
            core: CoreId(core),
            granularity: region.size(),
            region,
            action,
            decayed,
        },
    ));
}

/// Builds the interval-boundary snapshot (only when a recorder is live —
/// the frequency histogram walks every PCC entry).
fn interval_snapshot(
    interval: u64,
    row: &IntervalRow,
    bank: Option<&PccBank>,
    os: &OsState,
) -> IntervalSnapshot {
    let mut occupancy = 0u64;
    let mut capacity = 0u64;
    let mut hist = [0u32; FREQ_HISTOGRAM_BUCKETS];
    if let Some(bank) = bank {
        for core in 0..bank.cores() {
            let pcc = bank.pcc(CoreId(core));
            occupancy += pcc.len() as u64;
            capacity += pcc.capacity() as u64;
            for cand in pcc.iter() {
                let bucket = if cand.frequency == 0 {
                    0
                } else {
                    (63 - cand.frequency.leading_zeros() as usize).min(FREQ_HISTOGRAM_BUCKETS - 1)
                };
                hist[bucket] += 1;
            }
        }
    }
    IntervalSnapshot {
        interval,
        pcc_occupancy: occupancy,
        pcc_capacity: capacity,
        freq_histogram: hist,
        l1_hit_rate: row.l1_hit_rate,
        l2_hit_rate: row.l2_hit_rate,
        walk_rate: row.walk_rate,
        free_huge_blocks: os.phys.free_huge_capable_blocks(),
        huge_pages_resident: row.huge_pages_resident,
        bloat_bytes: row.bloat_bytes,
    }
}

/// A shard as the coordinator sees it: either the worker inline on this
/// thread (single-shard runs) or a channel pair to a worker thread.
/// `send`/`recv` have identical semantics in both variants, so the
/// coordinator logic — and therefore the simulated schedule — is the
/// same code path at any thread count.
enum Shard<'w> {
    Inline {
        worker: Box<ShardWorker<'w>>,
        queued: VecDeque<FromShard>,
    },
    Threaded {
        tx: Sender<ToShard>,
        rx: Receiver<FromShard>,
    },
}

impl Shard<'_> {
    fn send(&mut self, msg: ToShard) {
        match self {
            Shard::Inline { worker, queued } => {
                if let Some(reply) = worker.handle(msg) {
                    queued.push_back(reply);
                }
            }
            Shard::Threaded { tx, .. } => {
                // A send to a dead worker surfaces as a recv panic with
                // better context; ignore the error here.
                let _ = tx.send(msg);
            }
        }
    }

    fn recv(&mut self) -> FromShard {
        match self {
            Shard::Inline { queued, .. } => queued.pop_front().expect("inline reply queued"),
            Shard::Threaded { rx, .. } => rx.recv().expect("shard worker alive"),
        }
    }
}

fn worker_main(mut worker: ShardWorker<'_>, rx: Receiver<ToShard>, tx: Sender<FromShard>) {
    while let Ok(msg) = rx.recv() {
        if let Some(reply) = worker.handle(msg) {
            if tx.send(reply).is_err() {
                break; // coordinator gone (error path); shut down
            }
        }
    }
}

/// Per-core state materialized at the coordinator for an interval
/// barrier, then redistributed.
struct Assembled {
    tlbs: Vec<TlbHierarchy>,
    pwcs: Option<Vec<PageWalkCache>>,
    /// Nested mode: every core's 2D translation-cache complex, so host
    /// shootdowns can invalidate nested entries at the barrier.
    npwcs: Option<Vec<NestedPwc>>,
}

/// Reusable per-round coordinator buffers. A single-core round covers
/// only [`CHUNK`] accesses, so per-round allocations are visible in the
/// end-to-end throughput gate; everything the coordinator needs each
/// round lives here and is recycled across rounds.
#[derive(Default)]
struct RoundScratch {
    quotas: Vec<(usize, u64)>,
    filling: Vec<usize>,
    gots: Vec<(usize, u64)>,
    ts_bases: Vec<(usize, u64)>,
    active: Vec<usize>,
    round_events: Vec<(usize, Vec<(u64, Event)>)>,
    requests: Vec<FaultRequest>,
    unused: Vec<(usize, FaultGrant)>,
    paused: Vec<usize>,
    /// Message-buffer pool for `Fill`/`Execute` payloads; `Filled`
    /// replies hand their request's buffer back into it.
    pool: Vec<Vec<(usize, u64)>>,
}

struct Coordinator<'a, 'w, R: Recorder> {
    sim: &'a Simulation,
    recorder: &'a mut R,
    shards: Vec<Shard<'w>>,
    core_shard: Vec<usize>,
    core_process: Vec<usize>,
    process_shard: Vec<usize>,
    os: OsState,
    policy: Box<dyn HugePagePolicy>,
    injector: Option<FaultInjector>,
    auditor: Option<Auditor>,
    audit_violations: Vec<(u64, AuditViolation)>,
    ledger: Option<PromotionLedger>,
    region_walks: Option<RegionWalks>,
    /// Nested mode: one VM (host half) per process, parked here between
    /// barriers only while its shard has surrendered it. Indexed by pid.
    vms: Vec<Option<NestedVm>>,
    /// Nested mode with the ledger on: provenance for *host* promotions,
    /// keyed by `(VM pid, gPA 2 MiB region)`.
    host_ledger: Option<PromotionLedger>,
    host_region_walks: Option<RegionWalks>,
    bank: Option<PccBank>,
    bank_1g: Option<PccBank>,
    has_pwc: bool,
    remaining: Vec<u64>,
    live: Vec<bool>,
    live_count: usize,
    per_core: Vec<RunCounters>,
    per_process: Vec<RunCounters>,
    budget: PromotionBudget,
    total_accesses: u64,
    next_interval: u64,
    promotion_failures: u64,
    schedule: PromotionSchedule,
    interval_walk_rates: Vec<f64>,
    interval_series: IntervalSeries,
    /// (accesses, walks, l1, l2) at the last barrier.
    marks: (u64, u64, u64, u64),
    interval_index: u64,
    scratch: RoundScratch,
}

impl<R: Recorder> Coordinator<'_, '_, R> {
    fn run_to_completion(mut self) -> Result<SimReport, HpageError> {
        while self.live_count > 0 {
            self.round()?;
        }
        self.finish()
    }

    /// One round: plan quotas (exactly up to the interval boundary),
    /// fill, execute through fault waves, drain events, and run the
    /// interval block if the boundary was reached.
    fn round(&mut self) -> Result<(), HpageError> {
        let n_shards = self.shards.len();

        // Quotas truncate in core order so the round total never
        // crosses the boundary — this is what makes boundaries exact.
        let mut left = self.next_interval - self.total_accesses;
        debug_assert!(left > 0, "barriers fire exactly at the boundary");
        let mut quotas = std::mem::take(&mut self.scratch.quotas);
        quotas.clear();
        for core in 0..self.core_shard.len() {
            if !self.live[core] {
                continue;
            }
            let q = u64::from(CHUNK).min(self.remaining[core]).min(left);
            left -= q;
            if q > 0 {
                quotas.push((core, q));
            }
        }
        debug_assert!(!quotas.is_empty(), "a live core always gets quota");

        // Fill. Message buffers cycle through `scratch.pool` — the
        // worker hands each request's buffer back as its reply.
        let mut filling = std::mem::take(&mut self.scratch.filling);
        filling.clear();
        for si in 0..n_shards {
            let mut q = self.scratch.pool.pop().unwrap_or_default();
            q.clear();
            q.extend(
                quotas
                    .iter()
                    .filter(|&&(core, _)| self.core_shard[core] == si),
            );
            if q.is_empty() {
                self.scratch.pool.push(q);
            } else {
                filling.push(si);
                self.shards[si].send(ToShard::Fill { quotas: q });
            }
        }
        let mut gots = std::mem::take(&mut self.scratch.gots);
        gots.clear();
        for &si in &filling {
            match self.shards[si].recv() {
                FromShard::Filled { gots: g } => {
                    gots.extend_from_slice(&g);
                    self.scratch.pool.push(g);
                }
                _ => unreachable!("Fill answered with Filled"),
            }
        }
        gots.sort_unstable_by_key(|&(core, _)| core);
        self.scratch.filling = filling;

        // Liveness and block-sequential timestamp bases.
        let mut ts = self.total_accesses;
        let mut ts_bases = std::mem::take(&mut self.scratch.ts_bases);
        ts_bases.clear();
        for (&(core, quota), &(core2, got)) in quotas.iter().zip(gots.iter()) {
            debug_assert_eq!(core, core2);
            self.remaining[core] -= got;
            if got < quota || self.remaining[core] == 0 {
                self.live[core] = false;
                self.live_count -= 1;
            }
            if got > 0 {
                ts_bases.push((core, ts));
                ts += got;
            }
        }
        self.scratch.quotas = quotas;
        self.scratch.gots = gots;
        let round_total = ts - self.total_accesses;
        if round_total == 0 {
            self.scratch.ts_bases = ts_bases;
            return Ok(()); // every participating trace was dry
        }

        // Execute, serving fault waves until all chunks complete.
        let mut active = std::mem::take(&mut self.scratch.active);
        active.clear();
        for si in 0..n_shards {
            let mut b = self.scratch.pool.pop().unwrap_or_default();
            b.clear();
            b.extend(
                ts_bases
                    .iter()
                    .filter(|&&(core, _)| self.core_shard[core] == si),
            );
            if b.is_empty() {
                self.scratch.pool.push(b);
            } else {
                self.shards[si].send(ToShard::Execute { ts_bases: b });
                active.push(si);
            }
        }
        self.scratch.ts_bases = ts_bases;
        let mut round_events = std::mem::take(&mut self.scratch.round_events);
        round_events.clear();
        let mut requests = std::mem::take(&mut self.scratch.requests);
        let mut unused = std::mem::take(&mut self.scratch.unused);
        let mut paused = std::mem::take(&mut self.scratch.paused);
        while !active.is_empty() {
            requests.clear();
            unused.clear();
            paused.clear();
            for &si in &active {
                let progress = match self.shards[si].recv() {
                    FromShard::Progress(p) => *p,
                    _ => unreachable!("Execute/Grants answered with Progress"),
                };
                match progress {
                    ShardProgress::Paused {
                        requests: r,
                        unused: u,
                    } => {
                        requests.extend(r);
                        unused.extend(u);
                        paused.push(si);
                    }
                    ShardProgress::RoundDone { events, unused: u } => {
                        unused.extend(u);
                        round_events.extend(events);
                    }
                    ShardProgress::Failed(e) => return Err(e),
                }
            }
            // Canonical frame recycling: free returned frames, then
            // serve new requests, both in global core order.
            unused.sort_unstable_by_key(|&(core, _)| core);
            for (_, grant) in unused.drain(..) {
                match grant {
                    FaultGrant::Base(pfn) => self.os.phys.free_base(pfn)?,
                    FaultGrant::Huge(pfn) => self.os.phys.free_huge(pfn)?,
                }
            }
            if requests.is_empty() {
                debug_assert!(paused.is_empty(), "paused shards always have requests");
                break;
            }
            requests.sort_unstable_by_key(|r| r.core);
            let mut shard_grants: Vec<Vec<(usize, FaultGrant)>> = vec![Vec::new(); n_shards];
            for req in requests.drain(..) {
                let grant = AddressSpace::allocate_grant(&mut self.os.phys, req.wants_huge)?;
                shard_grants[self.core_shard[req.core]].push((req.core, grant));
                // The worker validates the grant at install time; `va`
                // travels only for the worker's retry bookkeeping.
                let _ = req.va;
            }
            for &si in &paused {
                let g = std::mem::take(&mut shard_grants[si]);
                debug_assert!(!g.is_empty());
                self.shards[si].send(ToShard::Grants { grants: g });
            }
            std::mem::swap(&mut active, &mut paused);
        }
        self.scratch.requests = requests;
        self.scratch.unused = unused;
        self.scratch.paused = paused;
        self.scratch.active = active;

        // Drain the round's events in core order — which, with
        // block-sequential timestamps, is timestamp order.
        round_events.sort_unstable_by_key(|&(core, _)| core);
        for (_, events) in round_events.drain(..) {
            for (at, ev) in events {
                self.recorder.record(at, ev);
            }
        }
        self.scratch.round_events = round_events;
        self.total_accesses += round_total;

        if self.total_accesses == self.next_interval {
            let mut assembled = self.assemble_os();
            self.interval_block(&mut assembled);
            self.next_interval += self.sim.config.promotion_interval_accesses;
            self.distribute_os(assembled);
        }
        Ok(())
    }

    /// Pulls every shard's OS-visible state back into the coordinator.
    fn assemble_os(&mut self) -> Assembled {
        for si in 0..self.shards.len() {
            self.shards[si].send(ToShard::TakeOs);
        }
        let n = self.core_shard.len();
        let mut tlbs: Vec<Option<TlbHierarchy>> = (0..n).map(|_| None).collect();
        let mut pwcs: Vec<Option<PageWalkCache>> = (0..n).map(|_| None).collect();
        let mut npwcs: Vec<Option<NestedPwc>> = (0..n).map(|_| None).collect();
        for si in 0..self.shards.len() {
            let slice = match self.shards[si].recv() {
                FromShard::Os(s) => *s,
                _ => unreachable!("TakeOs answered with Os"),
            };
            for (pid, space) in slice.spaces {
                self.os.spaces[pid] = space;
            }
            for (pid, vm) in slice.vms {
                self.vms[pid] = Some(vm);
            }
            for (core, t) in slice.tlbs {
                tlbs[core] = Some(t);
            }
            for (core, p) in slice.pwcs {
                pwcs[core] = Some(p);
            }
            for (core, p) in slice.npwcs {
                npwcs[core] = Some(p);
            }
            for (core, p) in slice.pccs {
                self.bank
                    .as_mut()
                    .expect("seats hold PCCs only when the bank exists")
                    .restore(CoreId(core as u32), p);
            }
            for (core, p) in slice.pccs_1g {
                self.bank_1g
                    .as_mut()
                    .expect("seats hold 1G PCCs only when the bank exists")
                    .restore(CoreId(core as u32), p);
            }
            for (core, c) in slice.counters {
                self.per_core[core] = c;
            }
            if let Some(rw) = self.region_walks.as_mut() {
                for (k, v) in slice.region_walks {
                    *rw.entry(k).or_insert(0) += v;
                }
            }
            if let Some(rw) = self.host_region_walks.as_mut() {
                for (k, v) in slice.host_region_walks {
                    *rw.entry(k).or_insert(0) += v;
                }
            }
        }
        Assembled {
            tlbs: tlbs
                .into_iter()
                .map(|t| t.expect("every core surrendered its TLB"))
                .collect(),
            pwcs: self.has_pwc.then(|| {
                pwcs.into_iter()
                    .map(|p| p.expect("every core surrendered its PWC"))
                    .collect()
            }),
            npwcs: self.sim.nested.is_some().then(|| {
                npwcs
                    .into_iter()
                    .map(|p| p.expect("every nested core surrendered its caches"))
                    .collect()
            }),
        }
    }

    /// Hands OS-visible state back to the shards after a barrier.
    fn distribute_os(&mut self, assembled: Assembled) {
        let Assembled { tlbs, pwcs, npwcs } = assembled;
        let mut tlbs: Vec<Option<TlbHierarchy>> = tlbs.into_iter().map(Some).collect();
        let mut pwcs: Option<Vec<Option<PageWalkCache>>> =
            pwcs.map(|v| v.into_iter().map(Some).collect());
        let mut npwcs: Option<Vec<Option<NestedPwc>>> =
            npwcs.map(|v| v.into_iter().map(Some).collect());
        for si in 0..self.shards.len() {
            let mut slice = OsSlice::default();
            for (pid, &shard) in self.process_shard.iter().enumerate() {
                if shard != si {
                    continue;
                }
                let placeholder = AddressSpace::new(ProcessId(pid as u32));
                let space = std::mem::replace(&mut self.os.spaces[pid], placeholder);
                slice.spaces.push((pid, space));
                if let Some(vm) = self.vms[pid].take() {
                    slice.vms.push((pid, vm));
                }
            }
            for core in 0..self.core_shard.len() {
                if self.core_shard[core] != si {
                    continue;
                }
                slice
                    .tlbs
                    .push((core, tlbs[core].take().expect("tlb assembled")));
                if let Some(p) = pwcs.as_mut() {
                    slice
                        .pwcs
                        .push((core, p[core].take().expect("pwc assembled")));
                }
                if let Some(p) = npwcs.as_mut() {
                    slice
                        .npwcs
                        .push((core, p[core].take().expect("nested caches assembled")));
                }
                if let Some(b) = self.bank.as_mut() {
                    slice.pccs.push((core, b.take(CoreId(core as u32))));
                }
                if let Some(b) = self.bank_1g.as_mut() {
                    slice.pccs_1g.push((core, b.take(CoreId(core as u32))));
                }
            }
            self.shards[si].send(ToShard::RestoreOs(Box::new(slice)));
        }
    }

    /// The single-threaded interval block: injected faults, ledger
    /// settlement, the promotion policy, shootdowns, audit, and the
    /// interval row. Runs on fully assembled state, so it is verbatim
    /// the sequential loop's logic and its outputs cannot depend on the
    /// shard count.
    fn interval_block(&mut self, assembled: &mut Assembled) {
        let total_accesses = self.total_accesses;
        // Apply this interval's injected faults *before* the policy
        // runs, so an OOM window actually starves the promotions
        // attempted in it.
        if let Some(injector) = self.injector.as_mut() {
            let effects = injector.effects_at(self.interval_index);
            if self.recorder.enabled() {
                for kind in &effects.started {
                    self.recorder.record(
                        total_accesses,
                        Event::FaultInjected {
                            fault: kind.label(),
                            interval: self.interval_index,
                        },
                    );
                }
            }
            for &(percent, seed) in &effects.shocks {
                self.os.phys.fragment(percent, seed);
                // The shock plants background pages no space owns;
                // re-baseline the frame accounting.
                if let Some(auditor) = self.auditor.as_mut() {
                    auditor.rebase(&self.os);
                }
            }
            if effects.pcc_reset {
                if let Some(bank) = self.bank.as_mut() {
                    bank.clear_all();
                }
                if let Some(bank_1g) = self.bank_1g.as_mut() {
                    bank_1g.clear_all();
                }
            }
            if effects.shootdown_spike {
                // A shootdown storm from an interfering workload: every
                // core takes a full TLB + PWC flush, and the flush size
                // is recorded so storm cost is observable downstream.
                for (core, tlb) in assembled.tlbs.iter_mut().enumerate() {
                    let entries_flushed = tlb.resident_entries() as u64;
                    tlb.flush();
                    if let Some(pwcs) = assembled.pwcs.as_mut() {
                        pwcs[core].flush();
                    }
                    if let Some(npwcs) = assembled.npwcs.as_mut() {
                        npwcs[core].flush();
                    }
                    self.recorder.record(
                        total_accesses,
                        Event::ShootdownStorm {
                            core: CoreId(core as u32),
                            entries_flushed,
                        },
                    );
                }
            }
            self.os.phys.set_alloc_gate(AllocGate {
                deny_huge: effects.oom,
                deny_compaction: effects.compaction_stall,
            });
        }
        let walks_now: u64 = self.per_core.iter().map(|c| c.walks).sum();
        let l1_now: u64 = self.per_core.iter().map(|c| c.l1_hits).sum();
        let l2_now: u64 = self.per_core.iter().map(|c| c.l2_hits).sum();
        let da = total_accesses - self.marks.0;
        let dw = walks_now - self.marks.1;
        let dl1 = l1_now - self.marks.2;
        let dl2 = l2_now - self.marks.3;
        debug_assert_eq!(
            da, self.sim.config.promotion_interval_accesses,
            "exact boundaries: every interval covers exactly one interval of accesses"
        );
        self.marks = (total_accesses, walks_now, l1_now, l2_now);
        // Settle the ledger's view of the interval that just ended
        // *before* the policy acts: walk counts observed here are the
        // realized cost each open promotion is scored against.
        if let (Some(ledger), Some(rw)) = (self.ledger.as_mut(), self.region_walks.as_mut()) {
            ledger.observe_interval(rw);
            rw.clear();
        }
        let report = self.policy.run_interval(
            &mut self.os,
            self.bank.as_mut(),
            total_accesses,
            &mut self.budget,
        );
        self.promotion_failures += report.failures;
        for (rank, rec) in report.promotions.iter().enumerate() {
            let outcome = &rec.outcome;
            let p = rec.process.0 as usize;
            self.per_process[p].promotions += 1;
            self.per_process[p].pages_migrated += outcome.pages_migrated;
            self.per_process[p].pages_collapsed += outcome.pages_collapsed;
            self.schedule.push(ScheduledPromotion {
                at_access: total_accesses,
                process: rec.process,
                region: outcome.region,
            });
            if let Some(ledger) = self.ledger.as_mut() {
                ledger.record_promotion(
                    rec.process,
                    outcome.region,
                    total_accesses,
                    rec.predicted_walks,
                );
            }
            if self.recorder.enabled() {
                self.recorder.record(
                    total_accesses,
                    Event::PromotionDecision {
                        process: rec.process,
                        region: outcome.region,
                        rank: rank as u32,
                        policy: self.policy.name(),
                        predicted_walks: rec.predicted_walks,
                    },
                );
                if outcome.pages_migrated > 0 {
                    self.recorder.record(
                        total_accesses,
                        Event::Compaction {
                            process: rec.process,
                            region: outcome.region,
                            pages_migrated: outcome.pages_migrated,
                        },
                    );
                }
            }
        }
        for (pid, region) in &report.demotions {
            self.per_process[pid.0 as usize].demotions += 1;
            if let Some(ledger) = self.ledger.as_mut() {
                ledger.record_demotion(*pid, *region);
            }
            self.recorder.record(
                total_accesses,
                Event::Demotion {
                    process: *pid,
                    region: *region,
                },
            );
        }
        if self.recorder.enabled() {
            for &(pid, region, retry_at, failures) in &report.deferred {
                self.recorder.record(
                    total_accesses,
                    Event::PromotionDeferred {
                        process: pid,
                        region,
                        retry_at,
                        failures,
                    },
                );
            }
            if report.pressure_entered {
                self.recorder.record(
                    total_accesses,
                    Event::PressureEnter {
                        free_blocks: self.os.phys.free_huge_capable_blocks(),
                        bloat_bytes: self.os.total_bloat_bytes(),
                    },
                );
            }
            if report.pressure_exited {
                self.recorder.record(
                    total_accesses,
                    Event::PressureExit {
                        free_blocks: self.os.phys.free_huge_capable_blocks(),
                    },
                );
            }
            for &(pid, bytes) in &report.bloat_recovered {
                self.recorder.record(
                    total_accesses,
                    Event::BloatRecovered {
                        process: pid,
                        bytes,
                    },
                );
            }
            for _ in 0..report.failures {
                self.recorder.record(
                    total_accesses,
                    Event::PromotionFailure {
                        reason: FailureReason::NoFrames,
                    },
                );
            }
            if report.budget_exhausted {
                self.recorder.record(
                    total_accesses,
                    Event::PromotionFailure {
                        reason: FailureReason::BudgetExhausted,
                    },
                );
            }
        }
        for (pid, region) in report.shootdown_regions() {
            let mut entries_flushed = 0u64;
            for (core, tlb) in assembled.tlbs.iter_mut().enumerate() {
                if self.core_process[core] == pid.0 as usize {
                    entries_flushed += tlb.shootdown(region) as u64;
                    if let Some(pwcs) = assembled.pwcs.as_mut() {
                        pwcs[core].invalidate_region(region);
                    }
                    if let Some(npwcs) = assembled.npwcs.as_mut() {
                        npwcs[core].invalidate_guest_region(region);
                    }
                    self.per_process[pid.0 as usize].shootdowns += 1;
                }
            }
            self.recorder.record(
                total_accesses,
                Event::Shootdown {
                    process: pid,
                    region,
                    entries_flushed,
                },
            );
        }
        // Audit once the interval's shootdowns have been applied
        // (TLBs/PCCs must be coherent with the page tables now).
        if let Some(auditor) = self.auditor.as_ref() {
            let mut found = auditor.run(&self.os, &assembled.tlbs, self.bank.as_ref());
            if let Some(ledger) = self.ledger.as_ref() {
                found.extend(auditor.check_ledger(&self.os, ledger));
            }
            let interval_index = self.interval_index;
            self.audit_violations
                .extend(found.into_iter().map(|v| (interval_index, v)));
        }
        self.host_interval_block(assembled);
        self.interval_index += 1;
        let row = IntervalRow {
            walk_rate: dw as f64 / da as f64,
            l1_hit_rate: dl1 as f64 / da as f64,
            l2_hit_rate: dl2 as f64 / da as f64,
            promotions: report.promotions.len() as u64,
            demotions: report.demotions.len() as u64,
            pcc_occupancy: self
                .bank
                .as_ref()
                .map(|b| b.total_candidates() as u64)
                .unwrap_or(0),
            huge_pages_resident: self.os.phys.huge_blocks_in_use(),
            bloat_bytes: self.os.spaces.iter().map(|s| s.bloat_bytes()).sum(),
        };
        self.interval_walk_rates.push(row.walk_rate);
        if self.recorder.enabled() {
            self.recorder.record(
                total_accesses,
                Event::Interval(interval_snapshot(
                    self.interval_series.len() as u64,
                    &row,
                    self.bank.as_ref(),
                    &self.os,
                )),
            );
        }
        self.interval_series.push(row);
    }

    /// The host half of a nested interval barrier: settle the host
    /// ledger, then run each VM's host promotion policy in pid order —
    /// single-threaded on fully assembled state, exactly like the guest
    /// block, so its outputs cannot depend on the shard count. A no-op
    /// in native runs (`vms` is all `None`).
    fn host_interval_block(&mut self, assembled: &mut Assembled) {
        if self.sim.nested.is_none() {
            return;
        }
        let total_accesses = self.total_accesses;
        // Settle realized host-walk counts before the host policy acts,
        // mirroring the guest ledger's observe-then-decide ordering.
        if let (Some(ledger), Some(rw)) =
            (self.host_ledger.as_mut(), self.host_region_walks.as_mut())
        {
            ledger.observe_interval(rw);
            rw.clear();
        }
        let mut any_audit = false;
        for pid in 0..self.vms.len() {
            let Some(vm) = self.vms[pid].as_mut() else {
                continue;
            };
            // The seat-resident host PCC returns to its bank for the
            // policy's dump, and is taken back out afterwards.
            if let Some(bank) = vm.bank.as_mut() {
                bank.restore(CoreId(0), vm.pcc.take().expect("host PCC resident"));
            }
            // Host promotions are hypervisor work outside the guest
            // policy's budget; each VM gets a fresh unlimited budget.
            let mut budget = PromotionBudget::UNLIMITED;
            let report =
                vm.policy
                    .run_interval(&mut vm.os, vm.bank.as_mut(), total_accesses, &mut budget);
            self.promotion_failures += report.failures;
            for rec in &report.promotions {
                let outcome = &rec.outcome;
                self.per_process[pid].host_promotions += 1;
                self.per_process[pid].pages_migrated += outcome.pages_migrated;
                self.per_process[pid].pages_collapsed += outcome.pages_collapsed;
                if let Some(ledger) = self.host_ledger.as_mut() {
                    ledger.record_promotion(
                        ProcessId(pid as u32),
                        outcome.region,
                        total_accesses,
                        rec.predicted_walks,
                    );
                }
                if self.recorder.enabled() {
                    self.recorder.record(
                        total_accesses,
                        Event::HostPromotion {
                            process: ProcessId(pid as u32),
                            region: outcome.region,
                            predicted_walks: rec.predicted_walks,
                        },
                    );
                }
            }
            // The host ledger is keyed by the *VM's* pid, not the VM-
            // internal ProcessId(0) the report carries.
            for (_, region) in &report.demotions {
                if let Some(ledger) = self.host_ledger.as_mut() {
                    ledger.record_demotion(ProcessId(pid as u32), *region);
                }
            }
            // A host remap invalidates nested translations through the
            // remapped gPA region on every core of the VM.
            for (_, region) in report.shootdown_regions() {
                if let Some(npwcs) = assembled.npwcs.as_mut() {
                    for (core, npwc) in npwcs.iter_mut().enumerate() {
                        if self.core_process[core] == pid {
                            npwc.invalidate_host_region(region);
                            self.per_process[pid].host_shootdowns += 1;
                        }
                    }
                }
            }
            if let Some(auditor) = vm.auditor.as_ref() {
                let found = auditor.run(&vm.os, &[], vm.bank.as_ref());
                let interval_index = self.interval_index;
                self.audit_violations
                    .extend(found.into_iter().map(|v| (interval_index, v)));
                any_audit = true;
            }
            if let Some(bank) = vm.bank.as_mut() {
                vm.pcc = Some(bank.take(CoreId(0)));
            }
        }
        // Ledger coherence: `Auditor::check_ledger` indexes spaces by
        // the entry's process id, but host entries are keyed by VM pid
        // while each VM's OsState holds a single space — so the
        // cross-check runs here against `spaces[0]` of the entry's VM.
        if any_audit {
            if let Some(ledger) = self.host_ledger.as_ref() {
                let mut found = Vec::new();
                for e in ledger.open_entries() {
                    let huge = self.vms[e.process.0 as usize]
                        .as_ref()
                        .map(|vm| vm.os.spaces[0].page_table().is_huge_mapped(e.region));
                    if huge != Some(true) {
                        found.push(AuditViolation::LedgerMismatch {
                            what: format!(
                                "open host entry {} of VM {} is not huge-mapped (missed demotion?)",
                                e.region, e.process.0
                            ),
                        });
                    }
                }
                let interval_index = self.interval_index;
                self.audit_violations
                    .extend(found.into_iter().map(|v| (interval_index, v)));
            }
        }
    }

    fn finish(mut self) -> Result<SimReport, HpageError> {
        // Pull final state home (spaces for bloat, the 1 GiB bank for
        // the candidate dump; the TLBs are no longer needed).
        let _ = self.assemble_os();
        // Attribute per-core TLB events and faults to the owning
        // process.
        for (core, counters) in self.per_core.iter().enumerate() {
            let p = self.core_process[core];
            self.per_process[p] = self.per_process[p].merged(counters);
        }
        let aggregate = self
            .per_process
            .iter()
            .fold(RunCounters::default(), |acc, c| acc.merged(c));
        let candidates_1g = self
            .bank_1g
            .map(|b| {
                b.dump_by_frequency()
                    .into_iter()
                    .map(|c| c.candidate)
                    .collect()
            })
            .unwrap_or_default();
        let bloat_bytes: Vec<u64> = self.os.spaces.iter().map(|s| s.bloat_bytes()).collect();
        let policy = match self.sim.nested.as_ref() {
            Some(nc) => format!("{}+nested-{}", self.sim.policy.label(), nc.placement),
            None => self.sim.policy.label(),
        };
        Ok(SimReport {
            policy,
            aggregate,
            per_process: self.per_process,
            huge_pages_at_end: self.os.phys.huge_blocks_in_use(),
            promotion_failures: self.promotion_failures,
            candidates_1g,
            schedule: self.schedule,
            interval_walk_rates: self.interval_walk_rates,
            interval_series: self.interval_series,
            bloat_bytes,
            fault_stats: self.injector.map(|i| *i.stats()),
            audit_violations: self.audit_violations,
            ledger: self.ledger,
            host_ledger: self.host_ledger,
        })
    }
}

/// Entry point: builds the shard partition and drives the run.
pub(crate) fn run<R: Recorder>(
    sim: &Simulation,
    processes: &[ProcessSpec<'_>],
    recorder: &mut R,
) -> Result<SimReport, HpageError> {
    assert!(!processes.is_empty(), "need at least one process");
    let total_cores: u32 = processes.iter().map(|p| p.threads).sum();
    let n_cores = total_cores as usize;

    // Core placement: process p's threads occupy consecutive cores.
    let mut core_process: Vec<usize> = Vec::with_capacity(n_cores);
    for (pi, spec) in processes.iter().enumerate() {
        core_process.extend(std::iter::repeat_n(pi, spec.threads as usize));
    }

    let mut phys = PhysicalMemory::new(sim.config.phys_mem_bytes);
    if sim.fragmentation_pct > 0 {
        phys.fragment(sim.fragmentation_pct, sim.fragmentation_seed);
    }
    let mut os = OsState::new(phys, processes.len() as u32, core_process.clone())?;
    let mut policy = sim.policy.build(&sim.config);
    if let Some(cfg) = sim.degradation {
        policy.configure_degradation(cfg);
    }
    let prefer_huge = policy.fault_prefers_huge();
    let injector = match sim.faults.clone() {
        Some(plan) => Some(FaultInjector::new(plan)?),
        None => None,
    };
    let auditor = sim.audit.then(|| Auditor::new(&os));
    let ledger = sim.ledger.then(PromotionLedger::new);
    let region_walks = sim.ledger.then(RegionWalks::default);

    let victim_entries = sim.policy.uses_victim_cache();
    let mut bank = sim.policy.uses_pcc().then(|| {
        PccBank::with_replacement(
            total_cores,
            sim.config.pcc_2m,
            PageSize::Huge2M,
            sim.replacement,
        )
    });
    // A victim cache is structurally a PCC bank fed by L2 evictions
    // with no accessed-bit filter (evictions are evidence of prior
    // residence, so the cold-miss problem does not arise).
    if let Some(entries) = victim_entries {
        let cfg = hpage_types::PccConfig {
            access_bit_filter: false,
            ..sim.config.pcc_2m.with_entries(entries)
        };
        bank = Some(PccBank::with_replacement(
            total_cores,
            cfg,
            PageSize::Huge2M,
            sim.replacement,
        ));
    }
    // The 1 GiB bank follows the same mode selection as the 2 MiB bank:
    // in victim mode it keeps its own sizing but drops the cold-miss
    // filter and rides the eviction feed (it used to be silently absent
    // in the §5.4.1 ablation, making the 2M-vs-1G comparison vacuous).
    let mut bank_1g = match (
        sim.policy.uses_pcc() || victim_entries.is_some(),
        sim.config.pcc_1g,
    ) {
        (true, Some(cfg)) => {
            let cfg = if victim_entries.is_some() {
                hpage_types::PccConfig {
                    access_bit_filter: false,
                    ..cfg
                }
            } else {
                cfg
            };
            Some(PccBank::with_replacement(
                total_cores,
                cfg,
                PageSize::Huge1G,
                sim.replacement,
            ))
        }
        _ => None,
    };

    // Shard partition: every core of a process lands on the shard that
    // owns the process's address space. The shared-LLC cache model
    // couples all cores, so it forces one shard.
    let requested = sim.sim_threads.max(1);
    let shard_count = if sim.cache.is_some() {
        1
    } else {
        requested.min(processes.len())
    };
    let process_shard: Vec<usize> = (0..processes.len()).map(|pi| pi % shard_count).collect();

    let flags = WorkerFlags {
        prefer_huge,
        victim_mode: victim_entries.is_some(),
        ledger_on: sim.ledger,
        recorder_on: recorder.enabled(),
    };
    let mut workers: Vec<ShardWorker<'_>> = (0..shard_count)
        .map(|_| ShardWorker {
            seats: Vec::new(),
            spaces: Vec::new(),
            vms: Vec::new(),
            caches: None,
            flags,
        })
        .collect();
    if let Some(c) = sim.cache {
        workers[0].caches = Some(CacheHierarchy::new(c, total_cores));
    }
    for pid in 0..processes.len() {
        let placeholder = AddressSpace::new(ProcessId(pid as u32));
        let space = std::mem::replace(&mut os.spaces[pid], placeholder);
        let worker = &mut workers[process_shard[pid]];
        worker.spaces.push((pid, Some(space)));
        worker.vms.push(match sim.nested.as_ref() {
            Some(nc) => Some(NestedVm::new(sim, nc, pid)?),
            None => None,
        });
    }
    let mut core_shard = vec![0usize; n_cores];
    let mut core = 0usize;
    for (pi, spec) in processes.iter().enumerate() {
        let shard = process_shard[pi];
        for t in 0..spec.threads {
            core_shard[core] = shard;
            let worker = &mut workers[shard];
            let space_slot = worker
                .spaces
                .iter()
                .position(|(p, _)| *p == pi)
                .expect("space placed before seats");
            worker.seats.push(CoreSeat {
                core,
                pid: pi,
                space_slot,
                trace: spec.workload.thread_stream(t, spec.threads),
                tlb: Some(TlbHierarchy::new(sim.config.tlb)),
                // Nested mode replaces the native PWC with the 2D
                // cache complex (its guest arrays come from
                // `NestedConfig::guest_pwc`); `SystemConfig::pwc` is
                // deliberately ignored there.
                pwc: if sim.nested.is_some() {
                    None
                } else {
                    sim.config.pwc.map(|c| {
                        PageWalkCache::new(c.pml4e_entries, c.pdpte_entries, c.pde_entries)
                    })
                },
                npwc: sim.nested.as_ref().map(NestedPwc::new),
                pcc: bank.as_mut().map(|b| b.take(CoreId(core as u32))),
                pcc_1g: bank_1g.as_mut().map(|b| b.take(CoreId(core as u32))),
                chunk_len: 0,
                pos: 0,
                ts: 0,
                resume_walk: false,
                pending_grant: None,
                in_round: false,
                chunk_base: (0, 0, 0, 0),
                counters: RunCounters::default(),
                events: Vec::new(),
                region_walks: RegionWalks::default(),
                unused_grants: Vec::new(),
                pcc_feed: Vec::new(),
                pcc_feed_1g: Vec::new(),
                host_scratch: Vec::new(),
                host_region_walks: RegionWalks::default(),
            });
            core += 1;
        }
    }

    let mut coordinator = Coordinator {
        sim,
        recorder,
        shards: Vec::with_capacity(shard_count),
        core_shard,
        core_process,
        process_shard,
        os,
        policy,
        injector,
        auditor,
        audit_violations: Vec::new(),
        ledger,
        region_walks,
        vms: (0..processes.len()).map(|_| None).collect(),
        host_ledger: (sim.ledger && sim.nested.is_some()).then(PromotionLedger::new),
        host_region_walks: (sim.ledger && sim.nested.is_some()).then(RegionWalks::default),
        bank,
        bank_1g,
        has_pwc: sim.config.pwc.is_some() && sim.nested.is_none(),
        remaining: vec![sim.max_accesses_per_core.unwrap_or(u64::MAX); n_cores],
        live: vec![true; n_cores],
        live_count: n_cores,
        per_core: vec![RunCounters::default(); n_cores],
        per_process: vec![RunCounters::default(); processes.len()],
        budget: sim.budget,
        total_accesses: 0,
        next_interval: sim.config.promotion_interval_accesses,
        promotion_failures: 0,
        schedule: PromotionSchedule::default(),
        interval_walk_rates: Vec::new(),
        interval_series: IntervalSeries::new(),
        marks: (0, 0, 0, 0),
        interval_index: 0,
        scratch: RoundScratch::default(),
    };

    if shard_count == 1 {
        let worker = workers.pop().expect("one shard");
        coordinator.shards.push(Shard::Inline {
            worker: Box::new(worker),
            queued: VecDeque::new(),
        });
        coordinator.run_to_completion()
    } else {
        std::thread::scope(|scope| {
            for worker in workers {
                let (to_tx, to_rx) = mpsc::channel::<ToShard>();
                let (from_tx, from_rx) = mpsc::channel::<FromShard>();
                scope.spawn(move || worker_main(worker, to_rx, from_tx));
                coordinator.shards.push(Shard::Threaded {
                    tx: to_tx,
                    rx: from_rx,
                });
            }
            coordinator.run_to_completion()
        })
    }
}
