//! Ready-made simulation profiles: the paper's Table 2 hardware and a
//! proportionally scaled-down profile for laptop-speed experiment runs.

use hpage_trace::WorkloadScale;
use hpage_types::{PccConfig, SystemConfig, TlbConfig, TlbLevelConfig};

/// Couples a hardware [`SystemConfig`] with a workload scale so
/// experiments stay internally consistent (TLB coverage vs. footprint
/// ratios approximate the paper's; see DESIGN.md "Scaling defaults").
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// Hardware/OS configuration.
    pub system: SystemConfig,
    /// Workload instantiation scale.
    pub workloads: WorkloadScale,
    /// Optional per-core trace cap (simulation window).
    pub max_accesses_per_core: Option<u64>,
    /// Physical memory sized as this percentage of the workload
    /// footprint when experiments size memory dynamically. The paper's
    /// fragmentation results assume memory is nearly full (footprint is
    /// a large fraction of a NUMA node), so the default is 150%.
    pub mem_headroom_pct: u64,
}

impl SimProfile {
    /// The paper's exact Table 2 hardware, for full-scale runs (hours).
    pub fn paper() -> Self {
        SimProfile {
            system: SystemConfig::paper_system(),
            workloads: WorkloadScale {
                graph_scale: 24,
                synth: hpage_trace::SynthScale::BENCH,
                dbg_sorted: false,
            },
            max_accesses_per_core: None,
            mem_headroom_pct: 150,
        }
    }

    /// The default experiment profile: hardware scaled so that the
    /// paper's coverage ratios (footprint ≫ TLB reach, HUB regions ≳ PCC
    /// capacity pressure) hold at minute-scale runtimes. TLB is 1/8 of
    /// Table 2; the PCC keeps 128 entries; graphs default to scale 20
    /// (BFS baseline PTW rates land in the paper's 25–35% band).
    pub fn scaled() -> Self {
        let tlb = TlbConfig {
            l1_4k: TlbLevelConfig::new(16, 4),
            l1_2m: TlbLevelConfig::new(8, 4),
            l1_1g: TlbLevelConfig::new(2, 2),
            l2: TlbLevelConfig::new(128, 8),
            l2_holds_1g: false,
        };
        let system = SystemConfig {
            tlb,
            pcc_2m: PccConfig::paper_2m(),
            phys_mem_bytes: 2 << 30,
            promotion_interval_accesses: 1_000_000,
            scanner_pages_per_interval: 1024,
            timing: hpage_types::TimingConfig::paper().with_window_scale(8),
            ..SystemConfig::paper_system()
        };
        SimProfile {
            system,
            workloads: WorkloadScale {
                graph_scale: 20,
                synth: hpage_trace::SynthScale::TEST,
                dbg_sorted: false,
            },
            max_accesses_per_core: Some(10_000_000),
            mem_headroom_pct: 150,
        }
    }

    /// A fast profile for tests and smoke runs (seconds).
    pub fn test() -> Self {
        SimProfile {
            system: SystemConfig::tiny(),
            workloads: WorkloadScale::TEST,
            max_accesses_per_core: Some(1_500_000),
            mem_headroom_pct: 150,
        }
    }

    /// Overrides the graph scale.
    #[must_use]
    pub fn with_graph_scale(mut self, scale: u32) -> Self {
        self.workloads.graph_scale = scale;
        self
    }

    /// Sizes physical memory to fit `footprint_bytes` with this profile's
    /// headroom, 2 MiB-aligned, and returns the updated profile.
    #[must_use]
    pub fn sized_for(mut self, footprint_bytes: u64) -> Self {
        let want = (footprint_bytes.saturating_mul(self.mem_headroom_pct) / 100).max(64 << 21);
        self.system.phys_mem_bytes = want.next_multiple_of(1 << 21);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_valid() {
        SimProfile::paper().system.validate().unwrap();
        SimProfile::scaled().system.validate().unwrap();
        SimProfile::test().system.validate().unwrap();
    }

    #[test]
    fn scaled_keeps_paper_pcc() {
        let p = SimProfile::scaled();
        assert_eq!(p.system.pcc_2m.entries, 128);
        assert_eq!(p.system.tlb.l2.entries, 128);
    }

    #[test]
    fn sized_for_adds_headroom() {
        let p = SimProfile::test().sized_for(100 << 20);
        assert!(p.system.phys_mem_bytes >= 150 << 20);
        assert!(p.system.phys_mem_bytes < 200 << 20);
        assert_eq!(p.system.phys_mem_bytes % (1 << 21), 0);
        p.system.validate().unwrap();
    }

    #[test]
    fn graph_scale_override() {
        let p = SimProfile::test().with_graph_scale(10);
        assert_eq!(p.workloads.graph_scale, 10);
    }
}
