//! The end-to-end simulation loop: workload traces drive per-core TLB
//! hierarchies; misses walk the page tables and update the per-core PCCs;
//! the OS promotion engine runs every interval; shootdowns flow back into
//! TLBs and PCCs (the full datapath of the paper's Figs. 3–4).

use hpage_cache::CacheConfig;
use hpage_faults::{FaultPlan, FaultStats};
use hpage_obs::{IntervalSeries, NullRecorder, Recorder};
use hpage_os::{
    AuditViolation, BasePagesPolicy, DegradationConfig, HawkEyePolicy, HugePagePolicy,
    IdealHugePolicy, LinuxThpPolicy, PccPolicy, PromotionBudget, PromotionLedger,
    PromotionSchedule, ReplayPolicy,
};
use hpage_pcc::{Candidate, ReplacementPolicy};
use hpage_perf::RunCounters;
use hpage_trace::Workload;
use hpage_types::{
    HpageError, NestedConfig, ProcessId, PromotionPolicyKind, SystemConfig, TimingConfig,
};

/// Which huge-page management policy a run uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyChoice {
    /// 4 KiB base pages only (the paper's baseline).
    BasePages,
    /// Everything huge at fault time (the "Max. Perf. with THPs" line).
    IdealHuge,
    /// Linux THP: greedy synchronous allocation + khugepaged.
    LinuxThp,
    /// HawkEye access-coverage promotion.
    HawkEye,
    /// The paper's PCC-driven promotion.
    Pcc {
        /// OS candidate-selection across per-core PCCs.
        selection: PromotionPolicyKind,
        /// Enable PCC-guided demotion under memory pressure (§3.3.3).
        demotion: bool,
        /// Processes to prioritise (`promotion_bias_process`).
        bias: Vec<ProcessId>,
    },
    /// Replay a promotion schedule recorded by an earlier (offline PCC)
    /// run — the second step of the paper's §4 methodology.
    Replay(PromotionSchedule),
    /// The §5.4.1 design alternative: identify candidates from L2-TLB
    /// *evictions* (a victim cache) instead of page-table walks. Uses a
    /// victim-fed candidate cache of `entries` entries per core with the
    /// same OS consumption path as the PCC.
    VictimCache {
        /// Victim-cache entries per core.
        entries: u32,
    },
}

impl PolicyChoice {
    /// The paper's default PCC configuration (highest frequency, no
    /// demotion, no bias).
    pub fn pcc_default() -> Self {
        PolicyChoice::Pcc {
            selection: PromotionPolicyKind::HighestFrequency,
            demotion: false,
            bias: Vec::new(),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            PolicyChoice::BasePages => "base-4k".into(),
            PolicyChoice::IdealHuge => "ideal-2m".into(),
            PolicyChoice::LinuxThp => "linux-thp".into(),
            PolicyChoice::HawkEye => "hawkeye".into(),
            PolicyChoice::Pcc {
                selection,
                demotion,
                ..
            } => {
                let mut s = format!("pcc-{selection}");
                if *demotion {
                    s.push_str("+demote");
                }
                s
            }
            PolicyChoice::Replay(_) => "replay".into(),
            PolicyChoice::VictimCache { entries } => format!("victim-cache-{entries}"),
        }
    }

    pub(crate) fn build(&self, config: &SystemConfig) -> Box<dyn HugePagePolicy> {
        match self {
            PolicyChoice::BasePages => Box::new(BasePagesPolicy),
            PolicyChoice::IdealHuge => Box::new(IdealHugePolicy),
            PolicyChoice::LinuxThp => Box::new(
                LinuxThpPolicy::new().with_pages_per_scan(config.scanner_pages_per_interval),
            ),
            PolicyChoice::HawkEye => Box::new(
                HawkEyePolicy::new().with_pages_per_scan(config.scanner_pages_per_interval),
            ),
            PolicyChoice::Pcc {
                selection,
                demotion,
                bias,
            } => Box::new(
                PccPolicy::new(*selection, config.regions_to_promote)
                    .with_bias(bias.clone())
                    .with_demotion(*demotion),
            ),
            PolicyChoice::Replay(schedule) => Box::new(ReplayPolicy::new(schedule.clone())),
            // The victim-cache alternative reuses the PCC's OS consumption
            // path; only the hardware feed differs.
            PolicyChoice::VictimCache { .. } => Box::new(PccPolicy::new(
                PromotionPolicyKind::HighestFrequency,
                config.regions_to_promote,
            )),
        }
    }

    pub(crate) fn uses_pcc(&self) -> bool {
        matches!(self, PolicyChoice::Pcc { .. })
    }

    pub(crate) fn uses_victim_cache(&self) -> Option<u32> {
        match self {
            PolicyChoice::VictimCache { entries } => Some(*entries),
            _ => None,
        }
    }
}

/// One process in a run: a workload executed by `threads` threads (one
/// core each).
pub struct ProcessSpec<'w> {
    /// The workload to execute.
    pub workload: &'w dyn Workload,
    /// Thread count (vertex/stream partitioning is the workload's).
    pub threads: u32,
}

impl<'w> ProcessSpec<'w> {
    /// Single-threaded process.
    pub fn new(workload: &'w dyn Workload) -> Self {
        ProcessSpec {
            workload,
            threads: 1,
        }
    }

    /// Multi-threaded process.
    pub fn with_threads(workload: &'w dyn Workload, threads: u32) -> Self {
        assert!(threads > 0, "a process needs at least one thread");
        ProcessSpec { workload, threads }
    }
}

/// Everything measured by one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Policy label.
    pub policy: String,
    /// Aggregate counters over all cores/processes.
    pub aggregate: RunCounters,
    /// Counters per process (promotions/faults attributed to the owning
    /// process; TLB events attributed via the cores it ran on).
    pub per_process: Vec<RunCounters>,
    /// 2 MiB frames in use when the run ended (the paper's "Number of
    /// THPs" axis in Fig. 9).
    pub huge_pages_at_end: u64,
    /// Huge-page promotion attempts that failed for lack of frames.
    pub promotion_failures: u64,
    /// Final ranked contents of the 1 GiB PCCs, aggregated across cores
    /// (empty unless `SystemConfig::pcc_1g` is set). The OS can compare
    /// these with the 2 MiB candidates via
    /// [`hpage_pcc::prefer_1g_promotion`] (§3.2.3).
    pub candidates_1g: Vec<Candidate>,
    /// The promotion schedule of this run (every promotion with its
    /// timestamp) — feed it to [`PolicyChoice::Replay`] to reproduce the
    /// paper's offline-simulate-then-replay methodology.
    pub schedule: PromotionSchedule,
    /// Page-table-walk rate per promotion interval, in interval order —
    /// the time-to-benefit curve (§5.4.2: "the PCC can identify HUBs
    /// within a few seconds"). Entry `i` covers the i-th interval of
    /// accesses.
    pub interval_walk_rates: Vec<f64>,
    /// Full per-interval time series (walk/L1/L2 rates, promotions,
    /// demotions, PCC occupancy, huge-page residency, bloat) — the
    /// structured generalization of `interval_walk_rates`; the two are
    /// index-aligned.
    pub interval_series: IntervalSeries,
    /// Memory bloat at run end, per process: resident bytes beyond what
    /// faults touched (the §1 THP-bloat problem; greedy fault-time huge
    /// allocation inflates this, targeted promotion does not).
    pub bloat_bytes: Vec<u64>,
    /// Fault-injection counters when the run had a
    /// [`FaultPlan`](Simulation::with_faults) attached; `None` otherwise.
    pub fault_stats: Option<FaultStats>,
    /// Invariant-auditor findings, `(interval, violation)` pairs — empty
    /// on a clean run, and always empty unless
    /// [`with_audit`](Simulation::with_audit) was set.
    pub audit_violations: Vec<(u64, AuditViolation)>,
    /// The promotion ledger (predicted vs realized walk savings per
    /// promoted region); `Some` only when
    /// [`with_ledger`](Simulation::with_ledger) was set.
    pub ledger: Option<PromotionLedger>,
    /// The host-dimension promotion ledger of a nested run, keyed by
    /// `(VM pid, guest-physical 2 MiB region)`; `Some` only when both
    /// [`with_ledger`](Simulation::with_ledger) and
    /// [`with_nested`](Simulation::with_nested) were set.
    pub host_ledger: Option<PromotionLedger>,
}

impl SimReport {
    /// Aggregate speedup over a baseline run under `timing`.
    pub fn speedup_over(&self, baseline: &SimReport, timing: &TimingConfig) -> f64 {
        self.aggregate.speedup_over(&baseline.aggregate, timing)
    }

    /// Per-process speedup over the same process in a baseline run.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range in either report.
    pub fn process_speedup_over(
        &self,
        baseline: &SimReport,
        process: usize,
        timing: &TimingConfig,
    ) -> f64 {
        self.per_process[process].speedup_over(&baseline.per_process[process], timing)
    }
}

/// Configures and runs simulations.
#[derive(Debug, Clone)]
pub struct Simulation {
    pub(crate) config: SystemConfig,
    pub(crate) policy: PolicyChoice,
    pub(crate) fragmentation_pct: u8,
    pub(crate) fragmentation_seed: u64,
    pub(crate) budget: PromotionBudget,
    pub(crate) replacement: ReplacementPolicy,
    pub(crate) max_accesses_per_core: Option<u64>,
    pub(crate) cache: Option<CacheConfig>,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) degradation: Option<DegradationConfig>,
    pub(crate) audit: bool,
    pub(crate) ledger: bool,
    pub(crate) sim_threads: usize,
    pub(crate) nested: Option<NestedConfig>,
}

impl Simulation {
    /// Creates a simulation of `config` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: SystemConfig, policy: PolicyChoice) -> Self {
        config.validate().expect("invalid system config");
        Simulation {
            config,
            policy,
            fragmentation_pct: 0,
            fragmentation_seed: 0xF4A6,
            budget: PromotionBudget::UNLIMITED,
            replacement: ReplacementPolicy::default(),
            max_accesses_per_core: None,
            cache: None,
            faults: None,
            degradation: None,
            audit: false,
            ledger: false,
            sim_threads: 1,
            nested: None,
        }
    }

    /// Runs every process as a guest VM under nested (2D) paging: each
    /// guest page-table access is itself translated by a private per-VM
    /// host page table, through the nested TLB and split guest/host
    /// paging-structure caches of [`hpage_tlb::NestedPwc`]. The run's
    /// [`PolicyChoice`] drives the *guest* dimension as usual;
    /// `nested.placement` decides which dimension gets PCC-driven host
    /// promotion (host faults always start as base pages). Walk counters
    /// then measure 2D references per walk, and the policy label gains a
    /// `+nested-<placement>` suffix. The native `SystemConfig::pwc` is
    /// ignored in nested mode — the guest-side structure caches come
    /// from `nested.guest_pwc`.
    ///
    /// # Panics
    ///
    /// Panics if `nested` fails [`NestedConfig::validate`].
    #[must_use]
    pub fn with_nested(mut self, nested: NestedConfig) -> Self {
        nested.validate().expect("invalid nested config");
        self.nested = Some(nested);
        self
    }

    /// Shards the simulation loop across `n` OS threads. Every core of
    /// a process is pinned to the shard that owns the process's address
    /// space, so the effective shard count is capped at the process
    /// count (and forced to 1 when the shared-LLC data-cache model is
    /// on). Reports, recordings, and the promotion ledger are
    /// byte-identical at any thread count — see the engine docs in
    /// `shard.rs` for the determinism argument. `n == 0` is treated
    /// as 1.
    #[must_use]
    pub fn with_sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n;
        self
    }

    /// Attaches a deterministic fault plan: at every promotion-interval
    /// boundary the injector is queried and the plan's active windows are
    /// applied (allocation gating, fragmentation shocks, PCC resets, TLB
    /// shootdown storms). The same plan and seed reproduce bit-identical
    /// runs.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables graceful degradation in policies that support it (the PCC
    /// engine): per-region exponential backoff after failed promotions
    /// and pressure-triggered throttling/demotion.
    #[must_use]
    pub fn with_degradation(mut self, cfg: DegradationConfig) -> Self {
        self.degradation = Some(cfg);
        self
    }

    /// Runs the invariant auditor at every interval boundary, collecting
    /// violations into [`SimReport::audit_violations`].
    #[must_use]
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Keeps a promotion ledger: per-2 MiB-region walk counts are
    /// tallied each interval, and every promotion records its
    /// policy-predicted walk savings alongside the realized
    /// post-promotion walk delta. The result lands in
    /// [`SimReport::ledger`]. Pure observation — it never changes what
    /// the simulation does — but the per-walk tally has a (small) cost,
    /// so it is off by default.
    #[must_use]
    pub fn with_ledger(mut self) -> Self {
        self.ledger = true;
        self
    }

    /// Fragments physical memory before the run (the paper's 50%/90%
    /// scenarios).
    #[must_use]
    pub fn with_fragmentation(mut self, percent: u8, seed: u64) -> Self {
        self.fragmentation_pct = percent;
        self.fragmentation_seed = seed;
        self
    }

    /// Caps total promotions (the utility-curve budget).
    #[must_use]
    pub fn with_budget(mut self, budget: PromotionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the PCC replacement policy (ablation).
    #[must_use]
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Truncates each core's trace after `n` accesses (simulation
    /// window).
    #[must_use]
    pub fn with_max_accesses_per_core(mut self, n: u64) -> Self {
        self.max_accesses_per_core = Some(n);
        self
    }

    /// Enables the optional physically-indexed data-cache hierarchy
    /// (per-core L1D + L2, shared LLC). Pair with a timing config from
    /// [`TimingConfig::with_cache_model`] or memory time is charged
    /// twice.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the simulation over `processes`, assigning one core per
    /// thread in specification order.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or physical memory is exhausted
    /// (use [`try_run`](Self::try_run) for a fallible variant).
    pub fn run(&self, processes: &[ProcessSpec<'_>]) -> SimReport {
        self.run_recorded(processes, &mut NullRecorder)
    }

    /// Fallible [`run`](Self::run): returns the error instead of
    /// panicking when the simulated machine runs out of physical memory.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::OutOfMemory`] when base-page allocation
    /// fails (huge-page failures degrade to base pages and injected
    /// faults never gate base allocation, so under any fault plan this
    /// only fires on genuine exhaustion).
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty.
    pub fn try_run(&self, processes: &[ProcessSpec<'_>]) -> Result<SimReport, HpageError> {
        self.try_run_recorded(processes, &mut NullRecorder)
    }

    /// Like [`run`](Self::run), but streams a typed [`Event`] into
    /// `recorder` at every decision point (TLB hits, walks, faults, PCC
    /// updates, promotions, demotions, shootdowns, interval snapshots).
    ///
    /// The simulation is generic over the recorder, so `run` with the
    /// default [`NullRecorder`] monomorphizes every instrumentation site
    /// to dead code — an unobserved run costs nothing. Timestamps are
    /// total accesses issued, so a fixed-seed recording is byte-stable.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or physical memory is exhausted.
    pub fn run_recorded<R: Recorder>(
        &self,
        processes: &[ProcessSpec<'_>],
        recorder: &mut R,
    ) -> SimReport {
        match self.try_run_recorded(processes, recorder) {
            Ok(report) => report,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Fallible [`run_recorded`](Self::run_recorded).
    ///
    /// # Errors
    ///
    /// Same as [`try_run`](Self::try_run).
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty.
    pub fn try_run_recorded<R: Recorder>(
        &self,
        processes: &[ProcessSpec<'_>],
        recorder: &mut R,
    ) -> Result<SimReport, HpageError> {
        crate::shard::run(self, processes, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_obs::{JsonlSink, MemoryRecorder};
    use hpage_trace::{Pattern, SyntheticBuilder, SyntheticWorkload};

    /// A TLB-hostile workload: uniform random accesses over `mb` MiB,
    /// far beyond the tiny TLB's reach.
    fn random_workload(mb: u64, accesses: u64, seed: u64) -> SyntheticWorkload {
        let mut b = SyntheticBuilder::new("rand", seed);
        let a = b.array(8, mb * (1 << 20) / 8);
        b.phase(a, Pattern::UniformRandom { count: accesses }, 0);
        b.build()
    }

    /// A TLB-friendly workload: pure sequential streaming.
    fn seq_workload(mb: u64, accesses: u64) -> SyntheticWorkload {
        let mut b = SyntheticBuilder::new("seq", 0);
        let a = b.array(8, mb * (1 << 20) / 8);
        b.phase(
            a,
            Pattern::Sequential {
                stride: 1,
                count: accesses,
            },
            0,
        );
        b.build()
    }

    fn tiny_sim(policy: PolicyChoice) -> Simulation {
        Simulation::new(hpage_types::SystemConfig::tiny(), policy)
    }

    #[test]
    fn baseline_counts_all_accesses() {
        let w = random_workload(8, 100_000, 1);
        let report = tiny_sim(PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        assert_eq!(report.aggregate.accesses, 100_000);
        assert!(report.aggregate.walks > 0);
        assert_eq!(report.aggregate.promotions, 0);
        assert_eq!(report.huge_pages_at_end, 0);
        // Hits + misses account for every access.
        let a = &report.aggregate;
        assert_eq!(a.l1_hits + a.l2_hits + a.walks, a.accesses);
    }

    #[test]
    fn sequential_workload_is_tlb_friendly() {
        let w = seq_workload(8, 100_000);
        let report = tiny_sim(PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        // One walk per new page (plus cold start), everything else hits.
        assert!(report.aggregate.walk_ratio() < 0.01);
    }

    #[test]
    fn ideal_huge_eliminates_most_walks() {
        let w = random_workload(8, 100_000, 1);
        let base = tiny_sim(PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        let ideal = tiny_sim(PolicyChoice::IdealHuge).run(&[ProcessSpec::new(&w)]);
        assert!(ideal.aggregate.walks * 5 < base.aggregate.walks);
        assert!(ideal.per_process[0].faults_huge > 0);
        assert!(ideal.huge_pages_at_end > 0);
        let t = TimingConfig::paper();
        assert!(ideal.speedup_over(&base, &t) > 1.05);
    }

    #[test]
    fn pcc_policy_promotes_hot_regions() {
        let w = random_workload(8, 400_000, 1);
        let report = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        assert!(report.aggregate.promotions > 0, "PCC should promote");
        assert!(report.huge_pages_at_end > 0);
        // Promotions reduce walks versus baseline.
        let base = tiny_sim(PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        assert!(report.aggregate.walks < base.aggregate.walks);
    }

    #[test]
    fn ledger_attributes_pcc_promotions() {
        let w = random_workload(8, 400_000, 1);
        let report = tiny_sim(PolicyChoice::pcc_default())
            .with_ledger()
            .with_audit()
            .run(&[ProcessSpec::new(&w)]);
        assert!(report.aggregate.promotions > 0, "PCC should promote");
        let ledger = report.ledger.as_ref().expect("ledger requested");
        assert_eq!(ledger.len() as u64, report.aggregate.promotions);
        // PCC promotions carry the candidate's frequency as the
        // prediction; every entry should be nonzero.
        assert!(ledger.entries().iter().all(|e| e.predicted_walks > 0));
        let summary = ledger.summary();
        assert!(summary.prediction_accuracy.is_finite());
        assert!((0.0..=1.0).contains(&summary.prediction_accuracy));
        // The hot regions keep getting hit after promotion via the
        // huge-page entry, so realized walk savings must show up.
        assert!(summary.total_realized > 0.0);
        assert!(
            report.audit_violations.is_empty(),
            "ledger must stay coherent with the page tables: {:?}",
            report.audit_violations
        );
    }

    #[test]
    fn ledger_is_pure_observation() {
        let w = random_workload(8, 400_000, 1);
        let plain = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        let mut ledgered = tiny_sim(PolicyChoice::pcc_default())
            .with_ledger()
            .run(&[ProcessSpec::new(&w)]);
        assert!(ledgered.ledger.is_some());
        ledgered.ledger = None;
        assert_eq!(plain, ledgered, "ledger must not perturb the simulation");
    }

    #[test]
    fn non_predictive_policies_ledger_zero_predictions() {
        let w = random_workload(16, 600_000, 3);
        let report = tiny_sim(PolicyChoice::HawkEye)
            .with_ledger()
            .run(&[ProcessSpec::new(&w)]);
        let ledger = report.ledger.as_ref().expect("ledger requested");
        assert!(!ledger.is_empty());
        assert!(ledger.entries().iter().all(|e| e.predicted_walks == 0));
        // Accuracy stays defined (and pessimal) for non-predictive
        // policies that nonetheless realize savings.
        assert!(ledger.summary().prediction_accuracy.is_finite());
    }

    #[test]
    fn budget_caps_promotions() {
        let w = random_workload(8, 400_000, 1);
        let report = tiny_sim(PolicyChoice::pcc_default())
            .with_budget(PromotionBudget::regions(2))
            .run(&[ProcessSpec::new(&w)]);
        assert!(report.aggregate.promotions <= 2);
    }

    #[test]
    fn fragmentation_blocks_linux_thp() {
        let w = random_workload(8, 200_000, 1);
        let free = tiny_sim(PolicyChoice::LinuxThp).run(&[ProcessSpec::new(&w)]);
        let frag = tiny_sim(PolicyChoice::LinuxThp)
            .with_fragmentation(100, 7)
            .run(&[ProcessSpec::new(&w)]);
        assert!(free.huge_pages_at_end > 0);
        assert_eq!(frag.huge_pages_at_end, 0);
        assert!(frag.aggregate.walks > free.aggregate.walks);
    }

    #[test]
    fn hawkeye_promotes_but_slower_than_pcc() {
        let w = random_workload(16, 600_000, 3);
        let hawkeye = tiny_sim(PolicyChoice::HawkEye).run(&[ProcessSpec::new(&w)]);
        let pcc = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        assert!(hawkeye.aggregate.promotions > 0);
        // The PCC identifies candidates faster (more promotions early,
        // fewer residual walks).
        assert!(pcc.aggregate.walks <= hawkeye.aggregate.walks);
    }

    #[test]
    fn multithread_run_places_cores() {
        let w = random_workload(8, 60_000, 2);
        let report = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::with_threads(&w, 4)]);
        // 4 threads × 60k accesses each.
        assert_eq!(report.aggregate.accesses, 240_000);
        assert_eq!(report.per_process.len(), 1);
    }

    #[test]
    fn multiprocess_reports_per_process() {
        let w1 = random_workload(8, 100_000, 2);
        let w2 = seq_workload(8, 100_000);
        let report = tiny_sim(PolicyChoice::pcc_default())
            .run(&[ProcessSpec::new(&w1), ProcessSpec::new(&w2)]);
        assert_eq!(report.per_process.len(), 2);
        assert_eq!(report.per_process[0].accesses, 100_000);
        assert_eq!(report.per_process[1].accesses, 100_000);
        // The random process walks far more than the sequential one.
        assert!(report.per_process[0].walks > 10 * report.per_process[1].walks);
    }

    #[test]
    fn max_accesses_truncates() {
        let w = random_workload(8, 100_000, 1);
        let report = tiny_sim(PolicyChoice::BasePages)
            .with_max_accesses_per_core(10_000)
            .run(&[ProcessSpec::new(&w)]);
        assert_eq!(report.aggregate.accesses, 10_000);
    }

    #[test]
    fn deterministic_runs() {
        let w = random_workload(8, 150_000, 9);
        let r1 = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        let r2 = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn recording_does_not_perturb_the_simulation() {
        // The flight recorder must be pure observation: a run with a live
        // recorder produces a SimReport identical to an unobserved run.
        let w = random_workload(8, 150_000, 9);
        let silent = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        let mut rec = MemoryRecorder::new();
        let observed =
            tiny_sim(PolicyChoice::pcc_default()).run_recorded(&[ProcessSpec::new(&w)], &mut rec);
        assert_eq!(silent, observed);
        assert!(!rec.is_empty());
    }

    #[test]
    fn recorded_jsonl_is_byte_stable() {
        // Fixed seed => identical traces => identical event stream, byte
        // for byte (timestamps are simulation time, never wall clock).
        let w = random_workload(8, 150_000, 9);
        let jsonl: Vec<String> = (0..2)
            .map(|_| {
                let mut buf = Vec::new();
                let mut sink = JsonlSink::new(&mut buf);
                tiny_sim(PolicyChoice::pcc_default())
                    .run_recorded(&[ProcessSpec::new(&w)], &mut sink);
                let counts = sink.finish().expect("stream to memory");
                assert!(!counts.is_empty());
                String::from_utf8(buf).unwrap()
            })
            .collect();
        assert!(!jsonl[0].is_empty());
        assert_eq!(jsonl[0], jsonl[1]);
        for line in jsonl[0].lines() {
            hpage_obs::json::assert_json_shape(line);
        }
    }

    #[test]
    fn recorder_captures_expected_event_kinds() {
        let w = random_workload(8, 400_000, 1);
        let mut rec = MemoryRecorder::new();
        tiny_sim(PolicyChoice::pcc_default()).run_recorded(&[ProcessSpec::new(&w)], &mut rec);
        let counts = rec.counts_by_kind();
        for kind in [
            "tlb_hit",
            "walk",
            "fault",
            "pcc",
            "promote",
            "shootdown",
            "interval",
        ] {
            assert!(
                counts.get(kind).copied().unwrap_or(0) > 0,
                "expected at least one {kind} event; got {counts:?}"
            );
        }
    }

    #[test]
    fn interval_series_aligns_with_walk_rates() {
        let w = random_workload(8, 400_000, 1);
        let report = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        assert!(!report.interval_series.is_empty());
        assert_eq!(
            report.interval_series.walk_rates(),
            report.interval_walk_rates
        );
        let total_promos: u64 = report
            .interval_series
            .rows()
            .iter()
            .map(|r| r.promotions)
            .sum();
        assert_eq!(total_promos, report.aggregate.promotions);
        // Rates are proper fractions.
        for row in report.interval_series.rows() {
            assert!(row.walk_rate + row.l1_hit_rate + row.l2_hit_rate <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyChoice::BasePages.label(), "base-4k");
        assert_eq!(
            PolicyChoice::pcc_default().label(),
            "pcc-highest-pcc-frequency"
        );
        let demote = PolicyChoice::Pcc {
            selection: PromotionPolicyKind::RoundRobin,
            demotion: true,
            bias: vec![],
        };
        assert_eq!(demote.label(), "pcc-round-robin+demote");
    }

    #[test]
    fn shootdowns_recorded_on_promotion() {
        let w = random_workload(8, 400_000, 1);
        let report = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        assert!(report.aggregate.shootdowns >= report.aggregate.promotions);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_run_panics() {
        let _ = tiny_sim(PolicyChoice::BasePages).run(&[]);
    }

    #[test]
    fn offline_record_then_replay_matches() {
        // The paper's two-step methodology: an offline PCC simulation
        // records the candidate trace; a second run without PCC hardware
        // replays it and gets the same promotions and TLB behaviour.
        let w = random_workload(8, 400_000, 1);
        let offline = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        assert!(!offline.schedule.is_empty());
        let replayed =
            tiny_sim(PolicyChoice::Replay(offline.schedule.clone())).run(&[ProcessSpec::new(&w)]);
        assert_eq!(replayed.policy, "replay");
        assert_eq!(replayed.aggregate.promotions, offline.aggregate.promotions);
        // Identical promotion schedule => identical regions promoted, so
        // the TLB behaviour matches exactly (same deterministic trace).
        assert_eq!(replayed.aggregate.walks, offline.aggregate.walks);
        assert_eq!(replayed.schedule, offline.schedule);
    }

    #[test]
    fn pwc_shortens_walks_but_not_misses() {
        // §5.4.1: PWCs reduce walk *latency* (levels referenced) yet do
        // not reduce TLB miss counts — the PCC is still needed.
        let w = random_workload(8, 200_000, 1);
        let mut cfg = hpage_types::SystemConfig::tiny();
        let no_pwc =
            Simulation::new(cfg.clone(), PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        cfg.pwc = Some(hpage_types::PwcConfig::typical());
        let with_pwc = Simulation::new(cfg, PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        assert_eq!(with_pwc.aggregate.walks, no_pwc.aggregate.walks);
        assert!(
            with_pwc.aggregate.walk_levels < no_pwc.aggregate.walk_levels / 2,
            "pwc {} vs no-pwc {}",
            with_pwc.aggregate.walk_levels,
            no_pwc.aggregate.walk_levels
        );
        let t = TimingConfig::paper();
        assert!(with_pwc.aggregate.cycles(&t) < no_pwc.aggregate.cycles(&t));
    }

    #[test]
    fn cache_model_counts_and_charges() {
        let w = random_workload(8, 150_000, 1);
        let mut cfg = hpage_types::SystemConfig::tiny();
        cfg.timing = cfg.timing.with_cache_model();
        let timing = cfg.timing;
        let no_cache =
            Simulation::new(cfg.clone(), PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        assert_eq!(no_cache.aggregate.cache_memory, 0);
        let cached = Simulation::new(cfg, PolicyChoice::BasePages)
            .with_cache(hpage_cache::CacheConfig::tiny())
            .run(&[ProcessSpec::new(&w)]);
        // Every access is classified; random over 8MiB >> tiny LLC means
        // plenty of memory accesses.
        let a = &cached.aggregate;
        assert!(a.cache_memory > 0);
        assert!(a.cache_l2_hits + a.cache_llc_hits + a.cache_memory <= a.accesses);
        assert!(a.cycles(&timing) > no_cache.aggregate.cycles(&timing));
    }

    #[test]
    fn cache_model_sees_streaming_vs_looping() {
        // Sequential streaming misses per line; looping in a small buffer
        // hits. This is the workload-dependent memory time the constant
        // base-cost model cannot express.
        let stream = seq_workload(8, 100_000);
        let mut b = hpage_trace::SyntheticBuilder::new("loop", 0);
        let arr = b.array(8, 128); // 1KB: fits L1D
        b.phase(
            arr,
            hpage_trace::Pattern::Sequential {
                stride: 1,
                count: 100_000,
            },
            0,
        );
        let looping = b.build();
        let run = |w: &dyn hpage_trace::Workload| {
            Simulation::new(hpage_types::SystemConfig::tiny(), PolicyChoice::BasePages)
                .with_cache(hpage_cache::CacheConfig::tiny())
                .run(&[ProcessSpec::new(w)])
        };
        let s = run(&stream);
        let l = run(&looping);
        assert!(
            s.aggregate.cache_memory * 5 > s.aggregate.accesses / 8,
            "streaming misses every line: {}",
            s.aggregate.cache_memory
        );
        assert!(
            l.aggregate.cache_memory < l.aggregate.accesses / 100,
            "looping should hit: {}",
            l.aggregate.cache_memory
        );
    }

    #[test]
    fn greedy_huge_faulting_bloats_sparse_workloads() {
        // A sparse touch pattern: one access per 2MB region stride.
        let mut b = hpage_trace::SyntheticBuilder::new("sparse", 1);
        let arr = b.array(1 << 21, 32); // 32 elements, one per region
        b.phase(
            arr,
            hpage_trace::Pattern::Sequential {
                stride: 1,
                count: 32,
            },
            0,
        );
        let w = b.build();
        let base = tiny_sim(PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        let greedy = tiny_sim(PolicyChoice::IdealHuge).run(&[ProcessSpec::new(&w)]);
        assert_eq!(
            base.bloat_bytes[0], 0,
            "base pages commit only touched memory"
        );
        // Greedy huge faulting commits ~2MB per touched page.
        assert!(
            greedy.bloat_bytes[0] > 30 * ((2 << 20) - 4096),
            "greedy bloat {} too small",
            greedy.bloat_bytes[0]
        );
    }

    #[test]
    fn interval_walk_rates_show_time_to_benefit() {
        // With the PCC, the walk rate drops sharply after the first
        // promotion interval — the paper's "identifies HUBs within a few
        // seconds" claim in timeline form.
        let w = random_workload(8, 400_000, 1);
        let report = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        let rates = &report.interval_walk_rates;
        assert!(
            rates.len() >= 4,
            "expected several intervals, got {}",
            rates.len()
        );
        let first = rates[0];
        let late = rates[rates.len() - 1];
        assert!(
            late < first / 2.0,
            "walk rate should collapse after early promotions: {first:.3} -> {late:.3}"
        );
        // The baseline's rate stays flat.
        let base = tiny_sim(PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        let b = &base.interval_walk_rates;
        assert!(b[b.len() - 1] > b[0] * 0.5);
    }

    #[test]
    fn victim_cache_alternative_promotes_but_less_precisely() {
        // §5.4.1: a victim cache can surface candidates, but a small one
        // gets polluted by sparsely-accessed data. Both sizes must
        // promote; the PCC must be at least as effective as the small
        // victim cache.
        let w = random_workload(16, 600_000, 5);
        let base = tiny_sim(PolicyChoice::BasePages).run(&[ProcessSpec::new(&w)]);
        let pcc = tiny_sim(PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        let vc_small =
            tiny_sim(PolicyChoice::VictimCache { entries: 4 }).run(&[ProcessSpec::new(&w)]);
        let vc_big =
            tiny_sim(PolicyChoice::VictimCache { entries: 128 }).run(&[ProcessSpec::new(&w)]);
        assert_eq!(vc_small.policy, "victim-cache-4");
        assert!(vc_big.aggregate.promotions > 0);
        assert!(pcc.aggregate.walks <= vc_small.aggregate.walks);
        assert!(vc_big.aggregate.walks <= base.aggregate.walks);
    }

    fn chaos_plan() -> hpage_faults::FaultPlan {
        use hpage_faults::{FaultKind, FaultPlan, FaultWindow};
        FaultPlan::new(
            "sim-chaos",
            vec![
                FaultWindow {
                    kind: FaultKind::OomWindow,
                    at: 1,
                    duration: 2,
                },
                FaultWindow {
                    kind: FaultKind::CompactionStall,
                    at: 2,
                    duration: 2,
                },
                FaultWindow {
                    kind: FaultKind::PccReset,
                    at: 3,
                    duration: 1,
                },
                FaultWindow {
                    kind: FaultKind::FragmentationShock {
                        percent: 40,
                        seed: 9,
                    },
                    at: 4,
                    duration: 1,
                },
                FaultWindow {
                    kind: FaultKind::ShootdownSpike,
                    at: 5,
                    duration: 1,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn faulted_runs_are_deterministic_and_audit_clean() {
        let w = random_workload(8, 400_000, 1);
        let run = || {
            tiny_sim(PolicyChoice::pcc_default())
                .with_faults(chaos_plan())
                .with_degradation(hpage_os::DegradationConfig::default())
                .with_audit()
                .try_run(&[ProcessSpec::new(&w)])
                .unwrap()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2, "same plan + same seed must be bit-identical");
        let stats = r1.fault_stats.expect("plan attached");
        assert!(
            stats.oom_intervals >= 1,
            "OOM window never fired: {stats:?}"
        );
        assert_eq!(stats.shocks_fired, 1);
        assert!(stats.pcc_resets >= 1);
        assert!(stats.shootdown_spike_intervals >= 1);
        assert_eq!(r1.audit_violations, Vec::new());
        // Despite the faults, the run completes with all accesses issued.
        assert_eq!(r1.aggregate.accesses, 400_000);
    }

    #[test]
    fn fault_events_reach_the_recorder() {
        let w = random_workload(8, 400_000, 1);
        let mut rec = MemoryRecorder::new();
        tiny_sim(PolicyChoice::pcc_default())
            .with_faults(chaos_plan())
            .with_degradation(hpage_os::DegradationConfig::default())
            .try_run_recorded(&[ProcessSpec::new(&w)], &mut rec)
            .unwrap();
        let counts = rec.counts_by_kind();
        assert!(
            counts.get("fault_injected").copied().unwrap_or(0) >= 4,
            "expected one fault_injected per distinct fault kind; got {counts:?}"
        );
    }

    #[test]
    fn auditor_is_clean_across_policies() {
        let w = random_workload(8, 200_000, 1);
        for policy in [
            PolicyChoice::BasePages,
            PolicyChoice::IdealHuge,
            PolicyChoice::LinuxThp,
            PolicyChoice::HawkEye,
            PolicyChoice::pcc_default(),
        ] {
            let report = tiny_sim(policy)
                .with_audit()
                .try_run(&[ProcessSpec::new(&w)])
                .unwrap();
            assert_eq!(
                report.audit_violations,
                Vec::new(),
                "policy {} violated invariants",
                report.policy
            );
        }
    }

    #[test]
    fn unfaulted_runs_report_no_fault_stats() {
        let w = random_workload(8, 100_000, 1);
        let report = tiny_sim(PolicyChoice::BasePages)
            .try_run(&[ProcessSpec::new(&w)])
            .unwrap();
        assert_eq!(report.fault_stats, None);
        assert!(report.audit_violations.is_empty());
    }

    #[test]
    fn one_gb_pcc_tracks_giant_regions() {
        let w = random_workload(8, 200_000, 1);
        let mut cfg = hpage_types::SystemConfig::tiny();
        cfg.pcc_1g = Some(hpage_types::PccConfig::paper_1g());
        let report = Simulation::new(cfg, PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        // The whole 8MiB workload lives in one or two 1GiB regions.
        assert!(!report.candidates_1g.is_empty());
        assert!(report.candidates_1g.len() <= 2);
        assert_eq!(
            report.candidates_1g[0].region.size(),
            hpage_types::PageSize::Huge1G
        );
        // The 1GB region's frequency dwarfs any single 2MB region's —
        // exactly the §3.2.3 comparison (prefer 1GB only if ≥512x).
        assert!(report.candidates_1g[0].frequency > 0);
    }

    #[test]
    fn interval_boundaries_are_exact_at_any_core_count() {
        // Regression for the boundary-drift bug: the old loop checked
        // `total_accesses >= next_interval` only after a full sweep of
        // all cores, so the interval block ran up to cores×CHUNK
        // accesses late and the drift depended on the core count. The
        // sharded engine truncates round quotas in core order, so every
        // boundary lands on an exact multiple of the interval.
        let interval = hpage_types::SystemConfig::tiny().promotion_interval_accesses;
        let total = 400_000u64;
        let mut series_lens = Vec::new();
        for n in [1u64, 2, 4, 8] {
            let workloads: Vec<SyntheticWorkload> = (0..n)
                .map(|i| random_workload(8, total / n, 100 + i))
                .collect();
            let specs: Vec<ProcessSpec<'_>> = workloads
                .iter()
                .map(|w| ProcessSpec::new(w as &dyn Workload))
                .collect();
            let mut rec = MemoryRecorder::new();
            let report = tiny_sim(PolicyChoice::pcc_default()).run_recorded(&specs, &mut rec);
            assert_eq!(report.aggregate.accesses, total);
            let boundaries: Vec<u64> = rec
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, hpage_obs::Event::Interval(_)))
                .map(|&(at, _)| at)
                .collect();
            assert_eq!(boundaries.len() as u64, total / interval, "{n} cores");
            for (i, at) in boundaries.iter().enumerate() {
                assert_eq!(
                    *at,
                    (i as u64 + 1) * interval,
                    "{n} cores: boundary {i} drifted off the interval grid"
                );
            }
            series_lens.push(report.interval_series.len());
        }
        assert!(
            series_lens.windows(2).all(|w| w[0] == w[1]),
            "interval_series stays index-aligned across core counts: {series_lens:?}"
        );
    }

    #[test]
    fn sharded_runs_are_byte_identical_to_sequential() {
        // The determinism contract of the sharded engine: same report,
        // same event stream, same ledger at any `--sim-threads`, under
        // a fault plan that fragments memory and storms TLBs mid-run.
        let w0 = random_workload(8, 150_000, 11);
        let w1 = seq_workload(4, 120_000);
        let w2 = random_workload(6, 180_000, 13);
        for policy in [
            PolicyChoice::pcc_default(),
            PolicyChoice::LinuxThp,
            PolicyChoice::BasePages,
        ] {
            let runs: Vec<(SimReport, String)> = [1usize, 2, 3, 8]
                .iter()
                .map(|&threads| {
                    let mut buf = Vec::new();
                    let mut sink = JsonlSink::new(&mut buf);
                    let report = tiny_sim(policy.clone())
                        .with_faults(chaos_plan())
                        .with_ledger()
                        .with_audit()
                        .with_sim_threads(threads)
                        .run_recorded(
                            &[
                                ProcessSpec::new(&w0),
                                ProcessSpec::new(&w1),
                                ProcessSpec::new(&w2),
                            ],
                            &mut sink,
                        );
                    sink.finish().expect("stream to memory");
                    (report, String::from_utf8(buf).unwrap())
                })
                .collect();
            for (report, jsonl) in &runs[1..] {
                assert_eq!(report, &runs[0].0, "{}: report differs", policy.label());
                assert_eq!(
                    jsonl,
                    &runs[0].1,
                    "{}: event stream differs",
                    policy.label()
                );
                assert!(report.audit_violations.is_empty(), "{}", policy.label());
            }
        }
    }

    #[test]
    fn victim_ablation_keeps_the_1g_bank_live() {
        // Regression for the §5.4.1 ablation bug: with `pcc_1g` set,
        // the victim-cache mode used to silently drop the 1 GiB bank
        // (it was only built for `PolicyChoice::Pcc`), so the 2M-vs-1G
        // comparison was vacuous in that mode. Both banks now follow
        // the same mode selection: in victim mode the 1 GiB bank rides
        // the eviction feed on the always-A-bit-set path.
        let w = random_workload(16, 600_000, 5);
        let mut cfg = hpage_types::SystemConfig::tiny();
        cfg.pcc_1g = Some(hpage_types::PccConfig::paper_1g());
        let victim = Simulation::new(cfg.clone(), PolicyChoice::VictimCache { entries: 128 })
            .run(&[ProcessSpec::new(&w)]);
        assert!(
            !victim.candidates_1g.is_empty(),
            "the 1 GiB bank must see the victim feed"
        );
        assert!(victim.candidates_1g[0].frequency > 0);
        // And the ablation still byte-reproduces under sharding.
        let again = Simulation::new(cfg, PolicyChoice::VictimCache { entries: 128 })
            .with_sim_threads(4)
            .run(&[ProcessSpec::new(&w)]);
        assert_eq!(victim, again);
    }

    #[test]
    fn shootdown_spike_records_storm_flush_sizes() {
        // Satellite fix: the shootdown-spike fault used to flush every
        // TLB and PWC without emitting any event, so storm cost was
        // invisible downstream. Each core now reports its flush size.
        use hpage_faults::{FaultKind, FaultPlan, FaultWindow};
        let w0 = random_workload(8, 200_000, 21);
        let w1 = random_workload(8, 200_000, 22);
        let plan = FaultPlan::new(
            "storm-only",
            vec![FaultWindow {
                kind: FaultKind::ShootdownSpike,
                at: 2,
                duration: 1,
            }],
        )
        .expect("valid plan");
        let mut rec = MemoryRecorder::new();
        tiny_sim(PolicyChoice::pcc_default())
            .with_faults(plan)
            .run_recorded(&[ProcessSpec::new(&w0), ProcessSpec::new(&w1)], &mut rec);
        let storms: Vec<(u32, u64)> = rec
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                hpage_obs::Event::ShootdownStorm {
                    core,
                    entries_flushed,
                } => Some((core.0, *entries_flushed)),
                _ => None,
            })
            .collect();
        assert_eq!(
            storms.iter().map(|&(c, _)| c).collect::<Vec<_>>(),
            vec![0, 1],
            "one storm event per core, in core order"
        );
        assert!(
            storms.iter().any(|&(_, n)| n > 0),
            "a busy TLB flushes a nonzero number of translations: {storms:?}"
        );
    }

    #[test]
    fn nested_walks_cost_more_than_native_with_the_same_guest_caches() {
        // The 2D tax: same workload, same seed, same guest structure-
        // cache geometry — a nested walk can only add host references
        // on top of what the native walk pays, so walk *counts* match
        // (the host dimension is pure cost-side) while the mean cost
        // strictly rises, bounded by the 24-reference cold worst case.
        let w = random_workload(8, 300_000, 7);
        let nested_cfg = hpage_types::NestedConfig::typical();
        let mut native_cfg = hpage_types::SystemConfig::tiny();
        native_cfg.pwc = Some(nested_cfg.guest_pwc);
        let native =
            Simulation::new(native_cfg, PolicyChoice::pcc_default()).run(&[ProcessSpec::new(&w)]);
        let nested = tiny_sim(PolicyChoice::pcc_default())
            .with_nested(nested_cfg)
            .run(&[ProcessSpec::new(&w)]);
        assert_eq!(nested.aggregate.walks, native.aggregate.walks);
        assert!(nested.aggregate.walk_levels > native.aggregate.walk_levels);
        let mean = nested.aggregate.walk_levels as f64 / nested.aggregate.walks as f64;
        assert!(
            (1.0..=24.0).contains(&mean),
            "2D mean references out of range: {mean}"
        );
        assert!(nested.policy.ends_with("+nested-both"), "{}", nested.policy);
        assert!(!native.policy.contains("nested"), "{}", native.policy);
    }

    #[test]
    fn nested_placement_drives_the_host_dimension() {
        use hpage_types::{NestedConfig, PccPlacement};
        let w = random_workload(8, 400_000, 9);
        let run = |placement: PccPlacement| {
            tiny_sim(PolicyChoice::pcc_default())
                .with_nested(NestedConfig::typical().with_placement(placement))
                .with_ledger()
                .with_audit()
                .run(&[ProcessSpec::new(&w)])
        };
        let both = run(PccPlacement::Both);
        let host = run(PccPlacement::Host);
        let guest = run(PccPlacement::Guest);
        let none = run(PccPlacement::None);
        for (r, host_on) in [
            (&both, true),
            (&host, true),
            (&guest, false),
            (&none, false),
        ] {
            assert_eq!(
                r.aggregate.host_promotions > 0,
                host_on,
                "{}: host promotions {}",
                r.policy,
                r.aggregate.host_promotions
            );
            assert!(
                r.audit_violations.is_empty(),
                "{}: {:?}",
                r.policy,
                r.audit_violations
            );
            let hl = r.host_ledger.as_ref().expect("ledger requested");
            assert_eq!(hl.len() as u64, r.aggregate.host_promotions, "{}", r.policy);
        }
        // A host PCC only helps if the guest dimension leaves host
        // walks to save; with it on, host shootdowns fire too.
        assert!(both.aggregate.host_shootdowns > 0);
        assert_eq!(guest.aggregate.host_shootdowns, 0);
        // Guest promotions follow the guest policy regardless of the
        // host side.
        assert!(both.aggregate.promotions > 0);
        assert!(host.aggregate.promotions > 0);
    }

    #[test]
    fn nested_sharded_runs_are_byte_identical_to_sequential() {
        // The determinism contract extends to nested mode: each VM's
        // host state travels with the shard that owns its process, and
        // the host interval phase runs single-threaded in pid order, so
        // the report, event stream, and both ledgers must not depend on
        // `--sim-threads` even under a chaos plan.
        let w0 = random_workload(8, 150_000, 31);
        let w1 = seq_workload(4, 120_000);
        let w2 = random_workload(6, 180_000, 33);
        let runs: Vec<(SimReport, String)> = [1usize, 2, 3, 8]
            .iter()
            .map(|&threads| {
                let mut buf = Vec::new();
                let mut sink = JsonlSink::new(&mut buf);
                let report = tiny_sim(PolicyChoice::pcc_default())
                    .with_nested(hpage_types::NestedConfig::typical())
                    .with_faults(chaos_plan())
                    .with_ledger()
                    .with_audit()
                    .with_sim_threads(threads)
                    .run_recorded(
                        &[
                            ProcessSpec::new(&w0),
                            ProcessSpec::new(&w1),
                            ProcessSpec::new(&w2),
                        ],
                        &mut sink,
                    );
                sink.finish().expect("stream to memory");
                (report, String::from_utf8(buf).unwrap())
            })
            .collect();
        for (report, jsonl) in &runs[1..] {
            assert_eq!(report, &runs[0].0, "nested report differs");
            assert_eq!(jsonl, &runs[0].1, "nested event stream differs");
            assert!(report.audit_violations.is_empty());
        }
        assert!(runs[0].0.aggregate.host_promotions > 0);
        assert!(runs[0].1.contains("host_promote"));
    }

    #[test]
    fn nested_recording_does_not_perturb_the_simulation() {
        // The host PCC feed runs inline on both the recorded and the
        // recorder-less paths (it emits no events), so attaching a
        // recorder must not change a nested run's outcome.
        let w = random_workload(8, 250_000, 17);
        let silent = tiny_sim(PolicyChoice::pcc_default())
            .with_nested(hpage_types::NestedConfig::typical())
            .run(&[ProcessSpec::new(&w)]);
        let mut rec = MemoryRecorder::new();
        let recorded = tiny_sim(PolicyChoice::pcc_default())
            .with_nested(hpage_types::NestedConfig::typical())
            .run_recorded(&[ProcessSpec::new(&w)], &mut rec);
        assert_eq!(silent, recorded);
        // Recorded nested walks carry the nominal 2D level count (the
        // guest chain length interleaved with host walks) alongside the
        // effective (cache-filtered) references.
        let mut saw_nested_walk = false;
        for (_, e) in rec.events() {
            if let hpage_obs::Event::Walk {
                levels,
                effective_levels,
                ..
            } = e
            {
                assert!(
                    [14, 19, 24].contains(&levels),
                    "nominal 2D levels: {levels}"
                );
                assert!(effective_levels >= 1);
                saw_nested_walk = true;
            }
        }
        assert!(saw_nested_walk);
    }
}
