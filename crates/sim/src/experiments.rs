//! Experiment drivers: one function per figure of the paper's
//! evaluation. Each driver decomposes its figure into independent
//! [`Cell`]s, submits them to a [`Harness`] (which may fan them out
//! across a worker pool), and assembles the returned reports — in
//! submission order, so tables are byte-identical at any `--jobs` —
//! into structured rows; `hpage-bench`'s `repro` binary renders them.
//!
//! Every `fig*` driver has two forms: `fig*_on(&Harness, ...)` for
//! callers that own a harness (the repro binary, the determinism
//! suite), and the original `fig*(profile, ...)` signature which runs
//! on a throwaway sequential harness.

use crate::profile::SimProfile;
use crate::runner::{Cell, Harness, SharedWorkload, EXPERIMENT_SEED as SEED};
use crate::simulation::{PolicyChoice, ProcessSpec, SimReport, Simulation};
use hpage_faults::{FaultKind, FaultPlan, FaultWindow};
use hpage_obs::{Event, MemoryRecorder, Recorder, Tee};
use hpage_os::PromotionBudget;
use hpage_perf::{geomean, UtilityCurve, UtilityPoint};
use hpage_trace::{
    AnyWorkload, AppId, Dataset, Pattern, ReuseAnalyzer, SyntheticBuilder, SyntheticWorkload,
    Workload,
};
use hpage_types::{derive_seed, NestedConfig, PccPlacement, PromotionPolicyKind};
use std::sync::Arc;

fn simulation(profile: &SimProfile, policy: PolicyChoice, footprint: u64) -> Simulation {
    let sized = profile.clone().sized_for(footprint);
    let mut sim = Simulation::new(sized.system, policy);
    if let Some(n) = profile.max_accesses_per_core {
        sim = sim.with_max_accesses_per_core(n);
    }
    sim
}

/// Builds the standard single-process cell of the figure drivers. The
/// fragmentation RNG stream is derived from the experiment seed with a
/// purpose label — never the raw seed, which the workload generators
/// already consume (reusing it would correlate the "random" physical
/// fragmentation with the workload's own layout randomness).
fn cell(
    label: String,
    profile: &SimProfile,
    w: &Arc<AnyWorkload>,
    policy: PolicyChoice,
    frag_pct: u8,
    budget: PromotionBudget,
) -> Cell {
    let mut sim = simulation(profile, policy, w.footprint_bytes()).with_budget(budget);
    if frag_pct > 0 {
        sim = sim.with_fragmentation(frag_pct, derive_seed(SEED, "frag"));
    }
    Cell::new(label, sim, Arc::clone(w) as SharedWorkload)
}

fn budget_for(pct: u64, footprint: u64) -> PromotionBudget {
    if pct >= 100 {
        PromotionBudget::UNLIMITED
    } else {
        PromotionBudget::percent_of_footprint(pct, footprint)
    }
}

// ---------------------------------------------------------------------
// Fig. 1 — page-size potential and Linux THP under fragmentation
// ---------------------------------------------------------------------

/// One application's Fig. 1 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Application name.
    pub app: String,
    /// Last-level TLB miss rate with 4 KiB pages only.
    pub miss_4k: f64,
    /// Miss rate with everything backed by 2 MiB pages.
    pub miss_2m: f64,
    /// Miss rate under Linux THP with 50%-fragmented memory.
    pub miss_linux: f64,
    /// Speedup of all-2 MiB over the 4 KiB baseline.
    pub speedup_2m: f64,
    /// Speedup of Linux THP (50% frag) over the baseline.
    pub speedup_linux: f64,
}

/// Reproduces Fig. 1 on `h`: TLB miss rate and speedup for 100% 4 KiB
/// pages vs. 100% 2 MiB pages vs. Linux THP with 50% fragmented memory,
/// across the eight evaluation applications.
pub fn fig1_page_sizes_on(h: &Harness, profile: &SimProfile, apps: &[AppId]) -> Vec<Fig1Row> {
    let timing = profile.system.timing;
    let mut cells = Vec::new();
    for &app in apps {
        let w = h.workload(profile, app);
        let name = app.name();
        cells.push(cell(
            format!("fig1/{name}/base-4k"),
            profile,
            &w,
            PolicyChoice::BasePages,
            0,
            PromotionBudget::UNLIMITED,
        ));
        cells.push(cell(
            format!("fig1/{name}/ideal-2m"),
            profile,
            &w,
            PolicyChoice::IdealHuge,
            0,
            PromotionBudget::UNLIMITED,
        ));
        cells.push(cell(
            format!("fig1/{name}/linux-frag50"),
            profile,
            &w,
            PolicyChoice::LinuxThp,
            50,
            PromotionBudget::UNLIMITED,
        ));
    }
    let reports = h.run(cells);
    apps.iter()
        .zip(reports.chunks_exact(3))
        .map(|(&app, chunk)| {
            let (base, ideal, linux) = (&chunk[0], &chunk[1], &chunk[2]);
            Fig1Row {
                app: app.name().to_string(),
                miss_4k: base.aggregate.walk_ratio(),
                miss_2m: ideal.aggregate.walk_ratio(),
                miss_linux: linux.aggregate.walk_ratio(),
                speedup_2m: ideal.speedup_over(base, &timing),
                speedup_linux: linux.speedup_over(base, &timing),
            }
        })
        .collect()
}

/// [`fig1_page_sizes_on`] on a throwaway sequential harness.
pub fn fig1_page_sizes(profile: &SimProfile, apps: &[AppId]) -> Vec<Fig1Row> {
    fig1_page_sizes_on(&Harness::sequential(), profile, apps)
}

// ---------------------------------------------------------------------
// Fig. 2 — reuse-distance characterisation
// ---------------------------------------------------------------------

/// Summary of the Fig. 2 reuse-distance scatter for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Summary {
    /// Workload name.
    pub app: String,
    /// 4 KiB pages classified TLB-friendly.
    pub tlb_friendly: u64,
    /// 4 KiB pages classified HUB (the promotion candidates).
    pub hubs: u64,
    /// 4 KiB pages classified low-reuse.
    pub low_reuse: u64,
    /// Number of distinct 2 MiB regions containing HUB pages.
    pub hub_regions: u64,
    /// Sample scatter points `(reuse_4k, reuse_2m)` for HUB pages.
    pub hub_samples: Vec<(f64, f64)>,
}

/// Reproduces Fig. 2 on `h`: classifies every 4 KiB page of a BFS run
/// by its reuse distance at 4 KiB vs. 2 MiB granularity. `max_accesses`
/// bounds the analysis window.
pub fn fig2_reuse_on(
    h: &Harness,
    profile: &SimProfile,
    app: AppId,
    max_accesses: u64,
) -> Fig2Summary {
    let w = h.workload(profile, app);
    let mut analyzer = ReuseAnalyzer::new();
    for access in w.trace().take(max_accesses as usize) {
        analyzer.observe(&access);
    }
    let (tlb_friendly, hubs, low_reuse) = analyzer.class_counts();
    let hub_regions = analyzer.hub_regions().len() as u64;
    let hub_samples: Vec<(f64, f64)> = analyzer
        .profiles()
        .iter()
        .filter(|p| p.class == hpage_trace::ReuseClass::Hub)
        .filter_map(|p| Some((p.reuse_4k?, p.reuse_2m?)))
        .take(32)
        .collect();
    Fig2Summary {
        app: w.name().to_string(),
        tlb_friendly,
        hubs,
        low_reuse,
        hub_regions,
        hub_samples,
    }
}

/// [`fig2_reuse_on`] on a throwaway sequential harness.
pub fn fig2_reuse(profile: &SimProfile, app: AppId, max_accesses: u64) -> Fig2Summary {
    fig2_reuse_on(&Harness::sequential(), profile, app, max_accesses)
}

// ---------------------------------------------------------------------
// Fig. 5 — single-thread utility curves: PCC vs HawkEye vs Linux
// ---------------------------------------------------------------------

/// A `(speedup, walk_ratio)` reference point on a Fig. 5 utility plot.
pub type RefPoint = (f64, f64);

/// Reproduces Fig. 5 on `h` for one application: the speedup / PTW-rate
/// utility curves of the PCC and HawkEye across the footprint sweep,
/// plus the Linux THP (50%/90% fragmented) and max-THP reference
/// points. Returns `(curves, linux50, linux90, ideal)` where the
/// references are [`RefPoint`] `(speedup, walk_ratio)` pairs.
pub fn fig5_utility_on(
    h: &Harness,
    profile: &SimProfile,
    app: AppId,
    sweep: &[u64],
) -> (Vec<UtilityCurve>, RefPoint, RefPoint, RefPoint) {
    let timing = profile.system.timing;
    let w = h.workload(profile, app);
    let footprint = w.footprint_bytes();
    let name = app.name();

    let policies = [
        (PolicyChoice::pcc_default(), "pcc"),
        (PolicyChoice::HawkEye, "hawkeye"),
    ];
    let mut cells = vec![cell(
        format!("fig5/{name}/base-4k"),
        profile,
        &w,
        PolicyChoice::BasePages,
        0,
        PromotionBudget::UNLIMITED,
    )];
    for (policy, label) in &policies {
        for &pct in sweep.iter().filter(|&&pct| pct > 0) {
            cells.push(cell(
                format!("fig5/{name}/{label}-{pct}pct"),
                profile,
                &w,
                policy.clone(),
                0,
                budget_for(pct, footprint),
            ));
        }
    }
    cells.push(cell(
        format!("fig5/{name}/linux-frag50"),
        profile,
        &w,
        PolicyChoice::LinuxThp,
        50,
        PromotionBudget::UNLIMITED,
    ));
    cells.push(cell(
        format!("fig5/{name}/linux-frag90"),
        profile,
        &w,
        PolicyChoice::LinuxThp,
        90,
        PromotionBudget::UNLIMITED,
    ));
    cells.push(cell(
        format!("fig5/{name}/ideal-2m"),
        profile,
        &w,
        PolicyChoice::IdealHuge,
        0,
        PromotionBudget::UNLIMITED,
    ));

    let mut reports = h.run(cells).into_iter();
    let base = reports.next().expect("base cell");
    let mut curves = Vec::new();
    for (_, label) in &policies {
        let mut curve = UtilityCurve::new(app.name(), *label);
        for &pct in sweep {
            let report = if pct == 0 {
                base.clone()
            } else {
                reports.next().expect("sweep cell")
            };
            curve.points.push(UtilityPoint {
                percent: pct,
                speedup: report.speedup_over(&base, &timing),
                walk_ratio: report.aggregate.walk_ratio(),
                huge_pages_used: report.huge_pages_at_end,
            });
        }
        curves.push(curve);
    }
    let linux50 = reports.next().expect("linux50 cell");
    let linux90 = reports.next().expect("linux90 cell");
    let ideal = reports.next().expect("ideal cell");
    let point = |r: &SimReport| (r.speedup_over(&base, &timing), r.aggregate.walk_ratio());
    (curves, point(&linux50), point(&linux90), point(&ideal))
}

/// [`fig5_utility_on`] on a throwaway sequential harness.
pub fn fig5_utility(
    profile: &SimProfile,
    app: AppId,
    sweep: &[u64],
) -> (Vec<UtilityCurve>, RefPoint, RefPoint, RefPoint) {
    fig5_utility_on(&Harness::sequential(), profile, app, sweep)
}

// ---------------------------------------------------------------------
// Fig. 6 — PCC size sensitivity
// ---------------------------------------------------------------------

/// One bar of Fig. 6: an application's speedup with a given PCC size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Application name.
    pub app: String,
    /// PCC entry count (0 encodes the no-PCC baseline; `u32::MAX` the
    /// all-huge ideal).
    pub pcc_entries: u32,
    /// Speedup over the 4 KiB baseline.
    pub speedup: f64,
}

/// Reproduces Fig. 6 on `h`: sweeps the PCC size over `sizes` (the
/// paper uses 4..=1024 in powers of two) for each graph application,
/// with the promotion footprint capped at 32% as in the paper.
pub fn fig6_pcc_size_on(
    h: &Harness,
    profile: &SimProfile,
    apps: &[AppId],
    sizes: &[u32],
) -> Vec<Fig6Row> {
    let timing = profile.system.timing;
    let mut cells = Vec::new();
    for &app in apps {
        let w = h.workload(profile, app);
        let footprint = w.footprint_bytes();
        let name = app.name();
        cells.push(cell(
            format!("fig6/{name}/base-4k"),
            profile,
            &w,
            PolicyChoice::BasePages,
            0,
            PromotionBudget::UNLIMITED,
        ));
        for &entries in sizes {
            let mut p = profile.clone();
            p.system.pcc_2m = p.system.pcc_2m.with_entries(entries);
            cells.push(cell(
                format!("fig6/{name}/pcc-{entries}e"),
                &p,
                &w,
                PolicyChoice::pcc_default(),
                0,
                PromotionBudget::percent_of_footprint(32, footprint),
            ));
        }
        cells.push(cell(
            format!("fig6/{name}/ideal-2m"),
            profile,
            &w,
            PolicyChoice::IdealHuge,
            0,
            PromotionBudget::UNLIMITED,
        ));
    }
    let reports = h.run(cells);
    let mut rows = Vec::new();
    for (&app, chunk) in apps.iter().zip(reports.chunks_exact(sizes.len() + 2)) {
        let base = &chunk[0];
        rows.push(Fig6Row {
            app: app.name().to_string(),
            pcc_entries: 0,
            speedup: 1.0,
        });
        for (&entries, report) in sizes.iter().zip(&chunk[1..=sizes.len()]) {
            rows.push(Fig6Row {
                app: app.name().to_string(),
                pcc_entries: entries,
                speedup: report.speedup_over(base, &timing),
            });
        }
        rows.push(Fig6Row {
            app: app.name().to_string(),
            pcc_entries: u32::MAX,
            speedup: chunk[sizes.len() + 1].speedup_over(base, &timing),
        });
    }
    rows
}

/// [`fig6_pcc_size_on`] on a throwaway sequential harness.
pub fn fig6_pcc_size(profile: &SimProfile, apps: &[AppId], sizes: &[u32]) -> Vec<Fig6Row> {
    fig6_pcc_size_on(&Harness::sequential(), profile, apps, sizes)
}

// ---------------------------------------------------------------------
// Fig. 7 — 90% fragmentation comparison (with demotion)
// ---------------------------------------------------------------------

/// One application's Fig. 7 comparison under 90%-fragmented memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Application name.
    pub app: String,
    /// HawkEye speedup over the baseline.
    pub hawkeye: f64,
    /// Linux THP speedup.
    pub linux: f64,
    /// 128-entry PCC speedup.
    pub pcc: f64,
    /// PCC with demotion enabled.
    pub pcc_demote: f64,
}

/// Reproduces Fig. 7 on `h`: baseline/HawkEye/Linux THP/PCC/
/// PCC+demotion with `frag_pct`% fragmented memory (the paper plots
/// 90%; §5.1.1 also reports 50%).
pub fn fig7_fragmentation_on(
    h: &Harness,
    profile: &SimProfile,
    apps: &[AppId],
    frag_pct: u8,
) -> Vec<Fig7Row> {
    let timing = profile.system.timing;
    let mut cells = Vec::new();
    for &app in apps {
        let w = h.workload(profile, app);
        let name = app.name();
        cells.push(cell(
            format!("fig7/{name}/base-4k"),
            profile,
            &w,
            PolicyChoice::BasePages,
            0,
            PromotionBudget::UNLIMITED,
        ));
        for (policy, label) in [
            (PolicyChoice::HawkEye, "hawkeye"),
            (PolicyChoice::LinuxThp, "linux"),
            (PolicyChoice::pcc_default(), "pcc"),
            (
                PolicyChoice::Pcc {
                    selection: PromotionPolicyKind::HighestFrequency,
                    demotion: true,
                    bias: vec![],
                },
                "pcc-demote",
            ),
        ] {
            cells.push(cell(
                format!("fig7/{name}/{label}-frag{frag_pct}"),
                profile,
                &w,
                policy,
                frag_pct,
                PromotionBudget::UNLIMITED,
            ));
        }
    }
    let reports = h.run(cells);
    apps.iter()
        .zip(reports.chunks_exact(5))
        .map(|(&app, chunk)| {
            let base = &chunk[0];
            let speedup = |r: &SimReport| r.speedup_over(base, &timing);
            Fig7Row {
                app: app.name().to_string(),
                hawkeye: speedup(&chunk[1]),
                linux: speedup(&chunk[2]),
                pcc: speedup(&chunk[3]),
                pcc_demote: speedup(&chunk[4]),
            }
        })
        .collect()
}

/// [`fig7_fragmentation_on`] on a throwaway sequential harness.
pub fn fig7_fragmentation(profile: &SimProfile, apps: &[AppId], frag_pct: u8) -> Vec<Fig7Row> {
    fig7_fragmentation_on(&Harness::sequential(), profile, apps, frag_pct)
}

// ---------------------------------------------------------------------
// Fig. 8 — multithread OS selection policies
// ---------------------------------------------------------------------

/// One multithread utility measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Application name.
    pub app: String,
    /// Thread count (one core per thread).
    pub threads: u32,
    /// OS candidate-selection policy.
    pub policy: PromotionPolicyKind,
    /// Utility curve over the footprint sweep.
    pub curve: UtilityCurve,
    /// Speedup with everything huge (the per-thread-count ceiling).
    pub ideal_speedup: f64,
}

const FIG8_POLICIES: [PromotionPolicyKind; 2] = [
    PromotionPolicyKind::HighestFrequency,
    PromotionPolicyKind::RoundRobin,
];

/// Reproduces Fig. 8 on `h`: parallel graph workloads at each thread
/// count, comparing highest-PCC-frequency against round-robin candidate
/// selection across the per-core PCCs.
pub fn fig8_multithread_on(
    h: &Harness,
    profile: &SimProfile,
    apps: &[AppId],
    thread_counts: &[u32],
    sweep: &[u64],
) -> Vec<Fig8Row> {
    let timing = profile.system.timing;
    let mut cells = Vec::new();
    for &app in apps {
        let w = h.workload(profile, app);
        let footprint = w.footprint_bytes();
        let name = app.name();
        for &threads in thread_counts {
            cells.push(Cell::with_threads(
                format!("fig8/{name}/{threads}t/base-4k"),
                simulation(profile, PolicyChoice::BasePages, footprint),
                Arc::clone(&w) as SharedWorkload,
                threads,
            ));
            cells.push(Cell::with_threads(
                format!("fig8/{name}/{threads}t/ideal-2m"),
                simulation(profile, PolicyChoice::IdealHuge, footprint),
                Arc::clone(&w) as SharedWorkload,
                threads,
            ));
            for policy in FIG8_POLICIES {
                for &pct in sweep.iter().filter(|&&pct| pct > 0) {
                    let sim = simulation(
                        profile,
                        PolicyChoice::Pcc {
                            selection: policy,
                            demotion: false,
                            bias: vec![],
                        },
                        footprint,
                    )
                    .with_budget(budget_for(pct, footprint));
                    cells.push(Cell::with_threads(
                        format!("fig8/{name}/{threads}t/{policy}-{pct}pct"),
                        sim,
                        Arc::clone(&w) as SharedWorkload,
                        threads,
                    ));
                }
            }
        }
    }
    let mut reports = h.run(cells).into_iter();
    let mut rows = Vec::new();
    for &app in apps {
        for &threads in thread_counts {
            let base = reports.next().expect("base cell");
            let ideal = reports.next().expect("ideal cell");
            for policy in FIG8_POLICIES {
                let mut curve = UtilityCurve::new(app.name(), policy.to_string());
                for &pct in sweep {
                    let report = if pct == 0 {
                        base.clone()
                    } else {
                        reports.next().expect("sweep cell")
                    };
                    curve.points.push(UtilityPoint {
                        percent: pct,
                        speedup: report.speedup_over(&base, &timing),
                        walk_ratio: report.aggregate.walk_ratio(),
                        huge_pages_used: report.huge_pages_at_end,
                    });
                }
                rows.push(Fig8Row {
                    app: app.name().to_string(),
                    threads,
                    policy,
                    curve,
                    ideal_speedup: ideal.speedup_over(&base, &timing),
                });
            }
        }
    }
    rows
}

/// [`fig8_multithread_on`] on a throwaway sequential harness.
pub fn fig8_multithread(
    profile: &SimProfile,
    apps: &[AppId],
    thread_counts: &[u32],
    sweep: &[u64],
) -> Vec<Fig8Row> {
    fig8_multithread_on(&Harness::sequential(), profile, apps, thread_counts, sweep)
}

// ---------------------------------------------------------------------
// Fig. 9 — multiprocess studies
// ---------------------------------------------------------------------

/// Configuration of one Fig. 9 case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig9Config {
    /// First application (PR in both of the paper's studies).
    pub app_a: AppId,
    /// Second application (mcf in 9a, SSSP in 9b).
    pub app_b: AppId,
}

/// One multiprocess measurement point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// OS candidate-selection policy.
    pub policy: PromotionPolicyKind,
    /// Percent of the combined footprint backed by huge pages.
    pub percent: u64,
    /// Per-process speedups `(app_a, app_b)`.
    pub speedups: (f64, f64),
    /// Huge pages used by the whole system at this point.
    pub huge_pages: u64,
}

/// Reproduces Fig. 9 on `h`: two single-threaded applications on two
/// cores sharing physical memory, swept over the combined-footprint
/// budget under both OS selection policies. Returns the rows plus the
/// per-process ideal speedups.
pub fn fig9_multiprocess_on(
    h: &Harness,
    profile: &SimProfile,
    config: Fig9Config,
    sweep: &[u64],
) -> (Vec<Fig9Row>, (f64, f64)) {
    let timing = profile.system.timing;
    let wa = h.workload(profile, config.app_a);
    let wb = h.workload(profile, config.app_b);
    let footprint = wa.footprint_bytes() + wb.footprint_bytes();
    let pair = format!("{}+{}", config.app_a.name(), config.app_b.name());
    let procs = || {
        vec![
            (Arc::clone(&wa) as SharedWorkload, 1),
            (Arc::clone(&wb) as SharedWorkload, 1),
        ]
    };

    let mut cells = vec![
        Cell::multiprocess(
            format!("fig9/{pair}/base-4k"),
            simulation(profile, PolicyChoice::BasePages, footprint),
            procs(),
        ),
        Cell::multiprocess(
            format!("fig9/{pair}/ideal-2m"),
            simulation(profile, PolicyChoice::IdealHuge, footprint),
            procs(),
        ),
    ];
    for policy in FIG8_POLICIES {
        for &pct in sweep.iter().filter(|&&pct| pct > 0) {
            let sim = simulation(
                profile,
                PolicyChoice::Pcc {
                    selection: policy,
                    demotion: false,
                    bias: vec![],
                },
                footprint,
            )
            .with_budget(budget_for(pct, footprint));
            cells.push(Cell::multiprocess(
                format!("fig9/{pair}/{policy}-{pct}pct"),
                sim,
                procs(),
            ));
        }
    }

    let mut reports = h.run(cells).into_iter();
    let base = reports.next().expect("base cell");
    let ideal = reports.next().expect("ideal cell");
    let ideal_speedups = (
        ideal.process_speedup_over(&base, 0, &timing),
        ideal.process_speedup_over(&base, 1, &timing),
    );
    let mut rows = Vec::new();
    for policy in FIG8_POLICIES {
        for &pct in sweep {
            let report = if pct == 0 {
                base.clone()
            } else {
                reports.next().expect("sweep cell")
            };
            rows.push(Fig9Row {
                policy,
                percent: pct,
                speedups: (
                    report.process_speedup_over(&base, 0, &timing),
                    report.process_speedup_over(&base, 1, &timing),
                ),
                huge_pages: report.huge_pages_at_end,
            });
        }
    }
    (rows, ideal_speedups)
}

/// [`fig9_multiprocess_on`] on a throwaway sequential harness.
pub fn fig9_multiprocess(
    profile: &SimProfile,
    config: Fig9Config,
    sweep: &[u64],
) -> (Vec<Fig9Row>, (f64, f64)) {
    fig9_multiprocess_on(&Harness::sequential(), profile, config, sweep)
}

/// Geomean speedup over a set of Fig. 1 rows (convenience for the
/// paper's "geomean 1.3×" summary).
pub fn fig1_geomean_2m(rows: &[Fig1Row]) -> Option<f64> {
    geomean(&rows.iter().map(|r| r.speedup_2m).collect::<Vec<_>>())
}

// ---------------------------------------------------------------------
// Dataset sweep (Table 1's inputs; the paper reports the geomean of
// DBG-sorted and unsorted variants of each network)
// ---------------------------------------------------------------------

/// One (app, dataset, variant) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// Application name.
    pub app: String,
    /// Dataset name.
    pub dataset: String,
    /// Whether the graph was DBG-sorted.
    pub dbg_sorted: bool,
    /// Baseline PTW rate.
    pub base_walk_ratio: f64,
    /// PCC speedup at a 4% footprint budget.
    pub pcc_speedup_4pct: f64,
    /// All-THP ideal speedup.
    pub ideal_speedup: f64,
}

/// Runs the graph kernels across all three Table 1 networks in sorted
/// and unsorted variants (6 datasets per kernel, as in §4) and reports
/// the PCC's 4%-budget speedup against the ideal. Runs on `h`.
pub fn dataset_sweep_on(h: &Harness, profile: &SimProfile, apps: &[AppId]) -> Vec<DatasetRow> {
    let timing = profile.system.timing;
    let mut cells = Vec::new();
    let mut combos = Vec::new();
    for &app in apps {
        for dataset in Dataset::ALL {
            for dbg_sorted in [false, true] {
                let mut scale = profile.workloads;
                scale.dbg_sorted = dbg_sorted;
                let w = h.cache().get_parts(app, dataset, scale, SEED);
                let footprint = w.footprint_bytes();
                let tag = format!(
                    "datasets/{}/{}{}",
                    app.name(),
                    dataset.name(),
                    if dbg_sorted { "-dbg" } else { "" }
                );
                cells.push(cell(
                    format!("{tag}/base-4k"),
                    profile,
                    &w,
                    PolicyChoice::BasePages,
                    0,
                    PromotionBudget::UNLIMITED,
                ));
                cells.push(cell(
                    format!("{tag}/pcc-4pct"),
                    profile,
                    &w,
                    PolicyChoice::pcc_default(),
                    0,
                    PromotionBudget::percent_of_footprint(4, footprint),
                ));
                cells.push(cell(
                    format!("{tag}/ideal-2m"),
                    profile,
                    &w,
                    PolicyChoice::IdealHuge,
                    0,
                    PromotionBudget::UNLIMITED,
                ));
                combos.push((app, dataset, dbg_sorted));
            }
        }
    }
    let reports = h.run(cells);
    combos
        .iter()
        .zip(reports.chunks_exact(3))
        .map(|(&(app, dataset, dbg_sorted), chunk)| {
            let (base, pcc, ideal) = (&chunk[0], &chunk[1], &chunk[2]);
            DatasetRow {
                app: app.name().to_string(),
                dataset: dataset.name().to_string(),
                dbg_sorted,
                base_walk_ratio: base.aggregate.walk_ratio(),
                pcc_speedup_4pct: pcc.speedup_over(base, &timing),
                ideal_speedup: ideal.speedup_over(base, &timing),
            }
        })
        .collect()
}

/// [`dataset_sweep_on`] on a throwaway sequential harness.
pub fn dataset_sweep(profile: &SimProfile, apps: &[AppId]) -> Vec<DatasetRow> {
    dataset_sweep_on(&Harness::sequential(), profile, apps)
}

/// Geomean of the PCC 4%-budget speedups over a set of dataset rows
/// (the paper's per-kernel summary statistic).
pub fn dataset_geomean(rows: &[DatasetRow]) -> Option<f64> {
    geomean(&rows.iter().map(|r| r.pcc_speedup_4pct).collect::<Vec<_>>())
}

// ---------------------------------------------------------------------
// Design-choice ablations (DESIGN.md's ablation targets)
// ---------------------------------------------------------------------

/// One ablation variant's end-to-end quality.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Speedup over the 4 KiB baseline.
    pub speedup: f64,
    /// Residual PTW rate.
    pub walk_ratio: f64,
    /// Promotions performed.
    pub promotions: u64,
}

/// Quantifies the PCC's design choices on one application: the
/// cold-miss access-bit filter, counter decay, the replacement policy,
/// and the §5.4.1 PWC alternative (which shortens walks but promotes
/// nothing). Runs on `h`.
pub fn ablation_design_choices_on(
    h: &Harness,
    profile: &SimProfile,
    app: AppId,
) -> Vec<AblationRow> {
    use hpage_pcc::ReplacementPolicy;
    let timing = profile.system.timing;
    let w = h.workload(profile, app);
    let footprint = w.footprint_bytes();
    let name = app.name();
    let plain = |tag: &str, p: &SimProfile, policy: PolicyChoice| {
        cell(
            format!("ablation/{name}/{tag}"),
            p,
            &w,
            policy,
            0,
            PromotionBudget::UNLIMITED,
        )
    };

    let mut cells = vec![
        plain("base-4k", profile, PolicyChoice::BasePages),
        plain("pcc-paper", profile, PolicyChoice::pcc_default()),
    ];
    // No cold-miss filter.
    let mut p = profile.clone();
    p.system.pcc_2m.access_bit_filter = false;
    cells.push(plain("no-cold-filter", &p, PolicyChoice::pcc_default()));
    // No decay.
    let mut p = profile.clone();
    p.system.pcc_2m.decay_on_saturation = false;
    cells.push(plain("no-decay", &p, PolicyChoice::pcc_default()));
    // Pure LRU replacement.
    cells.push(Cell::new(
        format!("ablation/{name}/pure-lru"),
        simulation(profile, PolicyChoice::pcc_default(), footprint)
            .with_replacement(ReplacementPolicy::Lru),
        Arc::clone(&w) as SharedWorkload,
    ));
    // PWC instead of a PCC: walks get cheaper, misses stay. The PWC
    // geometry scales with the profile's L2 TLB so scaled-down runs see
    // realistic structure-cache pressure (see PwcConfig::scaled_to_tlb).
    let mut pwc = profile.clone();
    pwc.system.pwc = Some(hpage_types::PwcConfig::scaled_to_tlb_clamped(
        profile.system.tlb.l2.entries,
    ));
    cells.push(plain("pwc-only", &pwc, PolicyChoice::BasePages));
    // PWC *and* PCC together (complementary, as §5.4.1 concludes).
    cells.push(plain("pwc-plus-pcc", &pwc, PolicyChoice::pcc_default()));
    // §5.4.1's other alternative: an L2-TLB victim cache as the
    // candidate source, small and PCC-sized.
    cells.push(plain(
        "victim-8",
        profile,
        PolicyChoice::VictimCache { entries: 8 },
    ));
    cells.push(plain(
        "victim-128",
        profile,
        PolicyChoice::VictimCache { entries: 128 },
    ));
    // Cache-model cross-check: with a physically-indexed data cache and
    // issue-only base cost, the PCC's relative benefit persists (the
    // timing model's constant-base-cost simplification is not load-
    // bearing for the paper's conclusions).
    let mut cached = profile.clone();
    cached.system.timing = cached.system.timing.with_cache_model();
    for (tag, policy) in [
        ("cached-base", PolicyChoice::BasePages),
        ("cached-pcc", PolicyChoice::pcc_default()),
    ] {
        cells.push(Cell::new(
            format!("ablation/{name}/{tag}"),
            simulation(&cached, policy, footprint)
                .with_cache(hpage_cache::CacheConfig::typical_per_core()),
            Arc::clone(&w) as SharedWorkload,
        ));
    }

    let reports = h.run(cells);
    let base = &reports[0];
    let mut rows = Vec::new();
    let mut push = |label: &str, report: &SimReport| {
        rows.push(AblationRow {
            variant: label.to_string(),
            speedup: report.speedup_over(base, &timing),
            walk_ratio: report.aggregate.walk_ratio(),
            promotions: report.aggregate.promotions,
        });
    };
    push("pcc (paper)", &reports[1]);
    push("no cold-miss filter", &reports[2]);
    push("no counter decay", &reports[3]);
    push("pure-LRU replacement", &reports[4]);
    push("PWC only (no promotion)", &reports[5]);
    push("PWC + PCC", &reports[6]);
    push("victim cache (8 entries)", &reports[7]);
    push("victim cache (128 entries)", &reports[8]);
    let cached_base = &reports[9];
    let cached_pcc = &reports[10];
    rows.push(AblationRow {
        variant: "pcc (with cache model)".to_string(),
        speedup: cached_pcc.speedup_over(cached_base, &cached.system.timing),
        walk_ratio: cached_pcc.aggregate.walk_ratio(),
        promotions: cached_pcc.aggregate.promotions,
    });
    rows
}

/// [`ablation_design_choices_on`] on a throwaway sequential harness.
pub fn ablation_design_choices(profile: &SimProfile, app: AppId) -> Vec<AblationRow> {
    ablation_design_choices_on(&Harness::sequential(), profile, app)
}

// ---------------------------------------------------------------------
// Consolidation — fleet-scale multi-tenant fairness under churn
// ---------------------------------------------------------------------

/// Configuration of a consolidation run: the paper's §5.3 multiprocess
/// study pushed to fleet scale — tens of co-located tenants (one core
/// each) contending for one PCC-driven promotion pipeline while a churn
/// plan fragments memory, storms the TLBs, and resets the PCCs mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsolidationConfig {
    /// Number of co-located tenants, one single-threaded process each.
    pub tenants: usize,
    /// Accesses issued by a full-length tenant. Streaming and
    /// pointer-chase tenants run shorter traces and drain early, so the
    /// machine sees deterministic tenant churn, not a fixed population.
    pub accesses_per_tenant: u64,
    /// Worker threads for the sharded simulation loop
    /// ([`Simulation::with_sim_threads`]); results are byte-identical
    /// at any value.
    pub sim_threads: usize,
}

impl ConsolidationConfig {
    /// Sizes a run for `profile`: each full-length tenant covers about
    /// four promotion intervals, capped so paper-scale intervals stay
    /// tractable.
    pub fn for_profile(profile: &SimProfile, tenants: usize, sim_threads: usize) -> Self {
        ConsolidationConfig {
            tenants,
            accesses_per_tenant: profile
                .system
                .promotion_interval_accesses
                .saturating_mul(4)
                .min(1_000_000),
            sim_threads,
        }
    }
}

/// One tenant's outcome in a consolidation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsolidationTenantRow {
    /// Tenant label (`t07-zipf`, ...).
    pub tenant: String,
    /// Workload shape this tenant runs.
    pub mix: &'static str,
    /// Accesses the tenant issued.
    pub accesses: u64,
    /// Huge-page promotions attributed to the tenant.
    pub promotions: u64,
    /// The tenant's residual page-table-walk rate.
    pub walk_ratio: f64,
    /// Page faults (base + huge) the tenant took.
    pub faults: u64,
}

/// Everything measured by one consolidation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsolidationReport {
    /// Tenant count.
    pub tenants: usize,
    /// Worker threads the run used.
    pub sim_threads: usize,
    /// Policy label of the underlying simulation.
    pub policy: String,
    /// Per-tenant outcomes, in tenant order.
    pub rows: Vec<ConsolidationTenantRow>,
    /// Jain's fairness index over per-tenant promotion shares:
    /// `(Σx)² / (n·Σx²)`, 1.0 when every tenant gets the same share,
    /// `1/n` when one tenant monopolizes the promotion budget. Defined
    /// as 1.0 when nothing was promoted at all.
    pub fairness_index: f64,
    /// Total promotions across all tenants.
    pub total_promotions: u64,
    /// Promotion attempts that failed for lack of frames.
    pub promotion_failures: u64,
    /// 2 MiB frames resident at run end.
    pub huge_pages_at_end: u64,
    /// TLB shootdowns broadcast by promotions/demotions.
    pub shootdowns: u64,
    /// Shootdown-storm flushes recorded (one event per core per spiked
    /// interval).
    pub storm_flushes: u64,
    /// Total TLB translations dropped by storm flushes.
    pub storm_entries_flushed: u64,
    /// Largest single-core storm flush.
    pub storm_entries_max: u64,
}

/// The four tenant shapes a consolidation mix cycles through. Footprints
/// and trace lengths differ per shape so the machine sees heterogeneous
/// demand and deterministic churn as short tenants drain.
fn consolidation_tenant(i: usize, accesses: u64) -> (SyntheticWorkload, &'static str, u64) {
    let (mix, mb, count, pattern, writes) = match i % 4 {
        0 => {
            let count = accesses;
            (
                "zipf",
                8u64,
                count,
                Pattern::Zipf {
                    count,
                    exponent: 0.9,
                },
                10,
            )
        }
        1 => {
            let count = accesses * 3 / 4;
            (
                "stream",
                6,
                count,
                Pattern::Sequential { stride: 1, count },
                20,
            )
        }
        2 => {
            let count = accesses;
            ("uniform", 8, count, Pattern::UniformRandom { count }, 0)
        }
        _ => {
            let count = accesses / 2;
            ("chase", 4, count, Pattern::PointerChase { count }, 0)
        }
    };
    let name = format!("t{i:02}-{mix}");
    let seed = derive_seed(SEED, &format!("consolidation/{i}"));
    let mut b = SyntheticBuilder::new(name, seed);
    let arr = b.array(8, (mb << 20) / 8);
    b.phase(arr, pattern, writes);
    (b.build(), mix, count)
}

/// The churn plan of a consolidation run, spread over `intervals`:
/// a fragmentation shock at 1/4, a shootdown spike at 1/2, a compaction
/// stall at 5/8, a PCC reset at 3/4, and a second spike at 7/8.
fn consolidation_churn(intervals: u64) -> FaultPlan {
    let at = |num: u64, den: u64| (intervals * num / den).max(1);
    let w = |kind, num, den, duration| FaultWindow {
        kind,
        at: at(num, den),
        duration,
    };
    FaultPlan::new(
        "consolidation-churn",
        vec![
            w(
                FaultKind::FragmentationShock {
                    percent: 40,
                    seed: derive_seed(SEED, "consolidation-shock"),
                },
                1,
                4,
                1,
            ),
            w(FaultKind::ShootdownSpike, 1, 2, 1),
            w(FaultKind::CompactionStall, 5, 8, 2),
            w(FaultKind::PccReset, 3, 4, 1),
            w(FaultKind::ShootdownSpike, 7, 8, 1),
        ],
    )
    .expect("static plan is valid")
}

/// Runs the consolidation scenario: `cfg.tenants` mixed synthetic
/// tenants under the PCC policy and the churn plan, sharded across
/// `cfg.sim_threads` workers. Events stream to `recorder` (pass a
/// telemetry recorder for counters/histograms, or
/// [`hpage_obs::NullRecorder`]); storm metrics and the Jain fairness
/// index over per-tenant promotion shares are computed here either way.
pub fn consolidation_on<R: Recorder>(
    profile: &SimProfile,
    cfg: &ConsolidationConfig,
    recorder: &mut R,
) -> ConsolidationReport {
    assert!(cfg.tenants >= 2, "consolidation needs at least two tenants");
    let tenants: Vec<(SyntheticWorkload, &'static str, u64)> = (0..cfg.tenants)
        .map(|i| consolidation_tenant(i, cfg.accesses_per_tenant))
        .collect();
    let footprint: u64 = tenants.iter().map(|(w, _, _)| w.footprint_bytes()).sum();
    let total: u64 = tenants.iter().map(|&(_, _, n)| n).sum();
    let sized = profile.clone().sized_for(footprint);
    let intervals = total / sized.system.promotion_interval_accesses;
    let sim = Simulation::new(sized.system, PolicyChoice::pcc_default())
        .with_faults(consolidation_churn(intervals))
        .with_sim_threads(cfg.sim_threads);
    let specs: Vec<ProcessSpec<'_>> = tenants
        .iter()
        .map(|(w, _, _)| ProcessSpec::new(w as &dyn Workload))
        .collect();

    let mut events = MemoryRecorder::new();
    let report = sim.run_recorded(&specs, &mut Tee(recorder, &mut events));

    let rows: Vec<ConsolidationTenantRow> = tenants
        .iter()
        .zip(&report.per_process)
        .map(|((w, mix, _), c)| ConsolidationTenantRow {
            tenant: w.name().to_string(),
            mix,
            accesses: c.accesses,
            promotions: c.promotions,
            walk_ratio: c.walk_ratio(),
            faults: c.faults_base + c.faults_huge,
        })
        .collect();
    let sum: f64 = rows.iter().map(|r| r.promotions as f64).sum();
    let sum_sq: f64 = rows.iter().map(|r| (r.promotions as f64).powi(2)).sum();
    let fairness_index = if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (rows.len() as f64 * sum_sq)
    };
    let (mut storm_flushes, mut storm_entries_flushed, mut storm_entries_max) = (0, 0, 0);
    for (_, event) in events.events() {
        if let Event::ShootdownStorm {
            entries_flushed, ..
        } = event
        {
            storm_flushes += 1;
            storm_entries_flushed += entries_flushed;
            storm_entries_max = storm_entries_max.max(entries_flushed);
        }
    }
    ConsolidationReport {
        tenants: cfg.tenants,
        sim_threads: cfg.sim_threads,
        policy: report.policy.clone(),
        rows,
        fairness_index,
        total_promotions: report.aggregate.promotions,
        promotion_failures: report.promotion_failures,
        huge_pages_at_end: report.huge_pages_at_end,
        shootdowns: report.aggregate.shootdowns,
        storm_flushes,
        storm_entries_flushed,
        storm_entries_max,
    }
}

// ---------------------------------------------------------------------
// Nested (2D) virtualization: the PCC-placement ablation
// ---------------------------------------------------------------------

/// Sizing knobs for the virtualization ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtConfig {
    /// Accesses issued by a full-length VM (short-trace shapes drain
    /// earlier, mirroring the consolidation mix).
    pub accesses_per_vm: u64,
    /// Worker threads for the sharded simulation loop; results are
    /// byte-identical at any value.
    pub sim_threads: usize,
}

impl VirtConfig {
    /// Sizes a run for `profile`: each full-length VM covers about four
    /// promotion intervals, capped so paper-scale intervals stay
    /// tractable.
    pub fn for_profile(profile: &SimProfile, sim_threads: usize) -> Self {
        VirtConfig {
            accesses_per_vm: profile
                .system
                .promotion_interval_accesses
                .saturating_mul(4)
                .min(1_000_000),
            sim_threads,
        }
    }
}

/// One VM's outcome under one PCC placement.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtVmRow {
    /// VM label (`vm0-zipf`, ...).
    pub vm: String,
    /// Workload shape this VM runs.
    pub mix: &'static str,
    /// Which dimension(s) ran a PCC-guided promotion policy.
    pub placement: PccPlacement,
    /// Mean effective references per 2D walk (1 ≤ mean ≤ 24).
    pub mean_refs: f64,
    /// The VM's residual page-table-walk rate.
    pub walk_ratio: f64,
    /// 2D page-table references per memory access
    /// (`walk_ratio · mean_refs`) — the walk-cost metric the ablation
    /// compares on. Guest promotion lowers it by eliminating walks,
    /// host promotion by cheapening the walks that remain; per-walk
    /// means alone would punish guest reach for leaving only the
    /// expensive cold tail behind.
    pub refs_per_access: f64,
    /// Guest-dimension promotions attributed to the VM.
    pub promotions: u64,
    /// Host-dimension promotions performed for the VM.
    pub host_promotions: u64,
}

/// One placement's summary over all VMs.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtPlacementRow {
    /// Which dimension(s) ran a PCC-guided promotion policy.
    pub placement: PccPlacement,
    /// Geomean of the per-VM mean references per walk.
    pub geomean_refs: f64,
    /// Geomean of the per-VM [`VirtVmRow::refs_per_access`] — the
    /// ablation's headline walk-cost number (lower is better).
    pub geomean_cost: f64,
    /// Policy label of the underlying simulation (carries the
    /// `+nested-<placement>` suffix).
    pub policy: String,
    /// Guest-dimension promotions summed over the VMs.
    pub guest_promotions: u64,
    /// Host-dimension promotions summed over the VMs.
    pub host_promotions: u64,
    /// Nested-TLB/host-structure shootdowns from host promotions.
    pub host_shootdowns: u64,
}

/// Everything measured by the virtualization ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtReport {
    /// Shard count every placement's simulation ran with.
    pub sim_threads: usize,
    /// Per-(placement, VM) outcomes: placements in [`PccPlacement::ALL`]
    /// order, VMs in pid order within each.
    pub vm_rows: Vec<VirtVmRow>,
    /// Placement summaries, in [`PccPlacement::ALL`] order.
    pub placements: Vec<VirtPlacementRow>,
}

impl VirtReport {
    /// The placement summary for `placement`.
    ///
    /// # Panics
    ///
    /// Panics if the report does not contain the placement (it always
    /// contains all of [`PccPlacement::ALL`]).
    pub fn placement(&self, placement: PccPlacement) -> &VirtPlacementRow {
        self.placements
            .iter()
            .find(|r| r.placement == placement)
            .expect("report covers every placement")
    }
}

/// The four VM shapes of the virtualization mix — the consolidation
/// shapes, reseeded on an independent `virt/` purpose stream so the two
/// scenarios' layouts never correlate.
fn virt_vm(i: usize, accesses: u64) -> (SyntheticWorkload, &'static str) {
    let (mix, mb, pattern, writes) = match i % 4 {
        0 => (
            "zipf",
            8u64,
            Pattern::Zipf {
                count: accesses,
                exponent: 0.9,
            },
            10,
        ),
        1 => (
            "stream",
            6,
            Pattern::Sequential {
                stride: 1,
                count: accesses * 3 / 4,
            },
            20,
        ),
        2 => ("uniform", 8, Pattern::UniformRandom { count: accesses }, 0),
        _ => (
            "chase",
            4,
            Pattern::PointerChase {
                count: accesses / 2,
            },
            0,
        ),
    };
    let name = format!("vm{i}-{mix}");
    let seed = derive_seed(SEED, &format!("virt/{i}"));
    let mut b = SyntheticBuilder::new(name, seed);
    let arr = b.array(8, (mb << 20) / 8);
    b.phase(arr, pattern, writes);
    (b.build(), mix)
}

/// Runs the virtualization ablation: four mixed VMs co-located under
/// nested (2D) translation, once per PCC placement (`guest`, `host`,
/// `both`, `none`). The guest dimension runs the paper's PCC policy
/// when the placement enables it (base pages otherwise); the host
/// dimension is driven entirely by the placement. One cell per
/// placement goes to `h`, and rows assemble in submission order, so the
/// table is byte-identical at any `--jobs` and any `--sim-threads`.
pub fn virt_on(h: &Harness, profile: &SimProfile, cfg: &VirtConfig) -> VirtReport {
    let vms: Vec<(SyntheticWorkload, &'static str)> =
        (0..4).map(|i| virt_vm(i, cfg.accesses_per_vm)).collect();
    let footprint: u64 = vms.iter().map(|(w, _)| w.footprint_bytes()).sum();
    let shared: Vec<SharedWorkload> = vms
        .iter()
        .map(|(w, _)| Arc::new(w.clone()) as SharedWorkload)
        .collect();
    let cells: Vec<Cell> = PccPlacement::ALL
        .iter()
        .map(|&placement| {
            let guest_policy = if placement.guest_enabled() {
                PolicyChoice::pcc_default()
            } else {
                PolicyChoice::BasePages
            };
            let sim = simulation(profile, guest_policy, footprint)
                .with_nested(NestedConfig::typical().with_placement(placement))
                .with_sim_threads(cfg.sim_threads);
            Cell::multiprocess(
                format!("virt/4vm/{placement}"),
                sim,
                shared.iter().map(|w| (Arc::clone(w), 1)).collect(),
            )
        })
        .collect();
    let reports = h.run(cells);

    let mut vm_rows = Vec::new();
    let mut placements = Vec::new();
    for (&placement, report) in PccPlacement::ALL.iter().zip(&reports) {
        let mut means = Vec::new();
        let mut costs = Vec::new();
        for ((w, mix), c) in vms.iter().zip(&report.per_process) {
            let mean_refs = c.walk_levels as f64 / c.walks.max(1) as f64;
            let refs_per_access = c.walk_ratio() * mean_refs;
            means.push(mean_refs);
            costs.push(refs_per_access);
            vm_rows.push(VirtVmRow {
                vm: w.name().to_string(),
                mix,
                placement,
                mean_refs,
                walk_ratio: c.walk_ratio(),
                refs_per_access,
                promotions: c.promotions,
                host_promotions: c.host_promotions,
            });
        }
        placements.push(VirtPlacementRow {
            placement,
            geomean_refs: geomean(&means).expect("four VMs, all walking"),
            geomean_cost: geomean(&costs).expect("four VMs, all walking"),
            policy: report.policy.clone(),
            guest_promotions: report.aggregate.promotions,
            host_promotions: report.aggregate.host_promotions,
            host_shootdowns: report.aggregate.host_shootdowns,
        });
    }
    VirtReport {
        sim_threads: cfg.sim_threads,
        vm_rows,
        placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::ProcessSpec;

    fn profile() -> SimProfile {
        let mut p = SimProfile::test();
        p.max_accesses_per_core = Some(1_500_000);
        p
    }

    #[test]
    fn virt_ablation_both_beats_single_placements() {
        // The FHPM conclusion the ablation reproduces: PCCs in both
        // dimensions beat either dimension alone on geomean 2D walk
        // cost, and every placement beats running none.
        let p = profile();
        let cfg = VirtConfig::for_profile(&p, 1);
        let r = virt_on(&Harness::sequential(), &p, &cfg);
        assert_eq!(r.vm_rows.len(), 16, "4 placements x 4 VMs");
        for row in &r.vm_rows {
            assert!(
                (1.0..=24.0).contains(&row.mean_refs),
                "{}/{}: mean 2D references {} out of range",
                row.placement,
                row.vm,
                row.mean_refs
            );
        }
        let both = r.placement(PccPlacement::Both);
        let guest = r.placement(PccPlacement::Guest);
        let host = r.placement(PccPlacement::Host);
        let none = r.placement(PccPlacement::None);
        assert!(
            both.geomean_cost < guest.geomean_cost,
            "both ({:.4}) must beat guest-only ({:.4})",
            both.geomean_cost,
            guest.geomean_cost
        );
        assert!(
            both.geomean_cost < host.geomean_cost,
            "both ({:.4}) must beat host-only ({:.4})",
            both.geomean_cost,
            host.geomean_cost
        );
        assert!(guest.geomean_cost < none.geomean_cost);
        assert!(host.geomean_cost < none.geomean_cost);
        // Host promotion cheapens the walks that remain; per-walk means
        // capture that dimension alone.
        assert!(host.geomean_refs < none.geomean_refs);
        // Placement gates each dimension's promotion engine.
        assert!(both.guest_promotions > 0 && both.host_promotions > 0);
        assert!(guest.host_promotions == 0 && guest.guest_promotions > 0);
        assert!(host.guest_promotions == 0 && host.host_promotions > 0);
        assert!(none.guest_promotions == 0 && none.host_promotions == 0);
        assert!(both.policy.ends_with("+nested-both"));
        // And the ablation reproduces byte-for-byte across both axes of
        // parallelism: the harness job pool and the sharded sim loop.
        let par = virt_on(&Harness::new(8), &p, &cfg);
        assert_eq!(r, par, "virt rows must not depend on --jobs");
        let sharded = virt_on(
            &Harness::sequential(),
            &p,
            &VirtConfig {
                sim_threads: 8,
                ..cfg
            },
        );
        assert_eq!(r.vm_rows, sharded.vm_rows, "--sim-threads changes nothing");
        assert_eq!(
            r.placements
                .iter()
                .map(|row| (row.placement, row.geomean_cost, row.policy.clone()))
                .collect::<Vec<_>>(),
            sharded
                .placements
                .iter()
                .map(|row| (row.placement, row.geomean_cost, row.policy.clone()))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn pwc_mean_references_lands_in_paper_band_on_fig1_suite() {
        // §5.4.1 audit: averaged over the fig1 suite, a PWC sized in
        // proportion to the profile's TLB references 1.1–1.4 page-table
        // levels per walk — the band the paper quotes for effective
        // PWCs. (A full-size PWC against scaled-down footprints
        // degenerates to a perfect oracle: every app pins at ~1.0.)
        let base = profile();
        let mut means = Vec::new();
        for app in AppId::ALL {
            let w = hpage_trace::instantiate(app, Dataset::Kronecker, base.workloads, 0xC0FFEE);
            let mut p = base.clone().sized_for(w.footprint_bytes());
            p.system.pwc = Some(hpage_types::PwcConfig::scaled_to_tlb_clamped(
                p.system.tlb.l2.entries,
            ));
            let r = Simulation::new(p.system.clone(), PolicyChoice::BasePages)
                .with_max_accesses_per_core(1_000_000)
                .run(&[ProcessSpec::new(&w)]);
            assert!(r.aggregate.walks > 0, "{app:?} produced no walks");
            means.push(r.aggregate.walk_levels as f64 / r.aggregate.walks as f64);
        }
        let suite_mean = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (1.1..=1.4).contains(&suite_mean),
            "fig1-suite mean references {suite_mean:.3} outside paper band (per-app: {means:?})"
        );
    }

    #[test]
    fn fig1_shapes_hold_for_extremes() {
        let rows = fig1_page_sizes(&profile(), &[AppId::Canneal, AppId::Dedup]);
        assert_eq!(rows.len(), 2);
        let canneal = &rows[0];
        let dedup = &rows[1];
        // canneal (random over 96MB) is TLB-hostile; 2MB pages help a lot.
        assert!(
            canneal.miss_4k > 0.05,
            "canneal miss {:.3}",
            canneal.miss_4k
        );
        assert!(canneal.miss_2m < canneal.miss_4k / 2.0);
        assert!(canneal.speedup_2m > 1.1);
        // dedup is TLB-friendly; huge pages change little.
        assert!(dedup.miss_4k < 0.02, "dedup miss {:.3}", dedup.miss_4k);
        assert!(dedup.speedup_2m < canneal.speedup_2m);
    }

    #[test]
    fn fig2_bfs_finds_hubs() {
        let s = fig2_reuse(&profile(), AppId::Bfs, 300_000);
        assert!(s.tlb_friendly + s.hubs + s.low_reuse > 0);
        assert!(s.app.starts_with("BFS"));
    }

    #[test]
    fn fig5_pcc_beats_hawkeye_and_curve_rises() {
        let (curves, linux50, _linux90, ideal) =
            fig5_utility(&profile(), AppId::Canneal, &[0, 8, 100]);
        let pcc = &curves[0];
        let hawkeye = &curves[1];
        assert_eq!(pcc.policy, "pcc");
        // Curves start at 1.0 and rise.
        assert!((pcc.speedup_at(0).unwrap() - 1.0).abs() < 1e-9);
        assert!(pcc.speedup_at(100).unwrap() > 1.05);
        // PCC at the full sweep is at least as good as HawkEye (it
        // promotes far more candidates per interval).
        assert!(
            pcc.speedup_at(8).unwrap() >= hawkeye.speedup_at(8).unwrap() - 0.02,
            "pcc {:?} vs hawkeye {:?}",
            pcc.speedup_at(8),
            hawkeye.speedup_at(8)
        );
        // Ideal bounds everything (within noise of promotion overheads).
        assert!(ideal.0 >= pcc.speedup_at(100).unwrap() - 0.05);
        // Linux at 50% fragmentation is below ideal.
        assert!(linux50.0 <= ideal.0 + 1e-9);
    }

    #[test]
    fn fig6_more_entries_never_much_worse() {
        let rows = fig6_pcc_size(&profile(), &[AppId::Canneal], &[4, 64]);
        // rows: baseline(0), 4, 64, ideal(MAX)
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].pcc_entries, 0);
        let s4 = rows[1].speedup;
        let s64 = rows[2].speedup;
        assert!(s64 >= s4 - 0.03, "64-entry {s64} vs 4-entry {s4}");
        assert_eq!(rows[3].pcc_entries, u32::MAX);
    }

    #[test]
    fn fig7_pcc_beats_linux_under_fragmentation() {
        // omnetpp's Zipf skew is where candidate *selection* matters:
        // with only 10% of blocks huge-capable, promoting the hot head
        // beats Linux's first-touch greed.
        let rows = fig7_fragmentation(&profile(), &[AppId::Omnetpp], 90);
        let r = &rows[0];
        assert!(
            r.pcc >= r.linux - 0.01,
            "pcc {:.3} should beat linux {:.3} at 90% frag",
            r.pcc,
            r.linux
        );
        // At test scale both scanners cover the whole (small) footprint,
        // so PCC vs HawkEye is within noise here; the strict ordering the
        // paper reports emerges at bench scale, where HawkEye's 4096-page
        // scan budget starves it (asserted in the repro harness).
        assert!(
            r.pcc >= r.hawkeye - 0.05,
            "pcc {:.3} vs hawkeye {:.3}",
            r.pcc,
            r.hawkeye
        );
        assert!(r.pcc_demote >= r.pcc - 0.05);
    }

    #[test]
    fn fig8_runs_both_policies() {
        let rows = fig8_multithread(&profile(), &[AppId::Canneal], &[2], &[0, 8]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 2);
        assert!(rows[0].ideal_speedup >= 1.0);
        assert_ne!(rows[0].policy, rows[1].policy);
        for r in &rows {
            assert!(r.curve.speedup_at(8).unwrap() >= 0.95);
        }
    }

    #[test]
    fn fig9_tlb_sensitive_process_gains_more() {
        let cfg = Fig9Config {
            app_a: AppId::Omnetpp, // TLB-hostile
            app_b: AppId::Dedup,   // TLB-friendly
        };
        let (rows, ideal) = fig9_multiprocess(&profile(), cfg, &[0, 100]);
        assert_eq!(rows.len(), 4);
        // At the full sweep under highest-frequency, omnetpp speeds up
        // while dedup stays roughly flat (the paper's mcf analogue).
        let hf_full = rows
            .iter()
            .find(|r| r.policy == PromotionPolicyKind::HighestFrequency && r.percent == 100)
            .unwrap();
        assert!(hf_full.speedups.0 > 1.03, "omnetpp {:?}", hf_full.speedups);
        assert!(
            (hf_full.speedups.1 - 1.0).abs() < 0.08,
            "dedup {:?}",
            hf_full.speedups
        );
        assert!(ideal.0 > ideal.1);
        assert!(hf_full.huge_pages > 0);
    }

    #[test]
    fn dataset_sweep_covers_variants() {
        let mut p = profile();
        p.max_accesses_per_core = Some(300_000);
        p.workloads.graph_scale = 12;
        let rows = dataset_sweep(&p, &[AppId::Bfs]);
        assert_eq!(rows.len(), 6); // 3 datasets x {sorted, unsorted}
        assert!(rows.iter().any(|r| r.dbg_sorted));
        assert!(rows.iter().any(|r| r.dataset == "Twitter"));
        let g = dataset_geomean(&rows).unwrap();
        assert!(g > 0.5 && g < 10.0);
    }

    #[test]
    fn ablation_rows_cover_variants() {
        let rows = ablation_design_choices(&profile(), AppId::Omnetpp);
        assert_eq!(rows.len(), 9);
        let cached = rows
            .iter()
            .find(|r| r.variant == "pcc (with cache model)")
            .unwrap();
        assert!(
            cached.speedup > 1.0,
            "PCC benefit persists under the cache model"
        );
        let get = |name: &str| rows.iter().find(|r| r.variant == name).unwrap();
        let paper = get("pcc (paper)");
        assert!(paper.speedup > 1.0);
        // PWC alone promotes nothing but still helps via cheaper walks.
        let pwc = get("PWC only (no promotion)");
        assert_eq!(pwc.promotions, 0);
        assert!(pwc.speedup > 1.0);
        assert!((pwc.walk_ratio - rows[0].walk_ratio).abs() < 1.0); // defined
                                                                    // PWC+PCC is at least as good as PWC alone.
        let both = get("PWC + PCC");
        assert!(both.speedup >= pwc.speedup - 0.02);
        // LFU/LRU near-equivalence (the paper's §3.2.1 claim).
        let lru = get("pure-LRU replacement");
        assert!((lru.speedup - paper.speedup).abs() < 0.25);
    }

    #[test]
    fn fig1_geomean_helper() {
        let rows = vec![
            Fig1Row {
                app: "a".into(),
                miss_4k: 0.2,
                miss_2m: 0.05,
                miss_linux: 0.15,
                speedup_2m: 2.0,
                speedup_linux: 1.1,
            },
            Fig1Row {
                app: "b".into(),
                miss_4k: 0.1,
                miss_2m: 0.02,
                miss_linux: 0.08,
                speedup_2m: 1.0,
                speedup_linux: 1.0,
            },
        ];
        let g = fig1_geomean_2m(&rows).unwrap();
        assert!((g - (2.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn consolidation_fleet_is_fair_and_deterministic() {
        // The ISSUE's acceptance bar: a ≥32-tenant consolidation run
        // completes under churn and yields PCC-fairness and
        // shootdown-storm metrics — byte-identically at any
        // `--sim-threads`.
        let cfg = ConsolidationConfig {
            tenants: 32,
            accesses_per_tenant: 40_000,
            sim_threads: 4,
        };
        let p = SimProfile::test();
        let mut rec = hpage_obs::NullRecorder;
        let r = consolidation_on(&p, &cfg, &mut rec);
        assert_eq!(r.rows.len(), 32);
        assert!(r.rows.iter().all(|row| row.accesses > 0));
        // All four mixes present, and mixes drain at their own lengths
        // (stream = 3/4, chase = 1/2 of a full-length tenant).
        for (mix, frac) in [
            ("zipf", 1.0),
            ("stream", 0.75),
            ("uniform", 1.0),
            ("chase", 0.5),
        ] {
            let row = r.rows.iter().find(|row| row.mix == mix).unwrap();
            assert_eq!(row.accesses, (cfg.accesses_per_tenant as f64 * frac) as u64);
        }
        assert!(r.total_promotions > 0, "the fleet must promote something");
        assert!(
            r.fairness_index > 0.0 && r.fairness_index <= 1.0 + 1e-12,
            "Jain index out of range: {}",
            r.fairness_index
        );
        // Two shootdown-spike windows, one storm flush per core each.
        assert!(
            r.storm_flushes >= 32 && r.storm_flushes % 32 == 0,
            "storms: {}",
            r.storm_flushes
        );
        assert!(r.storm_entries_flushed > 0);
        assert!(r.storm_entries_max <= r.storm_entries_flushed);
        // Sequential re-run is bit-equal (the sharded-loop contract).
        let seq = consolidation_on(
            &p,
            &ConsolidationConfig {
                sim_threads: 1,
                ..cfg
            },
            &mut rec,
        );
        assert_eq!(
            ConsolidationReport {
                sim_threads: 4,
                ..seq
            },
            r
        );
    }

    #[test]
    fn frag_seed_is_derived_not_aliased() {
        // Regression: `run_single` used to pass the raw experiment seed
        // to `with_fragmentation`, aliasing the fragmentation RNG stream
        // with the workload generators'. The derived stream must differ
        // from the raw seed while runs stay deterministic.
        let frag_seed = derive_seed(SEED, "frag");
        assert_ne!(frag_seed, SEED);
        let p = profile();
        let h = Harness::sequential();
        let w = h.workload(&p, AppId::Canneal);
        let run = |seed: u64| {
            simulation(&p, PolicyChoice::LinuxThp, w.footprint_bytes())
                .with_fragmentation(50, seed)
                .run(&[ProcessSpec::new(w.as_ref())])
        };
        let derived = run(frag_seed);
        assert_eq!(derived, run(frag_seed), "fixed seeds stay deterministic");
        assert_ne!(
            derived,
            run(SEED),
            "de-aliased fragmentation must sample a different layout"
        );
    }
}
