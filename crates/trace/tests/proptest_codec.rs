//! Property tests for the trace codecs: full-range round-trips and
//! truncation/corruption fuzz.
//!
//! These are the tests that would have caught both historical codec
//! bugs — the writer's overflowing delta subtraction (addresses more
//! than `i64::MAX` apart) and the reader's silent bit-dropping on
//! 10-byte varints. Addresses are drawn from the *whole* `u64` domain,
//! not plausible heap ranges.

use hpage_trace::{
    Hpt2Reader, Hpt2Writer, MmapTrace, RecordedWorkload, TraceReader, TraceWriter, Workload,
};
use hpage_types::{MemoryAccess, VirtAddr};
use proptest::prelude::*;
use std::io;

fn to_accesses(raw: &[(u64, bool)]) -> Vec<MemoryAccess> {
    raw.iter()
        .map(|&(addr, is_write)| {
            if is_write {
                MemoryAccess::write(VirtAddr::new(addr))
            } else {
                MemoryAccess::read(VirtAddr::new(addr))
            }
        })
        .collect()
}

fn encode_hpt1(accesses: &[MemoryAccess]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).unwrap();
    w.write_all(accesses.iter().copied()).unwrap();
    w.finish().unwrap();
    buf
}

fn encode_hpt2(accesses: &[MemoryAccess], block_records: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = Hpt2Writer::with_block_records(&mut buf, block_records).unwrap();
    w.write_all(accesses.iter().copied()).unwrap();
    w.finish().unwrap();
    buf
}

fn decode_hpt1(bytes: &[u8]) -> io::Result<Vec<MemoryAccess>> {
    TraceReader::new(bytes)?.collect()
}

fn decode_hpt2(bytes: &[u8]) -> io::Result<Vec<MemoryAccess>> {
    Hpt2Reader::new(bytes)?.collect()
}

/// Decodes until the first error, returning the records seen before it
/// and whether an error occurred.
fn decode_prefix<I: Iterator<Item = io::Result<MemoryAccess>>>(
    iter: I,
) -> (Vec<MemoryAccess>, bool) {
    let mut out = Vec::new();
    for item in iter {
        match item {
            Ok(a) => out.push(a),
            Err(_) => return (out, true),
        }
    }
    (out, false)
}

fn temp_trace(tag: &str, case: u64, bytes: &[u8]) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hpage-proptest-{tag}-{}-{case}.hpt2",
        std::process::id()
    ));
    std::fs::write(&p, bytes).unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn hpt1_roundtrips_full_range_addresses(
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 0..400),
    ) {
        let accesses = to_accesses(&raw);
        let bytes = encode_hpt1(&accesses);
        prop_assert_eq!(decode_hpt1(&bytes).unwrap(), accesses);
    }

    fn hpt2_roundtrips_full_range_addresses(
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 0..400),
        block_records in 1u32..70,
        case in any::<u64>(),
    ) {
        let accesses = to_accesses(&raw);
        let bytes = encode_hpt2(&accesses, block_records);
        prop_assert_eq!(decode_hpt2(&bytes).unwrap(), &accesses[..]);

        // The mmap replay path must agree record-for-record and
        // footprint-for-footprint with the in-memory path.
        let path = temp_trace("roundtrip", case, &bytes);
        let mapped = MmapTrace::open("prop", &path).unwrap();
        let replayed: Vec<MemoryAccess> = mapped.trace().collect();
        prop_assert_eq!(replayed, &accesses[..]);
        let in_mem = RecordedWorkload::new("prop", accesses);
        prop_assert_eq!(mapped.regions(), in_mem.regions());
        std::fs::remove_file(&path).unwrap();
    }

    fn hpt1_truncation_never_yields_wrong_records(
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 1..200),
        cut_sel in any::<u64>(),
    ) {
        let accesses = to_accesses(&raw);
        let bytes = encode_hpt1(&accesses);
        // Cut after the magic, strictly before the end.
        let cut = 4 + (cut_sel % (bytes.len() as u64 - 4)) as usize;
        let (prefix, _errored) = decode_prefix(TraceReader::new(&bytes[..cut]).unwrap());
        // HPT1 has no trailer, so a cut at a record boundary is
        // indistinguishable from end-of-trace — but every record the
        // reader does yield must be one of the original's, in order.
        prop_assert!(prefix.len() <= accesses.len());
        prop_assert_eq!(&prefix[..], &accesses[..prefix.len()]);
    }

    fn hpt2_truncation_is_detected(
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 1..200),
        block_records in 1u32..33,
        cut_sel in any::<u64>(),
        case in any::<u64>(),
    ) {
        let accesses = to_accesses(&raw);
        let bytes = encode_hpt2(&accesses, block_records);
        let cut = (cut_sel % bytes.len() as u64) as usize;
        let truncated = &bytes[..cut];

        // Streaming reader: must surface an error (the trailer cannot
        // validate), and any records yielded first must be a correct
        // prefix (block checksums gate every decoded record).
        match Hpt2Reader::new(truncated) {
            Ok(r) => {
                let (prefix, errored) = decode_prefix(r);
                prop_assert!(errored, "cut at {} of {} read cleanly", cut, bytes.len());
                prop_assert_eq!(&prefix[..], &accesses[..prefix.len()]);
            }
            Err(_) => {}
        }

        // Mmap reader validates at open: must refuse the file.
        let path = temp_trace("trunc", case, truncated);
        prop_assert!(MmapTrace::open("prop", &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    fn hpt2_corruption_is_detected(
        raw in prop::collection::vec((any::<u64>(), any::<bool>()), 1..200),
        block_records in 1u32..33,
        at_sel in any::<u64>(),
        bit in 0u32..8,
        case in any::<u64>(),
    ) {
        let accesses = to_accesses(&raw);
        let mut bytes = encode_hpt2(&accesses, block_records);
        let at = (at_sel % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;

        // A flipped bit must never decode to *different* records: the
        // reader either errors or (for flips in don't-care positions,
        // e.g. growing the declared max block size) yields the exact
        // original trace.
        match Hpt2Reader::new(bytes.as_slice()) {
            Ok(r) => {
                let (prefix, errored) = decode_prefix(r);
                if errored {
                    prop_assert_eq!(&prefix[..], &accesses[..prefix.len()]);
                } else {
                    prop_assert_eq!(&prefix[..], &accesses[..]);
                }
            }
            Err(_) => {}
        }

        let path = temp_trace("corrupt", case, &bytes);
        match MmapTrace::open("prop", &path) {
            Ok(mapped) => {
                let replayed: Vec<MemoryAccess> = mapped.trace().collect();
                prop_assert_eq!(replayed, &accesses[..]);
            }
            Err(_) => {}
        }
        std::fs::remove_file(&path).unwrap();
    }
}
