//! A process-wide workload cache: instantiate each evaluation workload
//! once, share it across experiment drivers via [`Arc`].
//!
//! The repro harness runs a grid of cells — (figure × app × policy ×
//! fragmentation × budget) — and before this cache existed every figure
//! driver regenerated its workloads from scratch (`instantiate` is
//! called per-figure per-app, and R-MAT generation plus DBG sorting
//! dominate driver start-up). Workloads are immutable once built and
//! their traces are pure functions of `self`, so one instance can feed
//! any number of concurrent simulations.
//!
//! Keys are the full instantiation input `(AppId, Dataset,
//! WorkloadScale, seed)` — two figures only share an instance when they
//! would have generated bit-identical workloads anyway, which is what
//! keeps cached and fresh runs byte-identical.

use crate::catalog::{instantiate, AnyWorkload, AppId, Dataset, WorkloadScale};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

// Compile-time Send/Sync audit: every workload type that crosses the
// harness's worker-pool boundary must be shareable. Workloads are plain
// owned data (no interior mutability; traces borrow `&self` freshly per
// run), so these bounds hold structurally — this pins them against
// regressions.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnyWorkload>();
    assert_send_sync::<crate::kernels::GraphWorkload>();
    assert_send_sync::<crate::synth::SyntheticWorkload>();
    assert_send_sync::<WorkloadCache>();
};

/// The full instantiation input of one workload — the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    /// The application.
    pub app: AppId,
    /// The graph dataset (ignored by `instantiate` for non-graph apps,
    /// but kept in the key so lookups stay a pure function of inputs).
    pub dataset: Dataset,
    /// Instantiation scale.
    pub scale: WorkloadScale,
    /// Generator seed.
    pub seed: u64,
}

/// Thread-safe, insert-only cache of instantiated workloads.
///
/// [`get`](Self::get) returns an `Arc` to the cached instance,
/// instantiating it on first use. The map lock is held only around
/// bookkeeping, not around workload generation — two threads racing on
/// the same cold key may both build it, and the first to insert wins
/// (both builds are bit-identical by determinism, so which one is kept
/// is unobservable).
#[derive(Debug, Default)]
pub struct WorkloadCache {
    map: Mutex<HashMap<WorkloadKey, Arc<AnyWorkload>>>,
    stats: Mutex<CacheStats>,
}

/// Hit/miss counters of a [`WorkloadCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that instantiated a new workload.
    pub misses: u64,
}

impl WorkloadCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the workload for `key`, instantiating and caching it on
    /// first use.
    pub fn get(&self, key: WorkloadKey) -> Arc<AnyWorkload> {
        if let Some(w) = self.map.lock().unwrap().get(&key) {
            self.stats.lock().unwrap().hits += 1;
            return Arc::clone(w);
        }
        // Build outside the lock: generation can take seconds at bench
        // scale and must not serialize unrelated lookups.
        let built = Arc::new(instantiate(key.app, key.dataset, key.scale, key.seed));
        let mut map = self.map.lock().unwrap();
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
        let shared = Arc::clone(entry);
        drop(map);
        self.stats.lock().unwrap().misses += 1;
        shared
    }

    /// Convenience [`get`](Self::get) from loose parts.
    pub fn get_parts(
        &self,
        app: AppId,
        dataset: Dataset,
        scale: WorkloadScale,
        seed: u64,
    ) -> Arc<AnyWorkload> {
        self.get(WorkloadKey {
            app,
            dataset,
            scale,
            seed,
        })
    }

    /// Distinct workloads currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn key(seed: u64) -> WorkloadKey {
        WorkloadKey {
            app: AppId::Bfs,
            dataset: Dataset::Kronecker,
            scale: WorkloadScale::TEST,
            seed,
        }
    }

    #[test]
    fn second_lookup_shares_the_instance() {
        let cache = WorkloadCache::new();
        let a = cache.get(key(1));
        let b = cache.get(key(1));
        assert!(Arc::ptr_eq(&a, &b), "same key must share one instance");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_keys_distinct_instances() {
        let cache = WorkloadCache::new();
        let a = cache.get(key(1));
        let b = cache.get(key(2));
        assert!(!Arc::ptr_eq(&a, &b));
        let mut scale = WorkloadScale::TEST;
        scale.dbg_sorted = true;
        let c = cache.get(WorkloadKey { scale, ..key(1) });
        assert!(!Arc::ptr_eq(&a, &c), "scale is part of the key");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cached_trace_equals_fresh_instantiation() {
        let cache = WorkloadCache::new();
        let cached = cache.get(key(3));
        let fresh = instantiate(AppId::Bfs, Dataset::Kronecker, WorkloadScale::TEST, 3);
        assert_eq!(cached.name(), fresh.name());
        assert_eq!(cached.footprint_bytes(), fresh.footprint_bytes());
        let a: Vec<_> = cached.trace().take(50_000).collect();
        let b: Vec<_> = fresh.trace().take(50_000).collect();
        assert_eq!(a, b, "cache-served trace must equal a fresh one");
    }

    #[test]
    fn concurrent_lookups_converge_on_one_instance() {
        let cache = WorkloadCache::new();
        let arcs: Vec<Arc<AnyWorkload>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| cache.get(key(4)))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], w));
        }
        assert_eq!(cache.len(), 1);
    }
}
