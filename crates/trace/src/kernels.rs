//! Graph-kernel workloads: BFS, SSSP, and PageRank.
//!
//! Each kernel executes the real algorithm over a [`CsrGraph`] while
//! emitting the virtual-address stream its data-structure accesses would
//! produce (GAP-style array layouts):
//!
//! * `offsets[u]`, `offsets[u+1]` — 8-byte CSR index reads (sequential-ish,
//!   TLB-friendly);
//! * `neighbors[e]` — 4-byte edge reads (streaming within a vertex's list);
//! * per-vertex property arrays (`parent`, `dist`, `rank`) — indexed by
//!   *neighbour id*, the scattered, degree-correlated accesses the paper
//!   identifies as HUBs.
//!
//! Multithreaded variants partition vertices across threads the way the
//! OpenMP GAP kernels do (contiguous vertex ranges per thread).

use crate::graph::CsrGraph;
use crate::layout::{AddressSpaceBuilder, ArrayLayout};
use crate::workload::{TraceStream, Workload};
use hpage_types::{MemoryAccess, Region};
use std::collections::VecDeque;

/// Which graph kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKernel {
    /// Breadth-First Search from vertex 0 (parent array).
    Bfs,
    /// Single-Source Shortest Paths from vertex 0 (Bellman-Ford rounds
    /// over an 8-byte `dist` + 4-byte `weights` array — the extra arrays
    /// give SSSP its ~2× BFS footprint, as in Table 1).
    Sssp,
    /// PageRank (default 5 power iterations over two 8-byte rank arrays).
    PageRank,
    /// Connected Components via label propagation (Shiloach-Vishkin-style
    /// sweeps). **Extension**: in the GAP suite but not in the paper's
    /// evaluation set.
    Components,
}

impl core::fmt::Display for GraphKernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphKernel::Bfs => write!(f, "BFS"),
            GraphKernel::Sssp => write!(f, "SSSP"),
            GraphKernel::PageRank => write!(f, "PR"),
            GraphKernel::Components => write!(f, "CC"),
        }
    }
}

/// A graph workload: a kernel bound to a graph and a laid-out address
/// space.
#[derive(Debug, Clone)]
pub struct GraphWorkload {
    kernel: GraphKernel,
    graph: CsrGraph,
    name: String,
    offsets: ArrayLayout,
    neighbors: ArrayLayout,
    props_a: ArrayLayout,
    props_b: Option<ArrayLayout>,
    weights: Option<ArrayLayout>,
    regions: Vec<Region>,
    pr_iterations: u32,
}

impl GraphWorkload {
    /// Binds `kernel` to `graph`, laying out the kernel's arrays in a
    /// fresh address space. `dataset` names the input for reports
    /// ("Kronecker", "Twitter", …).
    pub fn new(kernel: GraphKernel, graph: CsrGraph, dataset: &str) -> Self {
        let n = u64::from(graph.vertex_count());
        let m = graph.edge_count();
        let mut asb = AddressSpaceBuilder::new();
        let offsets = asb.array(8, n + 1);
        let neighbors = asb.array(4, m);
        let (props_a, props_b, weights) = match kernel {
            GraphKernel::Bfs => (asb.array(4, n), None, None),
            GraphKernel::Sssp => (asb.array(8, n), None, Some(asb.array(4, m))),
            GraphKernel::PageRank => (asb.array(8, n), Some(asb.array(8, n)), None),
            GraphKernel::Components => (asb.array(4, n), None, None),
        };
        let regions = asb.regions().to_vec();
        GraphWorkload {
            name: format!("{kernel}-{dataset}"),
            kernel,
            graph,
            offsets,
            neighbors,
            props_a,
            props_b,
            weights,
            regions,
            pr_iterations: 5,
        }
    }

    /// Overrides the number of PageRank iterations (default 5).
    #[must_use]
    pub fn with_pr_iterations(mut self, iterations: u32) -> Self {
        self.pr_iterations = iterations.max(1);
        self
    }

    /// The kernel this workload runs.
    pub fn kernel(&self) -> GraphKernel {
        self.kernel
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The layout of the per-vertex property array the kernel scatters
    /// into — the region family where HUBs live.
    pub fn property_layout(&self) -> ArrayLayout {
        self.props_a
    }

    fn vertex_range(&self, thread: u32, threads: u32) -> (u32, u32) {
        assert!(threads > 0 && thread < threads, "bad thread index");
        let n = self.graph.vertex_count();
        let per = n.div_ceil(threads);
        let lo = per.saturating_mul(thread).min(n);
        let hi = per.saturating_mul(thread + 1).min(n);
        (lo, hi)
    }
}

impl Workload for GraphWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
        let (lo, hi) = self.vertex_range(thread, threads);
        match self.kernel {
            GraphKernel::Bfs => Box::new(KernelIter(BfsTrace::new(self, lo, hi))),
            GraphKernel::Sssp => Box::new(KernelIter(SsspTrace::new(self, lo, hi))),
            GraphKernel::PageRank => Box::new(KernelIter(PrTrace::new(self, lo, hi))),
            GraphKernel::Components => Box::new(KernelIter(CcTrace::new(self, lo, hi))),
        }
    }

    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        // `BulkKernel`'s windows borrow the kernel's own pending queue,
        // so the simulation reads generated accesses in place.
        let (lo, hi) = self.vertex_range(thread, threads);
        match self.kernel {
            GraphKernel::Bfs => Box::new(BulkKernel::new(BfsTrace::new(self, lo, hi))),
            GraphKernel::Sssp => Box::new(BulkKernel::new(SsspTrace::new(self, lo, hi))),
            GraphKernel::PageRank => Box::new(BulkKernel::new(PrTrace::new(self, lo, hi))),
            GraphKernel::Components => Box::new(BulkKernel::new(CcTrace::new(self, lo, hi))),
        }
    }
}

/// Label-propagation connected components over the thread's partition:
/// repeated sweeps reading `labels[v]` for every neighbour and writing
/// back the minimum, until a sweep makes no change (or a sweep cap).
struct CcTrace<'g> {
    scanner: EdgeScanner<'g>,
    labels: Vec<u32>,
    lo: u32,
    hi: u32,
    cursor: u32,
    changed: bool,
    sweeps: u32,
    max_sweeps: u32,
}

impl<'g> CcTrace<'g> {
    fn new(w: &'g GraphWorkload, lo: u32, hi: u32) -> Self {
        let n = w.graph.vertex_count();
        CcTrace {
            scanner: EdgeScanner::new(w),
            labels: (0..n).collect(),
            lo,
            hi,
            cursor: lo,
            changed: false,
            sweeps: 0,
            max_sweeps: 4,
        }
    }

    fn step(&mut self) -> bool {
        if self.cursor >= self.hi {
            self.sweeps += 1;
            if self.sweeps >= self.max_sweeps || !self.changed {
                return false;
            }
            self.cursor = self.lo;
            self.changed = false;
        }
        if self.lo >= self.hi {
            return false;
        }
        let u = self.cursor;
        self.cursor += 1;
        let w = self.scanner.w;
        let my_label = self.labels[u as usize];
        let labels = &mut self.labels;
        let changed = &mut self.changed;
        self.scanner.scan_vertex(u, |pending, _e, v| {
            pending.push_back(MemoryAccess::read(w.props_a.addr_of(v as u64)));
            let lv = labels[v as usize];
            let min = my_label.min(lv);
            if lv > min {
                labels[v as usize] = min;
                *changed = true;
                pending.push_back(MemoryAccess::write(w.props_a.addr_of(v as u64)));
            }
            if labels[u as usize] > min {
                labels[u as usize] = min;
                *changed = true;
                pending.push_back(MemoryAccess::write(w.props_a.addr_of(u as u64)));
            }
        });
        true
    }
}

impl KernelSteps for CcTrace<'_> {
    fn pending(&mut self) -> &mut AccessQueue {
        &mut self.scanner.pending
    }

    fn pending_ref(&self) -> &AccessQueue {
        &self.scanner.pending
    }

    fn step(&mut self) -> bool {
        CcTrace::step(self)
    }
}

/// Emits the access pattern of processing one vertex `u`: offsets pair,
/// then per-edge neighbour read + property access. Shared by all kernels
/// via a small state machine.
struct EdgeScanner<'g> {
    w: &'g GraphWorkload,
    /// Pending accesses not yet drained.
    pending: AccessQueue,
}

/// FIFO of generated accesses: a `Vec` with a consume cursor instead of
/// a `VecDeque`, so the producer side is a plain `push` and the bulk
/// consumer side is one contiguous slice (a single `memcpy` into the
/// simulation's chunk buffer, no wrap-around halves).
#[derive(Debug)]
struct AccessQueue {
    buf: Vec<MemoryAccess>,
    head: usize,
}

impl AccessQueue {
    fn with_capacity(n: usize) -> Self {
        AccessQueue {
            buf: Vec::with_capacity(n),
            head: 0,
        }
    }

    #[inline(always)]
    fn push_back(&mut self, a: MemoryAccess) {
        self.buf.push(a);
    }

    #[inline(always)]
    fn pop_front(&mut self) -> Option<MemoryAccess> {
        let a = self.buf.get(self.head).copied();
        if a.is_some() {
            self.consume(1);
        }
        a
    }

    fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// The queued accesses, oldest first.
    fn as_slice(&self) -> &[MemoryAccess] {
        &self.buf[self.head..]
    }

    /// Releases the `n` oldest accesses; storage is recycled once the
    /// queue drains, and a large consumed prefix is compacted away so
    /// `buf` stays bounded even when windows always leave a tail (the
    /// zero-copy window protocol consumes in window-sized bites, so
    /// without compaction `head` would creep forever on billion-access
    /// traces).
    fn consume(&mut self, n: usize) {
        self.head += n;
        debug_assert!(self.head <= self.buf.len());
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= COMPACT_AT && self.head >= self.buf.len() / 2 {
            // Amortized O(1): the tail copied here is no longer than
            // the >= COMPACT_AT elements consumed since the last reset.
            self.buf.copy_within(self.head.., 0);
            let tail = self.buf.len() - self.head;
            self.buf.truncate(tail);
            self.head = 0;
        }
    }
}

/// Consumed-prefix length at which [`AccessQueue::consume`] compacts.
const COMPACT_AT: usize = 1024;

/// A kernel generator reduced to its two primitives: the queue of
/// already-produced accesses and a `step` that scans one more vertex.
/// [`BulkKernel`] builds both the per-element [`Iterator`] and the
/// chunked [`TraceStream`] from these.
trait KernelSteps {
    /// The scanner holding queued accesses.
    fn pending(&mut self) -> &mut AccessQueue;
    /// Shared view of the queue (for re-borrowing the current window).
    fn pending_ref(&self) -> &AccessQueue;
    /// Advances the kernel by one vertex; `false` when the trace is done.
    fn step(&mut self) -> bool;
}

/// Per-element adapter: the classic pop-or-step iterator, used by
/// [`Workload::thread_trace`].
struct KernelIter<T>(T);

impl<T: KernelSteps> Iterator for KernelIter<T> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        loop {
            if let Some(a) = self.0.pending().pop_front() {
                return Some(a);
            }
            if !self.0.step() {
                return None;
            }
        }
    }
}

/// Chunked adapter giving a [`KernelSteps`] state machine a zero-copy
/// [`TraceStream`]: each window is a direct slice of the kernel's own
/// pending queue — the simulation reads generated accesses where the
/// scanner wrote them, no intermediate buffer. The graph kernels
/// produce tens of accesses per scanned vertex, so this is where
/// trace-generation time goes.
///
/// Consumption is deferred: the window handed out by `next_window`
/// stays queued (length in `out`) until the *next* call releases it,
/// because the borrow it returned was a view into the queue.
struct BulkKernel<T> {
    kernel: T,
    /// Length of the outstanding window, consumed on the next call.
    out: usize,
}

impl<T: KernelSteps> BulkKernel<T> {
    fn new(kernel: T) -> Self {
        BulkKernel { kernel, out: 0 }
    }
}

impl<T: KernelSteps> TraceStream for BulkKernel<T> {
    fn next_window(&mut self, max: usize) -> &[MemoryAccess] {
        self.kernel.pending().consume(self.out);
        while self.kernel.pending_ref().len() < max {
            if !self.kernel.step() {
                break;
            }
        }
        let take = self.kernel.pending_ref().len().min(max);
        self.out = take;
        &self.kernel.pending_ref().as_slice()[..take]
    }

    fn window(&self) -> &[MemoryAccess] {
        &self.kernel.pending_ref().as_slice()[..self.out]
    }
}

impl<'g> EdgeScanner<'g> {
    fn new(w: &'g GraphWorkload) -> Self {
        EdgeScanner {
            w,
            pending: AccessQueue::with_capacity(64),
        }
    }

    /// Queues the accesses for scanning vertex `u`'s out-edges; calls
    /// `visit` for each neighbour so the kernel can react (and queue its
    /// own property accesses).
    fn scan_vertex(&mut self, u: u32, mut visit: impl FnMut(&mut AccessQueue, u64, u32)) {
        let w = self.w;
        self.pending
            .push_back(MemoryAccess::read(w.offsets.addr_of(u as u64)));
        self.pending
            .push_back(MemoryAccess::read(w.offsets.addr_of(u as u64 + 1)));
        let lo = w.graph.offsets()[u as usize];
        for (k, &v) in w.graph.neighbors_of(u).iter().enumerate() {
            let e = lo + k as u64;
            self.pending
                .push_back(MemoryAccess::read(w.neighbors.addr_of(e)));
            visit(&mut self.pending, e, v);
        }
    }
}

/// BFS from vertex 0 restricted to vertices in `[lo, hi)` (a thread's
/// partition). Emits parent-array reads for every edge and writes on
/// discovery.
struct BfsTrace<'g> {
    scanner: EdgeScanner<'g>,
    parent: Vec<bool>,
    queue: VecDeque<u32>,
    lo: u32,
    hi: u32,
    /// Seed vertices not yet tried (restart BFS from unvisited vertices so
    /// the whole partition's structure is traversed, like GAP's trials).
    next_seed: u32,
}

impl<'g> BfsTrace<'g> {
    fn new(w: &'g GraphWorkload, lo: u32, hi: u32) -> Self {
        let n = w.graph.vertex_count() as usize;
        let mut t = BfsTrace {
            scanner: EdgeScanner::new(w),
            parent: vec![false; n],
            queue: VecDeque::new(),
            lo,
            hi,
            next_seed: lo,
        };
        t.seed();
        t
    }

    fn seed(&mut self) {
        while self.next_seed < self.hi {
            let s = self.next_seed;
            self.next_seed += 1;
            if !self.parent[s as usize] {
                self.parent[s as usize] = true;
                self.queue.push_back(s);
                return;
            }
        }
    }

    fn step(&mut self) -> bool {
        loop {
            let Some(u) = self.queue.pop_front() else {
                self.seed();
                if self.queue.is_empty() {
                    return false;
                }
                continue;
            };
            let w = self.scanner.w;
            let parent = &mut self.parent;
            let queue = &mut self.queue;
            let (lo, hi) = (self.lo, self.hi);
            self.scanner.scan_vertex(u, |pending, _e, v| {
                // Read parent[v]; write + enqueue when newly discovered.
                pending.push_back(MemoryAccess::read(w.props_a.addr_of(v as u64)));
                if !parent[v as usize] {
                    parent[v as usize] = true;
                    pending.push_back(MemoryAccess::write(w.props_a.addr_of(v as u64)));
                    if v >= lo && v < hi {
                        queue.push_back(v);
                    }
                }
            });
            return true;
        }
    }
}

impl KernelSteps for BfsTrace<'_> {
    fn pending(&mut self) -> &mut AccessQueue {
        &mut self.scanner.pending
    }

    fn pending_ref(&self) -> &AccessQueue {
        &self.scanner.pending
    }

    fn step(&mut self) -> bool {
        BfsTrace::step(self)
    }
}

/// Bellman-Ford-style SSSP over the thread's partition: `rounds` sweeps
/// relaxing every out-edge, reading `weights[e]` and `dist[v]`.
struct SsspTrace<'g> {
    scanner: EdgeScanner<'g>,
    dist: Vec<u32>,
    lo: u32,
    hi: u32,
    round: u32,
    rounds: u32,
    cursor: u32,
    improved: bool,
}

impl<'g> SsspTrace<'g> {
    fn new(w: &'g GraphWorkload, lo: u32, hi: u32) -> Self {
        let n = w.graph.vertex_count() as usize;
        let mut dist = vec![u32::MAX / 2; n];
        if (lo..hi).contains(&0) || lo == 0 {
            dist[lo as usize] = 0;
        }
        dist[lo.min(n.saturating_sub(1) as u32) as usize] = 0;
        SsspTrace {
            scanner: EdgeScanner::new(w),
            dist,
            lo,
            hi,
            round: 0,
            rounds: 3,
            cursor: lo,
            improved: false,
        }
    }

    fn step(&mut self) -> bool {
        if self.cursor >= self.hi {
            // End of a sweep.
            self.round += 1;
            if self.round >= self.rounds || !self.improved {
                return false;
            }
            self.cursor = self.lo;
            self.improved = false;
        }
        if self.lo >= self.hi {
            return false;
        }
        let u = self.cursor;
        self.cursor += 1;
        let w = self.scanner.w;
        let du = self.dist[u as usize];
        let dist = &mut self.dist;
        let improved = &mut self.improved;
        let weights = w.weights.expect("sssp has weights");
        self.scanner.scan_vertex(u, |pending, e, v| {
            pending.push_back(MemoryAccess::read(weights.addr_of(e)));
            pending.push_back(MemoryAccess::read(w.props_a.addr_of(v as u64)));
            // Deterministic pseudo-weight derived from the edge index.
            let wgt = (e % 16 + 1) as u32;
            let cand = du.saturating_add(wgt);
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                *improved = true;
                pending.push_back(MemoryAccess::write(w.props_a.addr_of(v as u64)));
            }
        });
        true
    }
}

impl KernelSteps for SsspTrace<'_> {
    fn pending(&mut self) -> &mut AccessQueue {
        &mut self.scanner.pending
    }

    fn pending_ref(&self) -> &AccessQueue {
        &self.scanner.pending
    }

    fn step(&mut self) -> bool {
        SsspTrace::step(self)
    }
}

/// PageRank power iterations over the thread's partition: for each vertex,
/// gather `rank_prev[v]` from every in-edge (we use out-edges as a
/// symmetric approximation, as pull-style GAP PR does on the transpose)
/// and write `rank_next[u]`.
struct PrTrace<'g> {
    scanner: EdgeScanner<'g>,
    lo: u32,
    hi: u32,
    iter: u32,
    iters: u32,
    cursor: u32,
}

impl<'g> PrTrace<'g> {
    fn new(w: &'g GraphWorkload, lo: u32, hi: u32) -> Self {
        PrTrace {
            scanner: EdgeScanner::new(w),
            lo,
            hi,
            iter: 0,
            iters: w.pr_iterations,
            cursor: lo,
        }
    }

    fn step(&mut self) -> bool {
        if self.cursor >= self.hi {
            self.iter += 1;
            if self.iter >= self.iters {
                return false;
            }
            self.cursor = self.lo;
        }
        if self.lo >= self.hi {
            return false;
        }
        let u = self.cursor;
        self.cursor += 1;
        let w = self.scanner.w;
        let rank_next = w.props_b.expect("pagerank has two rank arrays");
        self.scanner.scan_vertex(u, |pending, _e, v| {
            pending.push_back(MemoryAccess::read(w.props_a.addr_of(v as u64)));
            let _ = v;
        });
        self.scanner
            .pending
            .push_back(MemoryAccess::write(rank_next.addr_of(u as u64)));
        true
    }
}

impl KernelSteps for PrTrace<'_> {
    fn pending(&mut self) -> &mut AccessQueue {
        &mut self.scanner.pending
    }

    fn pending_ref(&self) -> &AccessQueue {
        &self.scanner.pending
    }

    fn step(&mut self) -> bool {
        PrTrace::step(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{generate_rmat, RmatParams};
    use hpage_types::VirtAddr;

    fn small_graph() -> CsrGraph {
        generate_rmat(&RmatParams::kronecker(8), 5)
    }

    fn in_regions(w: &GraphWorkload, a: VirtAddr) -> bool {
        w.regions().iter().any(|r| r.contains(a))
    }

    #[test]
    fn bfs_trace_stays_in_layout() {
        let w = GraphWorkload::new(GraphKernel::Bfs, small_graph(), "Kron8");
        let mut count = 0u64;
        for acc in w.trace() {
            assert!(in_regions(&w, acc.addr), "stray access {}", acc.addr);
            count += 1;
        }
        // BFS touches every edge once from its owning vertex: at least
        // 2 offsets + 1 neighbor + 1 prop read per edge of nonzero-degree
        // vertices.
        assert!(count as u64 >= w.graph().edge_count() * 2);
    }

    #[test]
    fn bfs_visits_every_vertex() {
        let g = small_graph();
        let n = g.vertex_count();
        let w = GraphWorkload::new(GraphKernel::Bfs, g, "Kron8");
        // Every vertex's offsets slot is eventually read (seeded restarts).
        let offsets_base = w.regions()[0].start();
        let mut seen = vec![false; n as usize + 1];
        for acc in w.trace() {
            if w.regions()[0].contains(acc.addr) {
                let idx = (acc.addr.raw() - offsets_base.raw()) / 8;
                seen[idx as usize] = true;
            }
        }
        assert!(seen.iter().take(n as usize).all(|&s| s));
    }

    #[test]
    fn sssp_has_weights_and_bigger_footprint() {
        let g = small_graph();
        let bfs = GraphWorkload::new(GraphKernel::Bfs, g.clone(), "k");
        let sssp = GraphWorkload::new(GraphKernel::Sssp, g, "k");
        assert!(sssp.footprint_bytes() > bfs.footprint_bytes());
        assert!(sssp.trace().count() > 0);
    }

    #[test]
    fn pagerank_iterations_scale_trace_length() {
        let g = small_graph();
        let pr1 = GraphWorkload::new(GraphKernel::PageRank, g.clone(), "k").with_pr_iterations(1);
        let pr3 = GraphWorkload::new(GraphKernel::PageRank, g, "k").with_pr_iterations(3);
        let c1 = pr1.trace().count();
        let c3 = pr3.trace().count();
        assert_eq!(c3, 3 * c1);
    }

    #[test]
    fn traces_are_deterministic() {
        let w = GraphWorkload::new(GraphKernel::Bfs, small_graph(), "k");
        let t1: Vec<_> = w.trace().take(10_000).collect();
        let t2: Vec<_> = w.trace().take(10_000).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn thread_partitions_cover_all_vertices() {
        let g = small_graph();
        let w = GraphWorkload::new(GraphKernel::PageRank, g, "k").with_pr_iterations(1);
        // Across 4 threads, PR writes rank_next[u] exactly once per vertex.
        let rank_next = w.props_b.unwrap();
        let mut writes = 0u64;
        for t in 0..4 {
            for acc in w.thread_trace(t, 4) {
                if acc.kind == hpage_types::AccessKind::Write
                    && rank_next.region().contains(acc.addr)
                {
                    writes += 1;
                }
            }
        }
        assert_eq!(writes, u64::from(w.graph().vertex_count()));
    }

    #[test]
    #[should_panic(expected = "bad thread index")]
    fn bad_thread_panics() {
        let w = GraphWorkload::new(GraphKernel::Bfs, small_graph(), "k");
        let _ = w.thread_trace(2, 2);
    }

    #[test]
    fn cc_converges_and_stays_in_layout() {
        let g = small_graph();
        let w = GraphWorkload::new(GraphKernel::Components, g, "Kron8");
        let mut count = 0u64;
        for acc in w.trace() {
            assert!(in_regions(&w, acc.addr), "stray access {}", acc.addr);
            count += 1;
        }
        // At least one full sweep over all edges.
        assert!(count >= w.graph().edge_count());
        assert_eq!(w.name(), "CC-Kron8");
    }

    #[test]
    fn stream_windows_match_thread_trace() {
        let g = small_graph();
        let w = GraphWorkload::new(GraphKernel::Bfs, g, "k");
        for (thread, threads) in [(0, 1), (1, 3)] {
            let expect: Vec<_> = w.thread_trace(thread, threads).collect();
            let mut s = w.thread_stream(thread, threads);
            let mut got = Vec::new();
            loop {
                // An awkward window size so windows straddle the
                // scanner's per-vertex bursts and leave queue tails.
                let win = s.next_window(7).to_vec();
                assert_eq!(win, s.window(), "window() must re-borrow");
                if win.is_empty() {
                    break;
                }
                let full = win.len() == 7;
                got.extend_from_slice(&win);
                if !full {
                    assert!(s.next_window(7).is_empty(), "short window = end");
                    break;
                }
            }
            assert_eq!(got, expect, "thread {thread}/{threads}");
        }
    }

    #[test]
    fn names_include_kernel_and_dataset() {
        let w = GraphWorkload::new(GraphKernel::Sssp, small_graph(), "Twitter");
        assert_eq!(w.name(), "SSSP-Twitter");
    }

    #[test]
    fn property_accesses_follow_degree_skew() {
        // On a power-law graph, property reads concentrate on hot 2MB
        // regions — the foundation of the whole paper. Verify the skew.
        let g = generate_rmat(&RmatParams::kronecker(10), 9);
        let w = GraphWorkload::new(GraphKernel::PageRank, g, "k").with_pr_iterations(1);
        let props = w.property_layout();
        use std::collections::HashMap;
        let mut per_page: HashMap<u64, u64> = HashMap::new();
        for acc in w.trace() {
            if props.region().contains(acc.addr) {
                *per_page
                    .entry(acc.addr.vpn(hpage_types::PageSize::Base4K).index())
                    .or_default() += 1;
            }
        }
        let mut counts: Vec<u64> = per_page.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10: u64 = counts.iter().take(counts.len().div_ceil(10)).sum();
        // The hottest 10% of pages should draw well over 10% of accesses.
        assert!(
            top10 * 3 > total,
            "expected skew: top-decile pages got {top10}/{total}"
        );
    }
}
