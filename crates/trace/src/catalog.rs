//! The evaluation-workload catalog (the paper's Table 1), plus factory
//! functions that instantiate each workload at a configurable scale.

use crate::graph::{degree_based_grouping, generate_rmat, RmatParams};
use crate::kernels::{GraphKernel, GraphWorkload};
use crate::synth::{self, SynthScale, SyntheticWorkload};
use crate::workload::{TraceStream, Workload};

/// The eight applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Breadth-First Search (GAP).
    Bfs,
    /// Single-Source Shortest Paths (GAP).
    Sssp,
    /// PageRank (GAP).
    PageRank,
    /// canneal (PARSEC).
    Canneal,
    /// omnetpp (SPEC CPU2017).
    Omnetpp,
    /// xalancbmk (SPEC CPU2017).
    Xalancbmk,
    /// dedup (PARSEC).
    Dedup,
    /// mcf (SPEC CPU2017).
    Mcf,
}

impl AppId {
    /// All applications in the paper's figure order.
    pub const ALL: [AppId; 8] = [
        AppId::Bfs,
        AppId::Sssp,
        AppId::PageRank,
        AppId::Canneal,
        AppId::Omnetpp,
        AppId::Xalancbmk,
        AppId::Dedup,
        AppId::Mcf,
    ];

    /// The three graph workloads (the paper's most TLB-sensitive set,
    /// used in Figs. 6–8).
    pub const GRAPH: [AppId; 3] = [AppId::Bfs, AppId::Sssp, AppId::PageRank];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Bfs => "BFS",
            AppId::Sssp => "SSSP",
            AppId::PageRank => "PR",
            AppId::Canneal => "canneal",
            AppId::Omnetpp => "omnetpp",
            AppId::Xalancbmk => "xalancbmk",
            AppId::Dedup => "dedup",
            AppId::Mcf => "mcf",
        }
    }

    /// Whether this is one of the graph kernels.
    pub fn is_graph(self) -> bool {
        matches!(self, AppId::Bfs | AppId::Sssp | AppId::PageRank)
    }
}

impl core::fmt::Display for AppId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The graph datasets of Table 1, approximated by R-MAT parameterisations
/// (see DESIGN.md's substitution table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Graph500 Kronecker parameters (the paper's "Kronecker 25" at a
    /// smaller scale).
    Kronecker,
    /// Social-network-like skew (the "Twitter" stand-in).
    Twitter,
    /// Web-crawl-like skew (the "Sd1 Web" stand-in).
    Web,
}

impl Dataset {
    /// All datasets.
    pub const ALL: [Dataset; 3] = [Dataset::Kronecker, Dataset::Twitter, Dataset::Web];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Kronecker => "Kronecker",
            Dataset::Twitter => "Twitter",
            Dataset::Web => "Sd1Web",
        }
    }

    /// R-MAT parameters at `scale`.
    pub fn rmat(self, scale: u32) -> RmatParams {
        match self {
            Dataset::Kronecker => RmatParams::kronecker(scale),
            Dataset::Twitter => RmatParams::social(scale),
            Dataset::Web => RmatParams::web(scale),
        }
    }
}

impl core::fmt::Display for Dataset {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One row of the paper's Table 1 (applications, inputs, footprints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogRow {
    /// The application.
    pub app: AppId,
    /// Input description as printed in the paper.
    pub input: &'static str,
    /// The paper's reported footprint, bytes.
    pub paper_footprint_bytes: u64,
}

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

/// The paper's Table 1 contents (one row per app/input pair).
pub fn paper_table1() -> Vec<CatalogRow> {
    vec![
        CatalogRow {
            app: AppId::Bfs,
            input: "Kronecker 25",
            paper_footprint_bytes: 10 * GB,
        },
        CatalogRow {
            app: AppId::Bfs,
            input: "Twitter",
            paper_footprint_bytes: 17 * GB,
        },
        CatalogRow {
            app: AppId::Bfs,
            input: "Sd1 Web",
            paper_footprint_bytes: 19 * GB,
        },
        CatalogRow {
            app: AppId::Sssp,
            input: "Kronecker 25",
            paper_footprint_bytes: 19 * GB,
        },
        CatalogRow {
            app: AppId::Sssp,
            input: "Twitter",
            paper_footprint_bytes: 34 * GB,
        },
        CatalogRow {
            app: AppId::Sssp,
            input: "Sd1 Web",
            paper_footprint_bytes: 38 * GB,
        },
        CatalogRow {
            app: AppId::PageRank,
            input: "Kronecker 25",
            paper_footprint_bytes: 10 * GB,
        },
        CatalogRow {
            app: AppId::PageRank,
            input: "Twitter",
            paper_footprint_bytes: 17 * GB,
        },
        CatalogRow {
            app: AppId::PageRank,
            input: "Sd1 Web",
            paper_footprint_bytes: 19 * GB,
        },
        CatalogRow {
            app: AppId::Canneal,
            input: "native (98MB)",
            paper_footprint_bytes: 860 * MB,
        },
        CatalogRow {
            app: AppId::Dedup,
            input: "native (672MB)",
            paper_footprint_bytes: 838 * MB,
        },
        CatalogRow {
            app: AppId::Mcf,
            input: "native (3.2MB)",
            paper_footprint_bytes: 5 * GB,
        },
        CatalogRow {
            app: AppId::Omnetpp,
            input: "native (18MB)",
            paper_footprint_bytes: 252 * MB,
        },
        CatalogRow {
            app: AppId::Xalancbmk,
            input: "native (56MB)",
            paper_footprint_bytes: 427 * MB,
        },
    ]
}

/// Scale knob for workload instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadScale {
    /// `log2` vertex count for graph workloads.
    pub graph_scale: u32,
    /// Scale for the synthetic PARSEC/SPEC stand-ins.
    pub synth: SynthScale,
    /// Whether graph inputs are DBG-sorted (the paper reports the geomean
    /// of sorted and unsorted variants).
    pub dbg_sorted: bool,
}

impl WorkloadScale {
    /// Tiny scale for unit tests (sub-second traces).
    pub const TEST: WorkloadScale = WorkloadScale {
        graph_scale: 12,
        synth: SynthScale::TEST,
        dbg_sorted: false,
    };

    /// Default benchmark scale.
    pub const BENCH: WorkloadScale = WorkloadScale {
        graph_scale: 18,
        synth: SynthScale::BENCH,
        dbg_sorted: false,
    };
}

/// A workload instance, either graph or synthetic.
#[derive(Debug, Clone)]
pub enum AnyWorkload {
    /// A graph-kernel workload.
    Graph(GraphWorkload),
    /// A synthetic PARSEC/SPEC stand-in.
    Synth(SyntheticWorkload),
}

impl Workload for AnyWorkload {
    fn name(&self) -> &str {
        match self {
            AnyWorkload::Graph(w) => w.name(),
            AnyWorkload::Synth(w) => w.name(),
        }
    }

    fn regions(&self) -> Vec<hpage_types::Region> {
        match self {
            AnyWorkload::Graph(w) => w.regions(),
            AnyWorkload::Synth(w) => w.regions(),
        }
    }

    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = hpage_types::MemoryAccess> + Send + '_> {
        match self {
            AnyWorkload::Graph(w) => w.thread_trace(thread, threads),
            AnyWorkload::Synth(w) => w.thread_trace(thread, threads),
        }
    }

    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        match self {
            AnyWorkload::Graph(w) => w.thread_stream(thread, threads),
            AnyWorkload::Synth(w) => w.thread_stream(thread, threads),
        }
    }
}

/// Instantiates an application on a dataset at the given scale. The
/// `dataset` is ignored for non-graph apps. Deterministic in `seed`.
pub fn instantiate(app: AppId, dataset: Dataset, scale: WorkloadScale, seed: u64) -> AnyWorkload {
    match app {
        AppId::Bfs | AppId::Sssp | AppId::PageRank => {
            let kernel = match app {
                AppId::Bfs => GraphKernel::Bfs,
                AppId::Sssp => GraphKernel::Sssp,
                _ => GraphKernel::PageRank,
            };
            let mut graph = generate_rmat(&dataset.rmat(scale.graph_scale), seed);
            let mut name = dataset.name().to_string();
            if scale.dbg_sorted {
                graph = degree_based_grouping(&graph).0;
                name.push_str("-dbg");
            }
            AnyWorkload::Graph(GraphWorkload::new(kernel, graph, &name))
        }
        AppId::Canneal => AnyWorkload::Synth(synth::canneal(scale.synth, seed)),
        AppId::Omnetpp => AnyWorkload::Synth(synth::omnetpp(scale.synth, seed)),
        AppId::Xalancbmk => AnyWorkload::Synth(synth::xalancbmk(scale.synth, seed)),
        AppId::Dedup => AnyWorkload::Synth(synth::dedup(scale.synth, seed)),
        AppId::Mcf => AnyWorkload::Synth(synth::mcf(scale.synth, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let rows = paper_table1();
        assert_eq!(rows.len(), 14);
        // Spot-check the paper's numbers.
        let bfs_kron = rows
            .iter()
            .find(|r| r.app == AppId::Bfs && r.input == "Kronecker 25")
            .unwrap();
        assert_eq!(bfs_kron.paper_footprint_bytes, 10 * GB);
        let sssp_web = rows
            .iter()
            .find(|r| r.app == AppId::Sssp && r.input == "Sd1 Web")
            .unwrap();
        assert_eq!(sssp_web.paper_footprint_bytes, 38 * GB);
    }

    #[test]
    fn all_apps_instantiate() {
        for app in AppId::ALL {
            let w = instantiate(app, Dataset::Kronecker, WorkloadScale::TEST, 1);
            assert!(w.footprint_bytes() > 0, "{app} has no footprint");
            assert!(w.trace().next().is_some(), "{app} trace is empty");
        }
    }

    #[test]
    fn graph_datasets_differ() {
        let a = instantiate(AppId::Bfs, Dataset::Kronecker, WorkloadScale::TEST, 1);
        let b = instantiate(AppId::Bfs, Dataset::Twitter, WorkloadScale::TEST, 1);
        // Social preset has a higher edge factor, so a bigger footprint.
        assert!(b.footprint_bytes() > a.footprint_bytes());
    }

    #[test]
    fn dbg_variant_changes_trace_not_footprint() {
        let mut scale = WorkloadScale::TEST;
        let plain = instantiate(AppId::PageRank, Dataset::Kronecker, scale, 1);
        scale.dbg_sorted = true;
        let sorted = instantiate(AppId::PageRank, Dataset::Kronecker, scale, 1);
        assert_eq!(plain.footprint_bytes(), sorted.footprint_bytes());
        assert!(sorted.name().contains("dbg"));
        let t1: Vec<_> = plain.trace().take(1000).collect();
        let t2: Vec<_> = sorted.trace().take(1000).collect();
        assert_ne!(t1, t2);
    }

    #[test]
    fn names_and_classification() {
        assert_eq!(AppId::PageRank.name(), "PR");
        assert!(AppId::Bfs.is_graph());
        assert!(!AppId::Mcf.is_graph());
        assert_eq!(AppId::GRAPH.len(), 3);
        assert_eq!(Dataset::Web.to_string(), "Sd1Web");
    }
}
