//! Page-reuse-distance characterisation (§3.1, Fig. 2 of the paper).
//!
//! Reuse distance of a page is "the number of accesses to other pages
//! between two accesses to a given page". Measuring it at both 4 KiB and
//! 2 MiB granularity partitions pages into the paper's three classes:
//!
//! * **TLB-friendly** — low 4 KiB reuse distance: the base-page TLB
//!   already works; promotion buys little.
//! * **HUB** (High-reUse TLB-sensitive) — high 4 KiB but low 2 MiB reuse
//!   distance: the best promotion candidates.
//! * **Low-reuse** — high at both granularities: promotion cannot help.
//!
//! The classification threshold defaults to 1024, the entry count of the
//! paper's L2 TLB.

use hpage_types::{MemoryAccess, PageSize, VirtAddr, Vpn};
use std::collections::HashMap;

/// Per-page reuse statistics at one granularity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct PageReuse {
    last_access: u64,
    reuses: u64,
    distance_sum: u64,
    accesses: u64,
}

/// The paper's three access classes (Fig. 2's colours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseClass {
    /// Low 4 KiB reuse distance (green in Fig. 2).
    TlbFriendly,
    /// High 4 KiB, low 2 MiB reuse distance (blue): promotion candidates.
    Hub,
    /// High reuse distance at both sizes (red).
    LowReuse,
}

impl core::fmt::Display for ReuseClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReuseClass::TlbFriendly => write!(f, "TLB-friendly"),
            ReuseClass::Hub => write!(f, "HUB"),
            ReuseClass::LowReuse => write!(f, "low-reuse"),
        }
    }
}

/// One 4 KiB page's measured profile: the (x, y) point of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageProfile {
    /// The 4 KiB page.
    pub page: Vpn,
    /// Mean reuse distance at 4 KiB granularity (x-axis), `None` when the
    /// page was touched once (no reuse observed).
    pub reuse_4k: Option<f64>,
    /// Mean reuse distance of the containing 2 MiB region (y-axis).
    pub reuse_2m: Option<f64>,
    /// Total accesses to the page.
    pub accesses: u64,
    /// The paper's classification of the page.
    pub class: ReuseClass,
}

/// Streaming reuse-distance analyzer over 4 KiB pages and their 2 MiB
/// regions.
#[derive(Debug, Clone)]
pub struct ReuseAnalyzer {
    threshold: f64,
    time: u64,
    pages_4k: HashMap<u64, PageReuse>,
    regions_2m: HashMap<u64, PageReuse>,
}

impl ReuseAnalyzer {
    /// Creates an analyzer with the paper's default threshold of 1024
    /// (a common L2 TLB entry count).
    pub fn new() -> Self {
        Self::with_threshold(1024.0)
    }

    /// Creates an analyzer with a custom low/high reuse threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not strictly positive.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        ReuseAnalyzer {
            threshold,
            time: 0,
            pages_4k: HashMap::new(),
            regions_2m: HashMap::new(),
        }
    }

    /// The classification threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Total accesses observed.
    pub fn access_count(&self) -> u64 {
        self.time
    }

    /// Observes one access.
    pub fn observe(&mut self, access: &MemoryAccess) {
        self.observe_addr(access.addr);
    }

    /// Observes one address.
    pub fn observe_addr(&mut self, addr: VirtAddr) {
        self.time += 1;
        let t = self.time;
        for (map, key) in [
            (&mut self.pages_4k, addr.vpn(PageSize::Base4K).index()),
            (&mut self.regions_2m, addr.vpn(PageSize::Huge2M).index()),
        ] {
            let entry = map.entry(key).or_default();
            if entry.accesses > 0 {
                entry.reuses += 1;
                entry.distance_sum += t - entry.last_access - 1;
            }
            entry.accesses += 1;
            entry.last_access = t;
        }
    }

    /// Consumes an entire trace.
    pub fn observe_all<I: IntoIterator<Item = MemoryAccess>>(&mut self, trace: I) {
        for a in trace {
            self.observe(&a);
        }
    }

    fn mean(r: &PageReuse) -> Option<f64> {
        (r.reuses > 0).then(|| r.distance_sum as f64 / r.reuses as f64)
    }

    fn classify(&self, reuse_4k: Option<f64>, reuse_2m: Option<f64>) -> ReuseClass {
        let low_4k = reuse_4k.map(|d| d < self.threshold).unwrap_or(false);
        let low_2m = reuse_2m.map(|d| d < self.threshold).unwrap_or(false);
        if low_4k {
            ReuseClass::TlbFriendly
        } else if low_2m {
            ReuseClass::Hub
        } else {
            ReuseClass::LowReuse
        }
    }

    /// Produces the per-4 KiB-page profiles (Fig. 2's scatter points).
    pub fn profiles(&self) -> Vec<PageProfile> {
        let mut out: Vec<PageProfile> = self
            .pages_4k
            .iter()
            .map(|(&idx, r4)| {
                let page = Vpn::new(idx, PageSize::Base4K);
                let region = page.containing(PageSize::Huge2M);
                let r2 = self.regions_2m.get(&region.index());
                let reuse_4k = Self::mean(r4);
                let reuse_2m = r2.and_then(Self::mean);
                PageProfile {
                    page,
                    reuse_4k,
                    reuse_2m,
                    accesses: r4.accesses,
                    class: self.classify(reuse_4k, reuse_2m),
                }
            })
            .collect();
        out.sort_by_key(|p| p.page.index());
        out
    }

    /// 2 MiB regions ranked by how many of their constituent pages are
    /// HUBs, weighted by access count — the "ideal" promotion-candidate
    /// ranking that the PCC approximates in hardware. Returns
    /// `(region, hub_accesses)` pairs, hottest first.
    pub fn hub_regions(&self) -> Vec<(Vpn, u64)> {
        let mut per_region: HashMap<u64, u64> = HashMap::new();
        for p in self.profiles() {
            if p.class == ReuseClass::Hub {
                *per_region
                    .entry(p.page.containing(PageSize::Huge2M).index())
                    .or_default() += p.accesses;
            }
        }
        let mut out: Vec<(Vpn, u64)> = per_region
            .into_iter()
            .map(|(idx, w)| (Vpn::new(idx, PageSize::Huge2M), w))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.index().cmp(&b.0.index())));
        out
    }

    /// Counts pages per class: `(tlb_friendly, hub, low_reuse)`.
    pub fn class_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0u64, 0u64, 0u64);
        for p in self.profiles() {
            match p.class {
                ReuseClass::TlbFriendly => counts.0 += 1,
                ReuseClass::Hub => counts.1 += 1,
                ReuseClass::LowReuse => counts.2 += 1,
            }
        }
        counts
    }
}

impl Default for ReuseAnalyzer {
    fn default() -> Self {
        ReuseAnalyzer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(a: &mut ReuseAnalyzer, addr: u64) {
        a.observe_addr(VirtAddr::new(addr));
    }

    #[test]
    fn reuse_distance_definition() {
        // Access page A, then 3 other pages, then A again:
        // reuse distance of A's second access is 3.
        let mut a = ReuseAnalyzer::new();
        touch(&mut a, 0x0000); // A
        touch(&mut a, 0x1000);
        touch(&mut a, 0x2000);
        touch(&mut a, 0x3000);
        touch(&mut a, 0x0000); // A again
        let profiles = a.profiles();
        let pa = profiles.iter().find(|p| p.page.index() == 0).unwrap();
        assert_eq!(pa.reuse_4k, Some(3.0));
        assert_eq!(pa.accesses, 2);
    }

    #[test]
    fn single_touch_has_no_reuse() {
        let mut a = ReuseAnalyzer::new();
        touch(&mut a, 0x1000);
        let p = &a.profiles()[0];
        assert_eq!(p.reuse_4k, None);
        assert_eq!(p.class, ReuseClass::LowReuse);
    }

    #[test]
    fn back_to_back_accesses_distance_zero() {
        let mut a = ReuseAnalyzer::new();
        touch(&mut a, 0x1000);
        touch(&mut a, 0x1008); // same page
        let p = &a.profiles()[0];
        assert_eq!(p.reuse_4k, Some(0.0));
        assert_eq!(p.class, ReuseClass::TlbFriendly);
    }

    #[test]
    fn hub_detection() {
        // Cycle over 2000 distinct 4K pages inside the SAME 2MB... no:
        // a 2MB region has 512 pages. Build a HUB: pages in one 2MB region
        // are revisited with 4K distance > threshold but 2M distance <
        // threshold. Interleave: for each round, touch each of 1500 pages
        // spread over 3 regions; 4K reuse distance = 1499 (> 1024), while
        // each 2M region is touched every 3rd access (distance 2).
        let mut a = ReuseAnalyzer::with_threshold(1024.0);
        let region_base = |r: u64| 0x4000_0000u64 + r * 0x20_0000;
        for _round in 0..4 {
            for p in 0..500u64 {
                for r in 0..3u64 {
                    touch(&mut a, region_base(r) + p * 0x1000);
                }
            }
        }
        let (friendly, hub, low) = a.class_counts();
        assert_eq!(friendly, 0);
        assert_eq!(low, 0);
        assert_eq!(hub, 1500);
        // All three regions rank as HUB regions.
        assert_eq!(a.hub_regions().len(), 3);
    }

    #[test]
    fn low_reuse_detection() {
        // Touch 3000 pages spread over 3000 distinct 2MB regions twice:
        // both 4K and 2M distances are 2999 > 1024.
        let mut a = ReuseAnalyzer::new();
        for _ in 0..2 {
            for r in 0..3000u64 {
                touch(&mut a, r * 0x20_0000);
            }
        }
        let (friendly, hub, low) = a.class_counts();
        assert_eq!((friendly, hub), (0, 0));
        assert_eq!(low, 3000);
        assert!(a.hub_regions().is_empty());
    }

    #[test]
    fn tlb_friendly_detection() {
        // Sequential sweep with immediate re-touches: 1000 accesses of
        // 8 bytes span two pages, each touched hundreds of times at
        // distance 0.
        let mut a = ReuseAnalyzer::new();
        for i in 0..1000u64 {
            touch(&mut a, i * 8);
        }
        let (friendly, hub, low) = a.class_counts();
        assert_eq!(friendly, 2);
        assert_eq!(hub + low, 0);
    }

    #[test]
    fn hub_regions_ranked_by_weight() {
        let mut a = ReuseAnalyzer::with_threshold(10.0);
        // Two HUB regions; region 1 accessed twice as much.
        // Pattern: interleave 40 distinct pages (>10 distance at 4K),
        // while each region repeats within distance 10? Simpler: craft
        // distances directly.
        // Region A pages: 0x20_0000 + p*0x1000 (p in 0..20)
        // Region B pages: 0x40_0000 + p*0x1000 (p in 0..20)
        for _round in 0..6 {
            for p in 0..20u64 {
                touch(&mut a, 0x2000_0000 + p * 0x1000);
                touch(&mut a, 0x4000_0000 + p * 0x1000);
            }
        }
        // 4K distance = 39 (>10); 2M distance = 1 (<10): both HUB regions.
        let hubs = a.hub_regions();
        assert_eq!(hubs.len(), 2);
        // Now heat region A with extra accesses.
        for _ in 0..3 {
            for p in 0..20u64 {
                touch(&mut a, 0x2000_0000 + p * 0x1000);
                touch(&mut a, 0x4000_0000 + (p % 2) * 0x1000); // keep B warm-ish
            }
        }
        let hubs = a.hub_regions();
        assert_eq!(hubs[0].0.base().raw(), 0x2000_0000);
        assert!(hubs[0].1 > hubs[1].1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_threshold_panics() {
        let _ = ReuseAnalyzer::with_threshold(0.0);
    }

    #[test]
    fn observe_all_consumes_iterator() {
        let mut a = ReuseAnalyzer::new();
        a.observe_all((0..10u64).map(|i| MemoryAccess::read(VirtAddr::new(i * 0x1000))));
        assert_eq!(a.access_count(), 10);
        assert_eq!(a.profiles().len(), 10);
    }
}
