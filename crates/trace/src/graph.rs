//! Graph substrate: CSR storage, synthetic network generators, and
//! degree-based grouping (DBG) reordering.
//!
//! The paper evaluates BFS/SSSP/PageRank on a synthetic power-law network
//! (Kronecker scale 25), a social network (Twitter) and a web crawl
//! (Sd1 Arc), each in DBG-sorted and unsorted variants. We generate
//! R-MAT/Kronecker graphs with tunable skew to stand in for all three
//! (see DESIGN.md), at configurable scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph in Compressed Sparse Row form.
///
/// `offsets` has `n + 1` entries; the out-neighbours of vertex `u` are
/// `neighbors[offsets[u]..offsets[u+1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list over `n` vertices.
    /// Self-loops are kept; duplicate edges are kept (multigraph), which
    /// matches how R-MAT generators feed the GAP kernels.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n as usize];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; edges.len()];
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            neighbors[*c as usize] = v;
            *c += 1;
        }
        CsrGraph { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// Out-degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: u32) -> u64 {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// The CSR offset array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The CSR neighbour array.
    pub fn neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// Out-neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors_of(&self, u: u32) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Relabels vertices with `perm` (new id = `perm[old id]`), returning
    /// the renumbered graph. Used by [`degree_based_grouping`].
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[u32]) -> CsrGraph {
        let n = self.vertex_count();
        assert_eq!(perm.len(), n as usize, "perm length must equal n");
        let mut seen = vec![false; n as usize];
        for &p in perm {
            assert!(p < n && !seen[p as usize], "perm must be a permutation");
            seen[p as usize] = true;
        }
        let mut edges = Vec::with_capacity(self.edge_count() as usize);
        for u in 0..n {
            for &v in self.neighbors_of(u) {
                edges.push((perm[u as usize], perm[v as usize]));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }
}

/// Parameters of the R-MAT (recursive matrix) generator, the standard
/// Kronecker-graph construction used by Graph500 and the GAP suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// `log2` of the vertex count.
    pub scale: u32,
    /// Average directed edges per vertex.
    pub edge_factor: u32,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl RmatParams {
    /// Graph500/GAP Kronecker parameters (A=0.57, B=C=0.19): a heavily
    /// skewed power-law network, the paper's "Kronecker 25" at smaller
    /// scales.
    pub fn kronecker(scale: u32) -> Self {
        RmatParams {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// A milder skew approximating social networks (the Twitter stand-in).
    pub fn social(scale: u32) -> Self {
        RmatParams {
            scale,
            edge_factor: 24,
            a: 0.50,
            b: 0.23,
            c: 0.23,
        }
    }

    /// Skew with locality bias approximating web crawls (the Sd1 Web
    /// stand-in): stronger diagonal, so ids cluster.
    pub fn web(scale: u32) -> Self {
        RmatParams {
            scale,
            edge_factor: 20,
            a: 0.62,
            b: 0.15,
            c: 0.15,
        }
    }

    /// Uniform Erdős–Rényi-style edges (no skew); used to contrast
    /// power-law behaviour in tests.
    pub fn uniform(scale: u32) -> Self {
        RmatParams {
            scale,
            edge_factor: 16,
            a: 0.25,
            b: 0.25,
            c: 0.25,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn vertex_count(&self) -> u32 {
        1u32 << self.scale
    }

    /// Number of generated directed edges.
    pub fn edge_count(&self) -> u64 {
        u64::from(self.vertex_count()) * u64::from(self.edge_factor)
    }
}

/// Generates an R-MAT graph deterministically from `seed`.
///
/// # Panics
///
/// Panics if `scale` is 0 or ≥ 31, or the quadrant probabilities exceed 1.
pub fn generate_rmat(params: &RmatParams, seed: u64) -> CsrGraph {
    assert!(
        params.scale > 0 && params.scale < 31,
        "scale must be 1..=30"
    );
    let d = 1.0 - params.a - params.b - params.c;
    assert!(d >= -1e-9, "quadrant probabilities must sum to <= 1");
    let n = params.vertex_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(params.edge_count() as usize);
    for _ in 0..params.edge_count() {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..params.scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < params.a {
                // top-left: neither bit set
            } else if r < params.a + params.b {
                v |= 1;
            } else if r < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u % n, v % n));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Degree-Based Grouping (Faldu et al., IISWC'19): coarsely reorders
/// vertices so that similarly-hot (high-degree) vertices share pages,
/// improving cache and TLB locality. Vertices are bucketed by
/// `floor(log2(degree + 1))`, buckets ordered hottest-first, original
/// order preserved within a bucket. Returns the relabeled graph and the
/// permutation used (`perm[old] = new`).
pub fn degree_based_grouping(graph: &CsrGraph) -> (CsrGraph, Vec<u32>) {
    let n = graph.vertex_count();
    let bucket_of = |u: u32| 64 - (graph.degree(u) + 1).leading_zeros(); // ~log2
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by_key(|&u| core::cmp::Reverse(bucket_of(u)));
    let mut perm = vec![0u32; n as usize];
    for (new_id, &old_id) in order.iter().enumerate() {
        perm[old_id as usize] = new_id as u32;
    }
    (graph.relabel(&perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3, plus hub 0 -> {2, 3}
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2), (0, 3)])
    }

    #[test]
    fn csr_construction() {
        let g = path_graph();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 0);
        let mut n0 = g.neighbors_of(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2, 3]);
        assert_eq!(g.offsets().len(), 5);
        assert_eq!(*g.offsets().last().unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn rmat_is_deterministic() {
        let p = RmatParams::kronecker(8);
        let g1 = generate_rmat(&p, 42);
        let g2 = generate_rmat(&p, 42);
        assert_eq!(g1, g2);
        let g3 = generate_rmat(&p, 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn rmat_counts_match_params() {
        let p = RmatParams::kronecker(10);
        let g = generate_rmat(&p, 1);
        assert_eq!(g.vertex_count(), 1024);
        assert_eq!(g.edge_count(), 1024 * 16);
    }

    #[test]
    fn kronecker_is_skewed_uniform_is_not() {
        let gk = generate_rmat(&RmatParams::kronecker(12), 7);
        let gu = generate_rmat(&RmatParams::uniform(12), 7);
        let max_deg = |g: &CsrGraph| (0..g.vertex_count()).map(|u| g.degree(u)).max().unwrap();
        // Power-law: the hottest vertex is far above the mean degree (16);
        // uniform: it stays near the mean.
        assert!(max_deg(&gk) > 10 * 16, "kronecker max degree too low");
        assert!(max_deg(&gu) < 5 * 16, "uniform max degree too high");
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = path_graph();
        let perm = vec![3, 2, 1, 0]; // reverse ids
        let r = g.relabel(&perm);
        assert_eq!(r.edge_count(), g.edge_count());
        assert_eq!(r.degree(3), 3); // old vertex 0
        let mut n3 = r.neighbors_of(3).to_vec();
        n3.sort_unstable();
        assert_eq!(n3, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn relabel_rejects_non_permutation() {
        let g = path_graph();
        let _ = g.relabel(&[0, 0, 1, 2]);
    }

    #[test]
    fn dbg_sorts_hot_vertices_first() {
        let g = generate_rmat(&RmatParams::kronecker(10), 3);
        let (sorted, perm) = degree_based_grouping(&g);
        assert_eq!(sorted.edge_count(), g.edge_count());
        // The new id 0 vertex must come from the hottest bucket.
        let old_of_new0 = perm.iter().position(|&p| p == 0).unwrap() as u32;
        let hottest = (0..g.vertex_count()).map(|u| g.degree(u)).max().unwrap();
        let bucket = |d: u64| 64 - (d + 1).leading_zeros();
        assert_eq!(bucket(g.degree(old_of_new0)), bucket(hottest));
        // Degrees are non-increasing at bucket granularity.
        let degs: Vec<u64> = (0..sorted.vertex_count())
            .map(|u| sorted.degree(u))
            .collect();
        let buckets: Vec<u32> = degs.iter().map(|&d| bucket(d)).collect();
        assert!(buckets.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn dbg_is_involution_safe() {
        // Applying DBG to an already-sorted graph keeps it sorted.
        let g = generate_rmat(&RmatParams::kronecker(9), 11);
        let (s1, _) = degree_based_grouping(&g);
        let (s2, _) = degree_based_grouping(&s1);
        let degs = |g: &CsrGraph| {
            (0..g.vertex_count())
                .map(|u| g.degree(u))
                .collect::<Vec<_>>()
        };
        assert_eq!(degs(&s1), degs(&s2));
    }
}
