//! Minimal memory-mapping support for the zero-copy trace reader.
//!
//! The replay path wants the trace file paged in lazily by the kernel
//! instead of slurped through `read(2)` into a heap buffer, so huge
//! recorded traces replay at memory speed without a load phase. We bind
//! the three syscalls we need (`mmap`, `munmap`, `madvise`) directly —
//! the workspace vendors no `libc` crate, but the symbols are in every
//! libc the std links against on Unix.
//!
//! Non-Unix builds fall back to reading the file into an owned buffer:
//! same bytes, same API, no mapping.

#![allow(unsafe_code)]

use std::fs::File;
use std::io;

/// Page-in advice forwarded to `madvise(2)`. Purely a performance hint;
/// failures are ignored (older kernels reject some advice on
/// file-backed mappings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect sequential reads: aggressive readahead.
    Sequential,
    /// Expect access soon: start paging in now.
    WillNeed,
    /// Back with transparent huge pages if the kernel can.
    HugePage,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;
    pub const MADV_HUGEPAGE: c_int = 14;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

/// Best-effort `madvise` over an arbitrary buffer (used by the
/// huge-page-aligned allocator as well as file mappings). The address
/// range must be page-aligned for the kernel to accept it; errors are
/// swallowed — advice is never load-bearing.
pub(crate) fn advise_raw(ptr: *mut u8, len: usize, advice: Advice) {
    #[cfg(unix)]
    {
        let adv = match advice {
            Advice::Sequential => sys::MADV_SEQUENTIAL,
            Advice::WillNeed => sys::MADV_WILLNEED,
            Advice::HugePage => sys::MADV_HUGEPAGE,
        };
        if len > 0 {
            // SAFETY: the caller owns [ptr, ptr+len); madvise does not
            // invalidate or mutate the mapping's contents for these
            // advice values, and an error return is ignored.
            unsafe {
                let _ = sys::madvise(ptr.cast(), len, adv);
            }
        }
    }
    #[cfg(not(unix))]
    {
        let _ = (ptr, len, advice);
    }
}

/// A read-only memory map of an entire file (or, off Unix, an owned
/// copy of its contents — callers cannot tell the difference).
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its
// whole lifetime, so shared references can move across threads freely.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Propagates metadata/`mmap` failures from the OS.
    #[cfg(unix)]
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length maps; an empty file needs no
            // mapping to present an empty slice.
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is a valid open file for the duration of the call;
        // a fresh PROT_READ/MAP_PRIVATE mapping aliases nothing we hold.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr.cast(),
            len,
        })
    }

    /// Fallback for targets without `mmap`: reads the file into memory.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    #[cfg(not(unix))]
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        use std::io::Read;

        let mut buf = Vec::new();
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Mmap { buf })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: [ptr, ptr+len) is a live PROT_READ mapping owned
            // by self; nothing mutates it (MAP_PRIVATE isolates us from
            // concurrent writers of the underlying file, bar the usual
            // mmap coherence caveat, which read-only replay accepts).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forwards paging advice to the kernel (no-op off Unix or on
    /// kernels that reject the advice).
    pub fn advise(&self, advice: Advice) {
        #[cfg(unix)]
        advise_raw(self.ptr, self.len, advice);
        #[cfg(not(unix))]
        let _ = advice;
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: ptr/len came from a successful mmap that nothing
            // else unmapped; all slices borrowed from self are gone.
            unsafe {
                let _ = sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hpage-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload = b"zero-copy replay".repeat(1000);
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        map.advise(Advice::Sequential);
        map.advise(Advice::WillNeed);
        assert_eq!(map.as_slice(), &payload[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }
}
