//! Workload substrate: graph generators and kernels, synthetic
//! application stand-ins, deterministic address-space layout, and the
//! page-reuse-distance analysis of the paper's §3.1.
//!
//! Every workload implements [`Workload`]: it owns a laid-out virtual
//! address space and emits the memory-access stream its execution
//! produces. The streams feed the TLB+PCC simulation in `hpage-sim`.
//!
//! # Example
//!
//! ```
//! use hpage_trace::{instantiate, AppId, Dataset, Workload, WorkloadScale};
//!
//! let bfs = instantiate(AppId::Bfs, Dataset::Kronecker, WorkloadScale::TEST, 42);
//! let first_thousand: Vec<_> = bfs.trace().take(1000).collect();
//! assert_eq!(first_thousand.len(), 1000);
//! ```

// `deny` rather than `forbid`: the mmap/hugebuf modules opt back in
// (each unsafe block carries its SAFETY argument); everything else
// stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod graph;
mod hpt2;
mod hugebuf;
mod io;
mod kernels;
mod layout;
mod mmap;
mod recorded;
mod reuse;
mod synth;
mod wcache;
mod workload;

pub use catalog::{
    instantiate, paper_table1, AnyWorkload, AppId, CatalogRow, Dataset, WorkloadScale,
};
pub use graph::{degree_based_grouping, generate_rmat, CsrGraph, RmatParams};
pub use hpt2::{Hpt2Reader, Hpt2Stream, Hpt2Writer, MmapTrace, DEFAULT_BLOCK_RECORDS};
pub use hugebuf::{HugeVec, HUGE_PAGE_BYTES};
pub use io::{TraceReader, TraceWriter};
pub use kernels::{GraphKernel, GraphWorkload};
pub use layout::{AddressSpaceBuilder, ArrayLayout, HEAP_BASE};
pub use mmap::{Advice, Mmap};
pub use recorded::RecordedWorkload;
pub use reuse::{PageProfile, ReuseAnalyzer, ReuseClass};
pub use synth::{
    canneal, dedup, gups, hashjoin, mcf, omnetpp, xalancbmk, Pattern, SynthScale, SyntheticBuilder,
    SyntheticWorkload,
};
pub use wcache::{CacheStats, WorkloadCache, WorkloadKey};
pub use workload::{IterStream, StreamIter, TraceStream, Workload};
