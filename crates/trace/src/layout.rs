//! Virtual address-space layout for workload data structures.
//!
//! Each workload lays its arrays out in a deterministic virtual address
//! space (the paper disables ASLR via `randomize_va_space=0` for the same
//! reason: promoted regions must be identifiable across runs). Arrays are
//! 2 MiB-aligned and separated by an unmapped guard gap so that distinct
//! data structures never share a huge-page region.

use hpage_types::{PageSize, Region, VirtAddr};

/// Start of the simulated heap. Chosen high enough to be far from a null
/// page yet small enough that 40-bit PCC tags (2 MiB prefixes of a
/// sub-61-bit VA space) never truncate.
pub const HEAP_BASE: u64 = 0x1000_0000_0000;

/// An array of fixed-size elements placed at a known virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLayout {
    base: VirtAddr,
    element_bytes: u64,
    len: u64,
}

impl ArrayLayout {
    /// Creates an array layout.
    ///
    /// # Panics
    ///
    /// Panics if `element_bytes` is zero.
    pub fn new(base: VirtAddr, element_bytes: u64, len: u64) -> Self {
        assert!(element_bytes > 0, "elements must have nonzero size");
        ArrayLayout {
            base,
            element_bytes,
            len,
        }
    }

    /// Base virtual address of element 0.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of one element in bytes.
    pub fn element_bytes(&self) -> u64 {
        self.element_bytes
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.element_bytes * self.len
    }

    /// The virtual address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `i >= len`.
    pub fn addr_of(&self, i: u64) -> VirtAddr {
        debug_assert!(i < self.len, "array index {i} out of bounds {}", self.len);
        self.base.offset(i * self.element_bytes)
    }

    /// The region spanned by the whole array.
    pub fn region(&self) -> Region {
        Region::new(self.base, self.byte_len())
    }
}

/// Sequentially assigns 2 MiB-aligned base addresses to arrays, leaving an
/// unmapped 2 MiB guard region between consecutive arrays.
#[derive(Debug, Clone)]
pub struct AddressSpaceBuilder {
    cursor: u64,
    regions: Vec<Region>,
}

impl AddressSpaceBuilder {
    /// Starts laying out at [`HEAP_BASE`].
    pub fn new() -> Self {
        AddressSpaceBuilder {
            cursor: HEAP_BASE,
            regions: Vec::new(),
        }
    }

    /// Reserves an array of `len` elements of `element_bytes` each.
    pub fn array(&mut self, element_bytes: u64, len: u64) -> ArrayLayout {
        let base = VirtAddr::new(self.cursor).align_up(PageSize::Huge2M);
        let layout = ArrayLayout::new(base, element_bytes, len);
        let end = base.raw() + layout.byte_len().max(1);
        // Advance past the array plus one guard huge page.
        self.cursor =
            VirtAddr::new(end).align_up(PageSize::Huge2M).raw() + PageSize::Huge2M.bytes();
        self.regions.push(layout.region());
        layout
    }

    /// All regions reserved so far, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes of data reserved (excluding guard gaps) — the
    /// workload's memory footprint.
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len()).sum()
    }
}

impl Default for AddressSpaceBuilder {
    fn default() -> Self {
        AddressSpaceBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_2m_aligned_and_disjoint() {
        let mut b = AddressSpaceBuilder::new();
        let a1 = b.array(8, 1000);
        let a2 = b.array(4, 5000);
        assert!(a1.base().is_aligned(PageSize::Huge2M));
        assert!(a2.base().is_aligned(PageSize::Huge2M));
        // Guard gap: no shared 2MB region.
        let last_a1 = a1.region().end().raw() - 1;
        assert!(VirtAddr::new(last_a1).vpn(PageSize::Huge2M) < a2.base().vpn(PageSize::Huge2M));
        assert_eq!(b.footprint_bytes(), 8 * 1000 + 4 * 5000);
        assert_eq!(b.regions().len(), 2);
    }

    #[test]
    fn addressing_is_linear() {
        let a = ArrayLayout::new(VirtAddr::new(0x20_0000), 8, 10);
        assert_eq!(a.addr_of(0).raw(), 0x20_0000);
        assert_eq!(a.addr_of(3).raw(), 0x20_0000 + 24);
        assert_eq!(a.byte_len(), 80);
        assert_eq!(a.region().len(), 80);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_array_allowed() {
        let mut b = AddressSpaceBuilder::new();
        let a = b.array(8, 0);
        assert!(a.is_empty());
        assert_eq!(a.byte_len(), 0);
        // A subsequent array still gets a distinct region.
        let a2 = b.array(8, 10);
        assert_ne!(a.base(), a2.base());
    }

    #[test]
    #[should_panic(expected = "nonzero size")]
    fn zero_element_size_rejected() {
        let _ = ArrayLayout::new(VirtAddr::new(0), 0, 10);
    }

    #[test]
    fn heap_base_fits_40bit_2m_prefix() {
        // 2MB prefix of the highest address we might lay out must fit in
        // the PCC's 40-bit tag.
        let prefix = VirtAddr::new(HEAP_BASE + (1 << 40)).vpn(PageSize::Huge2M);
        assert!(prefix.index() < (1u64 << 40));
    }
}
