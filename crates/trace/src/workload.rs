//! The [`Workload`] abstraction: something that owns a virtual address
//! space layout and can emit the memory-access trace of its execution.

use hpage_types::{MemoryAccess, Region};

/// A chunked access-trace producer: the hot-path alternative to
/// `Box<dyn Iterator>`.
///
/// The simulator consumes billions of accesses; pulling each one
/// through a boxed iterator costs a virtual call per element and walls
/// off the generator from the optimizer. A `TraceStream` amortises the
/// dynamic dispatch to one `fill` call per chunk: concrete workloads
/// box their *concrete* iterator type, so the per-element loop inside
/// `fill` monomorphises and inlines.
///
/// The blanket implementation makes every access iterator a stream, so
/// `Box<dyn Iterator>` values (the [`Workload::thread_trace`] output)
/// still work — they just stay on the slow path.
pub trait TraceStream {
    /// Appends up to `max` accesses to `buf`, returning how many were
    /// produced. A return of 0 means the trace is exhausted (streams
    /// are not fused by contract, but every workload's trace ends
    /// permanently).
    fn fill(&mut self, buf: &mut Vec<MemoryAccess>, max: usize) -> usize;
}

impl<I: Iterator<Item = MemoryAccess>> TraceStream for I {
    fn fill(&mut self, buf: &mut Vec<MemoryAccess>, max: usize) -> usize {
        let before = buf.len();
        buf.extend(self.by_ref().take(max));
        buf.len() - before
    }
}

/// A workload that can be traced.
///
/// Implementations are deterministic: the same workload produces the same
/// trace every time, which is what lets the offline PCC simulation and the
/// replayed promotion schedule agree on addresses (the paper pins
/// `randomize_va_space=0` for exactly this property).
pub trait Workload {
    /// Short name ("BFS", "canneal", …) used in reports.
    fn name(&self) -> &str;

    /// The data regions the workload touches, in layout order. Their total
    /// length is the memory footprint the paper's utility curves
    /// normalise against.
    fn regions(&self) -> Vec<Region>;

    /// Total bytes of data (the paper's "footprint" column in Table 1).
    fn footprint_bytes(&self) -> u64 {
        self.regions().iter().map(|r| r.len()).sum()
    }

    /// The access trace of thread `thread` when the workload runs with
    /// `threads` total threads. Single-threaded workloads may ignore the
    /// arguments for `threads == 1`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `thread >= threads` or the workload does
    /// not support the requested thread count.
    ///
    /// The returned iterator is `Send` so the sharded simulation loop
    /// can pin each core's trace to a worker thread; workload state is
    /// plain data, so this costs implementations nothing.
    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_>;

    /// The access trace of thread `thread` as a chunked [`TraceStream`]
    /// — what the simulation hot loop consumes.
    ///
    /// The default adapts [`Self::thread_trace`] through the blanket
    /// iterator impl (correct, but dispatches per element); concrete
    /// workloads override it to box their concrete iterator type so
    /// `fill`'s inner loop monomorphises.
    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        Box::new(self.thread_trace(thread, threads))
    }

    /// Convenience: the single-threaded trace.
    fn trace(&self) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
        self.thread_trace(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::VirtAddr;

    struct Dummy;

    impl Workload for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn regions(&self) -> Vec<Region> {
            vec![
                Region::new(VirtAddr::new(0x1000), 100),
                Region::new(VirtAddr::new(0x10_0000), 50),
            ]
        }
        fn thread_trace(
            &self,
            thread: u32,
            threads: u32,
        ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
            assert!(thread < threads);
            Box::new(std::iter::once(MemoryAccess::read(VirtAddr::new(0x1000))))
        }
    }

    #[test]
    fn footprint_sums_regions() {
        assert_eq!(Dummy.footprint_bytes(), 150);
    }

    #[test]
    fn trace_defaults_to_thread_zero() {
        assert_eq!(Dummy.trace().count(), 1);
    }

    #[test]
    fn default_stream_adapts_the_iterator() {
        let mut s = Dummy.thread_stream(0, 1);
        let mut buf = Vec::new();
        assert_eq!(s.fill(&mut buf, 16), 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(s.fill(&mut buf, 16), 0, "exhausted stream yields 0");
    }

    #[test]
    fn fill_respects_max_and_appends() {
        let accesses: Vec<MemoryAccess> = (0..10)
            .map(|i| MemoryAccess::read(VirtAddr::new(0x1000 + i * 8)))
            .collect();
        let mut it = accesses.clone().into_iter();
        let mut buf = Vec::new();
        assert_eq!(it.fill(&mut buf, 4), 4);
        assert_eq!(it.fill(&mut buf, 4), 4);
        assert_eq!(it.fill(&mut buf, 4), 2);
        assert_eq!(buf, accesses);
    }
}
