//! The [`Workload`] abstraction: something that owns a virtual address
//! space layout and can emit the memory-access trace of its execution.

use hpage_types::{MemoryAccess, Region};

/// A workload that can be traced.
///
/// Implementations are deterministic: the same workload produces the same
/// trace every time, which is what lets the offline PCC simulation and the
/// replayed promotion schedule agree on addresses (the paper pins
/// `randomize_va_space=0` for exactly this property).
pub trait Workload {
    /// Short name ("BFS", "canneal", …) used in reports.
    fn name(&self) -> &str;

    /// The data regions the workload touches, in layout order. Their total
    /// length is the memory footprint the paper's utility curves
    /// normalise against.
    fn regions(&self) -> Vec<Region>;

    /// Total bytes of data (the paper's "footprint" column in Table 1).
    fn footprint_bytes(&self) -> u64 {
        self.regions().iter().map(|r| r.len()).sum()
    }

    /// The access trace of thread `thread` when the workload runs with
    /// `threads` total threads. Single-threaded workloads may ignore the
    /// arguments for `threads == 1`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `thread >= threads` or the workload does
    /// not support the requested thread count.
    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + '_>;

    /// Convenience: the single-threaded trace.
    fn trace(&self) -> Box<dyn Iterator<Item = MemoryAccess> + '_> {
        self.thread_trace(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::VirtAddr;

    struct Dummy;

    impl Workload for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn regions(&self) -> Vec<Region> {
            vec![
                Region::new(VirtAddr::new(0x1000), 100),
                Region::new(VirtAddr::new(0x10_0000), 50),
            ]
        }
        fn thread_trace(
            &self,
            thread: u32,
            threads: u32,
        ) -> Box<dyn Iterator<Item = MemoryAccess> + '_> {
            assert!(thread < threads);
            Box::new(std::iter::once(MemoryAccess::read(VirtAddr::new(0x1000))))
        }
    }

    #[test]
    fn footprint_sums_regions() {
        assert_eq!(Dummy.footprint_bytes(), 150);
    }

    #[test]
    fn trace_defaults_to_thread_zero() {
        assert_eq!(Dummy.trace().count(), 1);
    }
}
