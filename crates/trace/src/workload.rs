//! The [`Workload`] abstraction: something that owns a virtual address
//! space layout and can emit the memory-access trace of its execution.

use hpage_types::{MemoryAccess, Region};

/// A chunked access-trace producer: the hot-path alternative to
/// `Box<dyn Iterator>`.
///
/// The simulator consumes billions of accesses; pulling each one
/// through a boxed iterator costs a virtual call per element and walls
/// off the generator from the optimizer. A `TraceStream` amortises the
/// dynamic dispatch to one [`next_window`](Self::next_window) call per
/// chunk — and, unlike the old `fill`-into-a-`Vec` shape, hands the
/// consumer a **borrowed window** into storage the stream already owns,
/// so the hot loop reads accesses in place instead of copying every
/// chunk through an intermediate buffer.
///
/// # Window protocol
///
/// * `next_window(max)` returns the next `max` accesses of the trace as
///   one contiguous slice. It returns **fewer than `max` only when the
///   trace is exhausted** (streams must keep producing internally until
///   the window is full or the trace ends — a short window is the
///   end-of-trace signal, and the sharded simulation loop retires a
///   core on it).
/// * Each `next_window` call releases the previous window; the borrow
///   rules enforce this (the returned slice borrows the stream).
/// * [`window`](Self::window) re-borrows the *current* window without
///   advancing — the consumer uses it to resume a partially executed
///   chunk after a pause (e.g. a page-fault wave) without holding the
///   borrow across the pause.
pub trait TraceStream {
    /// Advances past the current window and returns the next one, up to
    /// `max` accesses long. Shorter than `max` (possibly empty) exactly
    /// when the trace is exhausted.
    fn next_window(&mut self, max: usize) -> &[MemoryAccess];

    /// The current window (the slice the last [`next_window`] returned;
    /// empty before the first call).
    ///
    /// [`next_window`]: Self::next_window
    fn window(&self) -> &[MemoryAccess];

    /// Appends up to `max` accesses to `buf`, returning how many were
    /// produced. Compatibility shim over [`next_window`]; returns 0
    /// when the trace is exhausted. Note it advances the stream, so it
    /// must not be mixed with window-style consumption of the same
    /// chunk.
    ///
    /// [`next_window`]: Self::next_window
    fn fill(&mut self, buf: &mut Vec<MemoryAccess>, max: usize) -> usize {
        let w = self.next_window(max);
        buf.extend_from_slice(w);
        w.len()
    }
}

/// Adapts any access iterator into a [`TraceStream`] by buffering one
/// window at a time.
///
/// This is the generic slow path (one `next()` per element into the
/// buffer); concrete workloads implement `TraceStream` natively so
/// their windows borrow storage the generator fills anyway. There is
/// deliberately **no** blanket `impl<I: Iterator> TraceStream for I`:
/// the window API needs a place to own the buffer, and the old blanket
/// impl made it too easy to route a workload's "monomorphised" stream
/// through per-element dispatch by accident (see
/// `RecordedWorkload::thread_stream`'s history).
pub struct IterStream<I> {
    iter: I,
    buf: Vec<MemoryAccess>,
}

impl<I: Iterator<Item = MemoryAccess>> IterStream<I> {
    /// Wraps `iter`.
    pub fn new(iter: I) -> Self {
        IterStream {
            iter,
            buf: Vec::new(),
        }
    }
}

impl<I: Iterator<Item = MemoryAccess>> TraceStream for IterStream<I> {
    fn next_window(&mut self, max: usize) -> &[MemoryAccess] {
        self.buf.clear();
        self.buf.extend(self.iter.by_ref().take(max));
        &self.buf
    }

    fn window(&self) -> &[MemoryAccess] {
        &self.buf
    }
}

/// Adapts a [`TraceStream`] back into a per-element iterator (for
/// consumers that genuinely want one access at a time, e.g. trace-file
/// writers and analyzers).
pub struct StreamIter<S> {
    stream: S,
    pos: usize,
    len: usize,
}

/// Window size [`StreamIter`] pulls through; one virtual call per this
/// many elements.
const STREAM_ITER_CHUNK: usize = 1024;

impl<S: TraceStream> StreamIter<S> {
    /// Wraps `stream`.
    pub fn new(stream: S) -> Self {
        StreamIter {
            stream,
            pos: 0,
            len: 0,
        }
    }
}

impl<S: TraceStream> Iterator for StreamIter<S> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        if self.pos == self.len {
            self.len = self.stream.next_window(STREAM_ITER_CHUNK).len();
            self.pos = 0;
            if self.len == 0 {
                return None;
            }
        }
        let a = self.stream.window()[self.pos];
        self.pos += 1;
        Some(a)
    }
}

/// A workload that can be traced.
///
/// Implementations are deterministic: the same workload produces the same
/// trace every time, which is what lets the offline PCC simulation and the
/// replayed promotion schedule agree on addresses (the paper pins
/// `randomize_va_space=0` for exactly this property).
pub trait Workload {
    /// Short name ("BFS", "canneal", …) used in reports.
    fn name(&self) -> &str;

    /// The data regions the workload touches, in layout order. Their total
    /// length is the memory footprint the paper's utility curves
    /// normalise against.
    fn regions(&self) -> Vec<Region>;

    /// Total bytes of data (the paper's "footprint" column in Table 1).
    fn footprint_bytes(&self) -> u64 {
        self.regions().iter().map(|r| r.len()).sum()
    }

    /// The access trace of thread `thread` when the workload runs with
    /// `threads` total threads. Single-threaded workloads may ignore the
    /// arguments for `threads == 1`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `thread >= threads` or the workload does
    /// not support the requested thread count.
    ///
    /// The returned iterator is `Send` so the sharded simulation loop
    /// can pin each core's trace to a worker thread; workload state is
    /// plain data, so this costs implementations nothing.
    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_>;

    /// The access trace of thread `thread` as a windowed [`TraceStream`]
    /// — what the simulation hot loop consumes.
    ///
    /// The default adapts [`Self::thread_trace`] through [`IterStream`]
    /// (correct, but dispatches per element into the buffer); concrete
    /// workloads override it with a native stream whose windows borrow
    /// generator-owned storage.
    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        Box::new(IterStream::new(self.thread_trace(thread, threads)))
    }

    /// Convenience: the single-threaded trace.
    fn trace(&self) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
        self.thread_trace(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::VirtAddr;

    struct Dummy;

    impl Workload for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn regions(&self) -> Vec<Region> {
            vec![
                Region::new(VirtAddr::new(0x1000), 100),
                Region::new(VirtAddr::new(0x10_0000), 50),
            ]
        }
        fn thread_trace(
            &self,
            thread: u32,
            threads: u32,
        ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
            assert!(thread < threads);
            Box::new(std::iter::once(MemoryAccess::read(VirtAddr::new(0x1000))))
        }
    }

    #[test]
    fn footprint_sums_regions() {
        assert_eq!(Dummy.footprint_bytes(), 150);
    }

    #[test]
    fn trace_defaults_to_thread_zero() {
        assert_eq!(Dummy.trace().count(), 1);
    }

    #[test]
    fn default_stream_adapts_the_iterator() {
        let mut s = Dummy.thread_stream(0, 1);
        assert!(s.window().is_empty(), "no window before the first call");
        assert_eq!(s.next_window(16).len(), 1);
        assert_eq!(s.window().len(), 1, "window re-borrows without advancing");
        assert!(s.next_window(16).is_empty(), "exhausted stream yields 0");
    }

    #[test]
    fn fill_shim_respects_max_and_appends() {
        let accesses: Vec<MemoryAccess> = (0..10)
            .map(|i| MemoryAccess::read(VirtAddr::new(0x1000 + i * 8)))
            .collect();
        let mut it = IterStream::new(accesses.clone().into_iter());
        let mut buf = Vec::new();
        assert_eq!(it.fill(&mut buf, 4), 4);
        assert_eq!(it.fill(&mut buf, 4), 4);
        assert_eq!(it.fill(&mut buf, 4), 2);
        assert_eq!(buf, accesses);
    }

    #[test]
    fn windows_partition_the_trace_exactly() {
        let accesses: Vec<MemoryAccess> = (0..10)
            .map(|i| MemoryAccess::read(VirtAddr::new(0x1000 + i * 8)))
            .collect();
        let mut s = IterStream::new(accesses.clone().into_iter());
        let mut seen = Vec::new();
        loop {
            let w = s.next_window(4);
            if w.is_empty() {
                break;
            }
            seen.extend_from_slice(w);
        }
        assert_eq!(seen, accesses);
    }

    #[test]
    fn stream_iter_round_trips() {
        let accesses: Vec<MemoryAccess> = (0..2500)
            .map(|i| MemoryAccess::read(VirtAddr::new(0x1000 + i * 8)))
            .collect();
        let s = IterStream::new(accesses.clone().into_iter());
        let back: Vec<MemoryAccess> = StreamIter::new(s).collect();
        assert_eq!(back, accesses);
    }
}
