//! Synthetic stand-ins for the PARSEC and SPEC CPU2017 workloads the
//! paper evaluates (canneal, dedup, mcf, omnetpp, xalancbmk).
//!
//! Each preset composes primitive access patterns (sequential streams,
//! uniform-random scatters, Zipf-skewed working sets, pointer chases)
//! over a laid-out address space, parameterised to reproduce the TLB
//! behaviour class the paper reports for the original application
//! (see DESIGN.md's substitution table).

use crate::layout::{AddressSpaceBuilder, ArrayLayout};
use crate::workload::{IterStream, TraceStream, Workload};
use hpage_types::{MemoryAccess, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A primitive access pattern over one array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Walk the array front-to-back with `stride` elements between
    /// accesses, `count` accesses total (wraps around).
    Sequential {
        /// Elements skipped between consecutive accesses.
        stride: u64,
        /// Total accesses emitted.
        count: u64,
    },
    /// `count` uniformly random element accesses.
    UniformRandom {
        /// Total accesses emitted.
        count: u64,
    },
    /// `count` accesses with Zipf-distributed element popularity;
    /// `exponent` ≥ 0 controls the skew (0 = uniform).
    Zipf {
        /// Total accesses emitted.
        count: u64,
        /// Zipf exponent (θ); typical workloads: 0.6–1.1.
        exponent: f64,
    },
    /// A pointer chase: follow a fixed pseudo-random permutation through
    /// the array for `count` hops.
    PointerChase {
        /// Total accesses emitted.
        count: u64,
    },
}

/// One phase of a synthetic workload: a pattern bound to an array index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Phase {
    array: usize,
    pattern: Pattern,
    write_ratio_pct: u8,
}

/// A synthetic workload assembled from arrays and phases.
///
/// Phases are interleaved access-by-access in a round-robin over their
/// remaining budgets, approximating the instruction-level mixing of real
/// applications (a hash lookup between stream reads, etc.).
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    seed: u64,
    arrays: Vec<ArrayLayout>,
    phases: Vec<Phase>,
    regions: Vec<Region>,
}

/// Builder for [`SyntheticWorkload`].
#[derive(Debug)]
pub struct SyntheticBuilder {
    name: String,
    seed: u64,
    asb: AddressSpaceBuilder,
    arrays: Vec<ArrayLayout>,
    phases: Vec<Phase>,
}

impl SyntheticBuilder {
    /// Starts a synthetic workload named `name` with RNG `seed`.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        SyntheticBuilder {
            name: name.into(),
            seed,
            asb: AddressSpaceBuilder::new(),
            arrays: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Adds an array of `len` elements of `element_bytes`; returns its
    /// index for use in [`phase`](Self::phase).
    pub fn array(&mut self, element_bytes: u64, len: u64) -> usize {
        let a = self.asb.array(element_bytes, len);
        self.arrays.push(a);
        self.arrays.len() - 1
    }

    /// Adds an access phase over `array` with `write_ratio_pct` percent of
    /// accesses being writes.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range or `write_ratio_pct > 100`.
    pub fn phase(&mut self, array: usize, pattern: Pattern, write_ratio_pct: u8) -> &mut Self {
        assert!(array < self.arrays.len(), "array index out of range");
        assert!(write_ratio_pct <= 100, "write ratio is a percentage");
        self.phases.push(Phase {
            array,
            pattern,
            write_ratio_pct,
        });
        self
    }

    /// Finalises the workload.
    ///
    /// # Panics
    ///
    /// Panics if no phases were added.
    pub fn build(self) -> SyntheticWorkload {
        assert!(
            !self.phases.is_empty(),
            "a workload needs at least one phase"
        );
        SyntheticWorkload {
            name: self.name,
            seed: self.seed,
            regions: self.asb.regions().to_vec(),
            arrays: self.arrays,
            phases: self.phases,
        }
    }
}

impl SyntheticWorkload {
    /// The RNG seed (traces are deterministic in it).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
        assert!(thread < threads, "bad thread index");
        // Threads share the pattern but draw from distinct RNG streams.
        Box::new(SynthTrace::new(
            self,
            self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(thread) + 1)),
        ))
    }

    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        assert!(thread < threads, "bad thread index");
        // Wrap the concrete iterator so window production monomorphises.
        Box::new(IterStream::new(SynthTrace::new(
            self,
            self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(thread) + 1)),
        )))
    }
}

struct PhaseState {
    array: ArrayLayout,
    pattern: Pattern,
    write_ratio_pct: u8,
    emitted: u64,
    seq_pos: u64,
    chase_pos: u64,
}

impl PhaseState {
    fn budget(&self) -> u64 {
        match self.pattern {
            Pattern::Sequential { count, .. }
            | Pattern::UniformRandom { count }
            | Pattern::Zipf { count, .. }
            | Pattern::PointerChase { count } => count,
        }
    }
}

struct SynthTrace<'w> {
    phases: Vec<PhaseState>,
    rng: StdRng,
    _marker: core::marker::PhantomData<&'w ()>,
}

impl<'w> SynthTrace<'w> {
    fn new(w: &'w SyntheticWorkload, seed: u64) -> Self {
        let phases = w
            .phases
            .iter()
            .map(|p| PhaseState {
                array: w.arrays[p.array],
                pattern: p.pattern,
                write_ratio_pct: p.write_ratio_pct,
                emitted: 0,
                seq_pos: 0,
                chase_pos: 0,
            })
            .collect();
        SynthTrace {
            phases,
            rng: StdRng::seed_from_u64(seed),
            _marker: core::marker::PhantomData,
        }
    }

    /// Draws a Zipf-distributed rank in `[0, n)` via inverse-CDF
    /// approximation (harmonic weights `1/(k+1)^theta`).
    fn zipf_index(rng: &mut StdRng, n: u64, theta: f64) -> u64 {
        if n <= 1 {
            return 0;
        }
        // Approximate inverse CDF of a bounded Pareto; exact enough for
        // workload shaping. rank ~ n * u^(1/(1-theta)) for theta < 1;
        // for theta >= 1 fall back to a rejection-free heavy-tail form.
        let u: f64 = rng.random::<f64>().max(1e-12);
        let idx = if (theta - 1.0).abs() < 1e-9 {
            // theta == 1: rank ~ exp(u * ln n)
            (n as f64).powf(u) - 1.0
        } else {
            let inv = 1.0 / (1.0 - theta);
            if theta < 1.0 {
                (u * (n as f64).powf(1.0 - theta)).powf(inv) - 1.0
            } else {
                // theta > 1: heavier head; invert the tail CDF.
                (u.powf(inv)).mul_add(n as f64, 0.0).min(n as f64 - 1.0)
            }
        };
        (idx.max(0.0) as u64).min(n - 1)
    }
}

impl Iterator for SynthTrace<'_> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        // Weighted interleave: serve the phase that is proportionally the
        // furthest behind, so phases deplete together and each phase's
        // share of the stream matches its access budget.
        let pick = self
            .phases
            .iter()
            .enumerate()
            .filter(|(_, p)| p.emitted < p.budget() && !p.array.is_empty())
            .max_by(|(_, a), (_, b)| {
                let fa = (a.budget() - a.emitted) as f64 / a.budget() as f64;
                let fb = (b.budget() - b.emitted) as f64 / b.budget() as f64;
                fa.partial_cmp(&fb).expect("budgets are finite")
            })
            .map(|(i, _)| i);
        {
            let i = pick?;
            let p = &mut self.phases[i];
            p.emitted += 1;
            let n = p.array.len();
            let idx = match p.pattern {
                Pattern::Sequential { stride, .. } => {
                    let idx = p.seq_pos % n;
                    p.seq_pos = p.seq_pos.wrapping_add(stride.max(1));
                    idx
                }
                Pattern::UniformRandom { .. } => self.rng.random_range(0..n),
                Pattern::Zipf { exponent, .. } => Self::zipf_index(&mut self.rng, n, exponent),
                Pattern::PointerChase { .. } => {
                    // Multiplicative-congruential permutation walk.
                    p.chase_pos = p
                        .chase_pos
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    p.chase_pos % n
                }
            };
            let addr = self.phases[i].array.addr_of(idx);
            let is_write = self.rng.random_range(0..100u8) < self.phases[i].write_ratio_pct;
            Some(if is_write {
                MemoryAccess::write(addr)
            } else {
                MemoryAccess::read(addr)
            })
        }
    }
}

/// Scale knob for the synthetic presets: total accesses and footprints
/// multiply with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SynthScale {
    /// Footprint multiplier ×1 = test scale (tens of MiB).
    pub footprint_mul: u64,
    /// Access-count multiplier.
    pub accesses_mul: u64,
}

impl SynthScale {
    /// Tiny scale for unit tests.
    pub const TEST: SynthScale = SynthScale {
        footprint_mul: 1,
        accesses_mul: 1,
    };

    /// Default benchmark scale.
    pub const BENCH: SynthScale = SynthScale {
        footprint_mul: 8,
        accesses_mul: 8,
    };
}

const MB: u64 = 1 << 20;

/// `canneal` (PARSEC): simulated-annealing netlist swaps — uniformly
/// random small-element reads over a large netlist, highly TLB-sensitive
/// with a near-linear utility curve.
pub fn canneal(scale: SynthScale, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("canneal", seed);
    let elements = 96 * MB * scale.footprint_mul / 32;
    let netlist = b.array(32, elements);
    let locs = b.array(16, elements / 2);
    b.phase(
        netlist,
        Pattern::UniformRandom {
            count: 6_000_000 * scale.accesses_mul,
        },
        10,
    );
    b.phase(
        locs,
        Pattern::UniformRandom {
            count: 2_000_000 * scale.accesses_mul,
        },
        30,
    );
    b.build()
}

/// `omnetpp` (SPEC): discrete-event network simulation — Zipf-skewed
/// module/event accesses over a medium heap plus a sequential event log.
pub fn omnetpp(scale: SynthScale, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("omnetpp", seed);
    let heap = b.array(64, 48 * MB * scale.footprint_mul / 64);
    let log = b.array(16, 8 * MB * scale.footprint_mul / 16);
    b.phase(
        heap,
        Pattern::Zipf {
            count: 6_000_000 * scale.accesses_mul,
            exponent: 0.7,
        },
        25,
    );
    b.phase(
        log,
        Pattern::Sequential {
            stride: 1,
            count: 2_000_000 * scale.accesses_mul,
        },
        50,
    );
    b.build()
}

/// `xalancbmk` (SPEC): XSLT processing — pointer chasing through a DOM
/// arena with Zipf-popular templates.
pub fn xalancbmk(scale: SynthScale, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("xalancbmk", seed);
    let dom = b.array(48, 64 * MB * scale.footprint_mul / 48);
    let templates = b.array(64, 4 * MB * scale.footprint_mul / 64);
    b.phase(
        dom,
        Pattern::PointerChase {
            count: 5_000_000 * scale.accesses_mul,
        },
        5,
    );
    b.phase(
        templates,
        Pattern::Zipf {
            count: 3_000_000 * scale.accesses_mul,
            exponent: 1.0,
        },
        0,
    );
    b.build()
}

/// `dedup` (PARSEC): streaming compression — dominated by sequential
/// chunk reads plus lookups in a hash table small enough to stay
/// TLB-resident. Nearly TLB-insensitive (the paper's flat curve).
pub fn dedup(scale: SynthScale, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("dedup", seed);
    let stream = b.array(64, 96 * MB * scale.footprint_mul / 64);
    // The hash table stays a sliver of the footprint so it remains
    // TLB-resident (as the real dedup's hot table effectively is).
    let table = b.array(32, 32 * 1024 * scale.footprint_mul / 32);
    b.phase(
        stream,
        Pattern::Sequential {
            stride: 1,
            count: 7_000_000 * scale.accesses_mul,
        },
        20,
    );
    b.phase(
        table,
        Pattern::UniformRandom {
            count: 1_000_000 * scale.accesses_mul,
        },
        40,
    );
    b.build()
}

/// `mcf` (SPEC): network-simplex — scattered arc accesses but with strong
/// short-range locality after the benchmark's cache-oriented layout;
/// low TLB sensitivity in the paper.
pub fn mcf(scale: SynthScale, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("mcf", seed);
    let arcs = b.array(64, 80 * MB * scale.footprint_mul / 64);
    let nodes = b.array(64, 64 * 1024 * scale.footprint_mul / 64);
    // Mostly strided sweeps (pricing loops) with a modest random component.
    b.phase(
        arcs,
        Pattern::Sequential {
            stride: 3,
            count: 6_000_000 * scale.accesses_mul,
        },
        15,
    );
    b.phase(
        nodes,
        Pattern::Zipf {
            count: 2_000_000 * scale.accesses_mul,
            exponent: 0.9,
        },
        15,
    );
    b.build()
}

/// **Extension** (not in the paper's app set): GUPS / RandomAccess — the
/// HPC kernel with pure uniform random 8-byte updates over a giant
/// table. The most TLB-hostile pattern possible; every region is an
/// equally good promotion candidate, so its utility curve is linear.
pub fn gups(scale: SynthScale, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("gups", seed);
    let table = b.array(8, 128 * MB * scale.footprint_mul / 8);
    b.phase(
        table,
        Pattern::UniformRandom {
            count: 8_000_000 * scale.accesses_mul,
        },
        50,
    );
    b.build()
}

/// **Extension**: a database-style hash join — a sequential probe-side
/// scan against Zipf-skewed lookups into a build-side hash table that
/// exceeds TLB reach. The class of workload whose THP pain the paper's
/// introduction catalogues (databases often disable THP because greedy
/// allocation bloats them; selective promotion is the fix).
pub fn hashjoin(scale: SynthScale, seed: u64) -> SyntheticWorkload {
    let mut b = SyntheticBuilder::new("hashjoin", seed);
    let probe = b.array(32, 64 * MB * scale.footprint_mul / 32);
    let build = b.array(64, 48 * MB * scale.footprint_mul / 64);
    b.phase(
        probe,
        Pattern::Sequential {
            stride: 1,
            count: 3_000_000 * scale.accesses_mul,
        },
        0,
    );
    b.phase(
        build,
        Pattern::Zipf {
            count: 3_000_000 * scale.accesses_mul,
            exponent: 0.6,
        },
        5,
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::AccessKind;

    fn assert_in_regions(w: &SyntheticWorkload, n: usize) {
        let regions = w.regions();
        for acc in w.trace().take(n) {
            assert!(
                regions.iter().any(|r| r.contains(acc.addr)),
                "access {} outside layout",
                acc.addr
            );
        }
    }

    #[test]
    fn presets_construct_and_stay_in_bounds() {
        for w in [
            canneal(SynthScale::TEST, 1),
            omnetpp(SynthScale::TEST, 1),
            xalancbmk(SynthScale::TEST, 1),
            dedup(SynthScale::TEST, 1),
            mcf(SynthScale::TEST, 1),
            gups(SynthScale::TEST, 1),
            hashjoin(SynthScale::TEST, 1),
        ] {
            assert!(w.footprint_bytes() > 0);
            assert_in_regions(&w, 20_000);
        }
    }

    #[test]
    fn trace_length_matches_budgets() {
        let mut b = SyntheticBuilder::new("t", 0);
        let a = b.array(8, 100);
        b.phase(
            a,
            Pattern::Sequential {
                stride: 1,
                count: 50,
            },
            0,
        );
        b.phase(a, Pattern::UniformRandom { count: 30 }, 0);
        let w = b.build();
        assert_eq!(w.trace().count(), 80);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let w1 = canneal(SynthScale::TEST, 7);
        let w2 = canneal(SynthScale::TEST, 7);
        let w3 = canneal(SynthScale::TEST, 8);
        let t1: Vec<_> = w1.trace().take(1000).collect();
        let t2: Vec<_> = w2.trace().take(1000).collect();
        let t3: Vec<_> = w3.trace().take(1000).collect();
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn threads_get_distinct_streams() {
        let w = canneal(SynthScale::TEST, 7);
        let t0: Vec<_> = w.thread_trace(0, 2).take(500).collect();
        let t1: Vec<_> = w.thread_trace(1, 2).take(500).collect();
        assert_ne!(t0, t1);
    }

    #[test]
    fn write_ratio_honored_roughly() {
        let mut b = SyntheticBuilder::new("t", 3);
        let a = b.array(8, 1000);
        b.phase(a, Pattern::UniformRandom { count: 10_000 }, 50);
        let w = b.build();
        let writes = w.trace().filter(|a| a.kind == AccessKind::Write).count();
        assert!((4000..6000).contains(&writes), "writes = {writes}");
    }

    #[test]
    fn zipf_skews_head() {
        let mut b = SyntheticBuilder::new("t", 3);
        let a = b.array(8, 10_000);
        b.phase(
            a,
            Pattern::Zipf {
                count: 50_000,
                exponent: 0.9,
            },
            0,
        );
        let w = b.build();
        let base = w.regions()[0].start().raw();
        let head = w
            .trace()
            .filter(|acc| (acc.addr.raw() - base) / 8 < 1000)
            .count();
        // Top 10% of elements should receive far more than 10% of accesses.
        assert!(head > 15_000, "head accesses = {head}");
    }

    #[test]
    fn sequential_walks_in_order() {
        let mut b = SyntheticBuilder::new("t", 0);
        let a = b.array(8, 16);
        b.phase(
            a,
            Pattern::Sequential {
                stride: 1,
                count: 16,
            },
            0,
        );
        let w = b.build();
        let addrs: Vec<u64> = w.trace().map(|a| a.addr.raw()).collect();
        assert!(addrs.windows(2).all(|p| p[1] == p[0] + 8));
    }

    #[test]
    fn pointer_chase_covers_array() {
        let mut b = SyntheticBuilder::new("t", 0);
        let a = b.array(8, 64);
        b.phase(a, Pattern::PointerChase { count: 1000 }, 0);
        let w = b.build();
        let distinct: std::collections::HashSet<u64> = w.trace().map(|a| a.addr.raw()).collect();
        assert!(distinct.len() > 30, "chase visited {}", distinct.len());
    }

    #[test]
    fn dedup_hash_table_is_tiny() {
        let w = dedup(SynthScale::TEST, 1);
        // Second region (the hash table) must be a small fraction of the
        // stream so the workload stays TLB-insensitive.
        let regions = w.regions();
        assert!(regions[1].len() * 16 < regions[0].len());
    }

    #[test]
    fn gups_is_maximally_tlb_hostile() {
        // GUPS touches its whole table uniformly; in any window the
        // distinct-page count approaches the access count until pages
        // repeat.
        let w = gups(SynthScale::TEST, 2);
        let distinct: std::collections::HashSet<u64> =
            w.trace().take(20_000).map(|a| a.addr.raw() >> 12).collect();
        assert!(
            distinct.len() > 10_000,
            "gups should spread: {}",
            distinct.len()
        );
    }

    #[test]
    fn hashjoin_mixes_stream_and_skew() {
        let w = hashjoin(SynthScale::TEST, 2);
        let regions = w.regions();
        assert_eq!(regions.len(), 2);
        let mut in_probe = 0u64;
        let mut in_build = 0u64;
        for a in w.trace().take(50_000) {
            if regions[0].contains(a.addr) {
                in_probe += 1;
            } else if regions[1].contains(a.addr) {
                in_build += 1;
            }
        }
        // Equal phase budgets => roughly even interleave.
        assert!(in_probe > 15_000 && in_build > 15_000);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_build_panics() {
        let b = SyntheticBuilder::new("t", 0);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "write ratio")]
    fn bad_write_ratio_panics() {
        let mut b = SyntheticBuilder::new("t", 0);
        let a = b.array(8, 10);
        b.phase(a, Pattern::UniformRandom { count: 1 }, 101);
    }
}
