//! Replaying captured traces: a [`Workload`] backed by a recorded access
//! stream (e.g. an `HPT1` file written by [`TraceWriter`], or a trace
//! captured from a real binary with a Pin-like tool and converted).
//!
//! This closes the loop of the paper's methodology: their offline
//! simulation consumed Pin traces of real executions; ours can consume
//! any recorded stream through the same [`Workload`] interface the
//! synthetic generators implement.
//!
//! [`TraceWriter`]: crate::io::TraceWriter

use crate::io::TraceReader;
use crate::workload::{TraceStream, Workload};
use hpage_types::{MemoryAccess, PageSize, Region, VirtAddr};
use std::io::{self, Read};

/// A workload materialised from a recorded access stream.
///
/// The constructor scans the accesses once to derive the footprint (the
/// set of touched 2 MiB regions, coalesced into contiguous ranges), which
/// the utility-curve budgets are computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedWorkload {
    name: String,
    accesses: Vec<MemoryAccess>,
    regions: Vec<Region>,
}

impl RecordedWorkload {
    /// Builds a workload from accesses already in memory.
    pub fn new(name: impl Into<String>, accesses: Vec<MemoryAccess>) -> Self {
        let regions = coalesce_regions(&accesses);
        RecordedWorkload {
            name: name.into(),
            accesses,
            regions,
        }
    }

    /// Reads an `HPT1` trace (see [`crate::TraceReader`]) fully into
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors from the reader.
    pub fn from_reader<R: Read>(name: impl Into<String>, reader: R) -> io::Result<Self> {
        let accesses = TraceReader::new(reader)?.collect::<io::Result<Vec<_>>>()?;
        Ok(RecordedWorkload::new(name, accesses))
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// Coalesces the touched 2 MiB regions of a trace into maximal
/// contiguous [`Region`]s.
fn coalesce_regions(accesses: &[MemoryAccess]) -> Vec<Region> {
    let mut indices: Vec<u64> = accesses
        .iter()
        .map(|a| a.addr.vpn(PageSize::Huge2M).index())
        .collect();
    indices.sort_unstable();
    indices.dedup();
    let mut regions = Vec::new();
    let mut run: Option<(u64, u64)> = None; // (first, last)
    for idx in indices {
        run = match run {
            Some((first, last)) if last + 1 == idx => Some((first, idx)),
            Some((first, last)) => {
                regions.push(span(first, last));
                Some((idx, idx))
            }
            None => Some((idx, idx)),
        };
    }
    if let Some((first, last)) = run {
        regions.push(span(first, last));
    }
    regions
}

fn span(first: u64, last: u64) -> Region {
    let bytes = PageSize::Huge2M.bytes();
    Region::new(VirtAddr::new(first * bytes), (last - first + 1) * bytes)
}

impl Workload for RecordedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
        assert!(thread < threads, "bad thread index");
        // A recorded trace is a single thread's stream; when replayed
        // across several cores, it is partitioned round-robin by record
        // (each core replays an interleaved slice).
        Box::new(
            self.accesses
                .iter()
                .copied()
                .skip(thread as usize)
                .step_by(threads as usize),
        )
    }

    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        assert!(thread < threads, "bad thread index");
        // Box the concrete iterator so `fill`'s loop monomorphises
        // (and, for the single-threaded replay, reduces to a slice
        // copy the optimizer vectorises).
        Box::new(
            self.accesses
                .iter()
                .copied()
                .skip(thread as usize)
                .step_by(threads as usize),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::TraceWriter;

    fn acc(addr: u64) -> MemoryAccess {
        MemoryAccess::read(VirtAddr::new(addr))
    }

    #[test]
    fn footprint_coalesces_contiguous_regions() {
        let mb2 = PageSize::Huge2M.bytes();
        let w = RecordedWorkload::new(
            "t",
            vec![
                acc(0),            // region 0
                acc(mb2 + 5),      // region 1 (contiguous with 0)
                acc(10 * mb2 + 9), // region 10 (separate)
            ],
        );
        assert_eq!(w.regions().len(), 2);
        assert_eq!(w.footprint_bytes(), 3 * mb2);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn empty_trace_has_no_regions() {
        let w = RecordedWorkload::new("t", vec![]);
        assert!(w.is_empty());
        assert!(w.regions().is_empty());
        assert_eq!(w.footprint_bytes(), 0);
        assert_eq!(w.trace().count(), 0);
    }

    #[test]
    fn file_roundtrip_preserves_trace() {
        let original: Vec<MemoryAccess> =
            (0..500u64).map(|i| acc(0x1000_0000 + i * 0x777)).collect();
        let mut buf = Vec::new();
        let mut tw = TraceWriter::new(&mut buf).unwrap();
        tw.write_all(original.iter().copied()).unwrap();
        tw.finish().unwrap();
        let w = RecordedWorkload::from_reader("replay", buf.as_slice()).unwrap();
        let replayed: Vec<MemoryAccess> = w.trace().collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn thread_partitions_cover_all_records() {
        let original: Vec<MemoryAccess> = (0..10u64).map(|i| acc(i * 0x1000)).collect();
        let w = RecordedWorkload::new("t", original.clone());
        let mut seen: Vec<MemoryAccess> = Vec::new();
        for t in 0..3 {
            seen.extend(w.thread_trace(t, 3));
        }
        seen.sort_by_key(|a| a.addr.raw());
        assert_eq!(seen, original);
    }

    #[test]
    fn recorded_trace_drives_the_tlb() {
        // Sanity: a recorded workload behaves like any other workload in
        // TLB terms.
        use hpage_tlb::{PageTable, TlbHierarchy, TlbOutcome};
        use hpage_types::{Pfn, TlbConfig};
        let w = RecordedWorkload::new(
            "t",
            (0..64u64).map(|i| acc(0x4000_0000 + i * 0x1000)).collect(),
        );
        let mut pt = PageTable::new();
        let mut tlb = TlbHierarchy::new(TlbConfig::tiny());
        let mut walks = 0;
        for a in w.trace() {
            if tlb.lookup(a.addr) == TlbOutcome::Miss {
                let vpn = a.addr.vpn(PageSize::Base4K);
                if pt.translate(a.addr).is_none() {
                    pt.map(vpn, Pfn::new(vpn.index(), PageSize::Base4K))
                        .unwrap();
                }
                let walk = pt.walk(a.addr).unwrap();
                tlb.fill(walk.translation);
                walks += 1;
            }
        }
        assert_eq!(walks, 64); // one cold miss per distinct page
    }
}
