//! Replaying captured traces: a [`Workload`] backed by a recorded access
//! stream (e.g. an `HPT1`/`HPT2` file written by [`TraceWriter`] /
//! [`Hpt2Writer`], or a trace captured from a real binary with a
//! Pin-like tool and converted).
//!
//! This closes the loop of the paper's methodology: their offline
//! simulation consumed Pin traces of real executions; ours can consume
//! any recorded stream through the same [`Workload`] interface the
//! synthetic generators implement.
//!
//! [`TraceWriter`]: crate::io::TraceWriter
//! [`Hpt2Writer`]: crate::hpt2::Hpt2Writer

use crate::hugebuf::HugeVec;
use crate::io::TraceReader;
use crate::workload::{TraceStream, Workload};
use hpage_types::{MemoryAccess, PageSize, Region, VirtAddr};
use std::io::{self, Read};

/// A workload materialised from a recorded access stream.
///
/// The constructor scans the accesses once to derive the footprint (the
/// set of touched 2 MiB regions, coalesced into contiguous ranges), which
/// the utility-curve budgets are computed from.
///
/// The access array lives in a [`HugeVec`]: huge-page-aligned and
/// `MADV_HUGEPAGE`-advised, so replaying a multi-gigabyte trace does not
/// thrash the *simulator's* TLB while it measures the simulated one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedWorkload {
    name: String,
    accesses: HugeVec<MemoryAccess>,
    regions: Vec<Region>,
}

impl RecordedWorkload {
    /// Builds a workload from accesses already in memory.
    pub fn new(name: impl Into<String>, accesses: Vec<MemoryAccess>) -> Self {
        RecordedWorkload::from_huge(name, HugeVec::from(&accesses[..]))
    }

    pub(crate) fn from_huge(name: impl Into<String>, accesses: HugeVec<MemoryAccess>) -> Self {
        let regions = coalesce_regions(&accesses);
        RecordedWorkload {
            name: name.into(),
            accesses,
            regions,
        }
    }

    /// Reads a trace file fully into memory, auto-detecting the format
    /// from the magic (`HPT1` record stream or blocked `HPT2`).
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors from the reader; unknown magic
    /// is `InvalidData`.
    pub fn from_reader<R: Read>(name: impl Into<String>, mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        let mut accesses = HugeVec::new();
        match &magic {
            crate::io::HPT1_MAGIC => {
                for rec in TraceReader::after_magic(reader) {
                    accesses.push(rec?);
                }
            }
            crate::hpt2::HPT2_MAGIC => {
                for rec in crate::hpt2::Hpt2Reader::after_magic(reader)? {
                    accesses.push(rec?);
                }
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not an HPT1/HPT2 trace file",
                ))
            }
        }
        Ok(RecordedWorkload::from_huge(name, accesses))
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The recorded accesses, in order.
    pub fn accesses(&self) -> &[MemoryAccess] {
        &self.accesses
    }
}

/// Coalesces the touched 2 MiB regions of a trace into maximal
/// contiguous [`Region`]s.
fn coalesce_regions(accesses: &[MemoryAccess]) -> Vec<Region> {
    let mut indices: Vec<u64> = accesses
        .iter()
        .map(|a| a.addr.vpn(PageSize::Huge2M).index())
        .collect();
    indices.sort_unstable();
    indices.dedup();
    coalesce_sorted_indices(&indices)
}

/// Coalesces a sorted, deduplicated list of 2 MiB region indices into
/// maximal contiguous [`Region`]s. Shared by [`RecordedWorkload`] and
/// the `HPT2` trailer path so both derive byte-identical footprints
/// from the same touched set.
pub(crate) fn coalesce_sorted_indices(indices: &[u64]) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut run: Option<(u64, u64)> = None; // (first, last)
    for &idx in indices {
        run = match run {
            Some((first, last)) if last + 1 == idx => Some((first, idx)),
            Some((first, last)) => {
                regions.push(span(first, last));
                Some((idx, idx))
            }
            None => Some((idx, idx)),
        };
    }
    if let Some((first, last)) = run {
        regions.push(span(first, last));
    }
    regions
}

fn span(first: u64, last: u64) -> Region {
    let bytes = PageSize::Huge2M.bytes();
    Region::new(VirtAddr::new(first * bytes), (last - first + 1) * bytes)
}

/// Single-threaded replay stream: every window is a direct subslice of
/// the recorded access array — zero copies, zero allocation.
struct SliceStream<'a> {
    accesses: &'a [MemoryAccess],
    pos: usize,
    win: usize,
}

impl TraceStream for SliceStream<'_> {
    fn next_window(&mut self, max: usize) -> &[MemoryAccess] {
        self.pos += self.win;
        self.win = max.min(self.accesses.len() - self.pos);
        &self.accesses[self.pos..self.pos + self.win]
    }

    fn window(&self) -> &[MemoryAccess] {
        &self.accesses[self.pos..self.pos + self.win]
    }
}

/// Multi-threaded replay stream: core `thread` of `stride` replays every
/// `stride`-th record (same partition as `thread_trace`'s
/// `skip(thread).step_by(stride)`), gathered window by window.
struct StridedStream<'a> {
    accesses: &'a [MemoryAccess],
    /// Index of the next record this core replays.
    next: usize,
    stride: usize,
    buf: Vec<MemoryAccess>,
}

impl TraceStream for StridedStream<'_> {
    fn next_window(&mut self, max: usize) -> &[MemoryAccess] {
        self.buf.clear();
        while self.buf.len() < max && self.next < self.accesses.len() {
            self.buf.push(self.accesses[self.next]);
            self.next += self.stride;
        }
        &self.buf
    }

    fn window(&self) -> &[MemoryAccess] {
        &self.buf
    }
}

impl Workload for RecordedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
        assert!(thread < threads, "bad thread index");
        // A recorded trace is a single thread's stream; when replayed
        // across several cores, it is partitioned round-robin by record
        // (each core replays an interleaved slice).
        Box::new(
            self.accesses
                .iter()
                .copied()
                .skip(thread as usize)
                .step_by(threads as usize),
        )
    }

    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        assert!(thread < threads, "bad thread index");
        if threads == 1 {
            Box::new(SliceStream {
                accesses: &self.accesses,
                pos: 0,
                win: 0,
            })
        } else {
            Box::new(StridedStream {
                accesses: &self.accesses,
                next: thread as usize,
                stride: threads as usize,
                buf: Vec::new(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::TraceWriter;

    fn acc(addr: u64) -> MemoryAccess {
        MemoryAccess::read(VirtAddr::new(addr))
    }

    #[test]
    fn footprint_coalesces_contiguous_regions() {
        let mb2 = PageSize::Huge2M.bytes();
        let w = RecordedWorkload::new(
            "t",
            vec![
                acc(0),            // region 0
                acc(mb2 + 5),      // region 1 (contiguous with 0)
                acc(10 * mb2 + 9), // region 10 (separate)
            ],
        );
        assert_eq!(w.regions().len(), 2);
        assert_eq!(w.footprint_bytes(), 3 * mb2);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn empty_trace_has_no_regions() {
        let w = RecordedWorkload::new("t", vec![]);
        assert!(w.is_empty());
        assert!(w.regions().is_empty());
        assert_eq!(w.footprint_bytes(), 0);
        assert_eq!(w.trace().count(), 0);
    }

    #[test]
    fn file_roundtrip_preserves_trace() {
        let original: Vec<MemoryAccess> =
            (0..500u64).map(|i| acc(0x1000_0000 + i * 0x777)).collect();
        let mut buf = Vec::new();
        let mut tw = TraceWriter::new(&mut buf).unwrap();
        tw.write_all(original.iter().copied()).unwrap();
        tw.finish().unwrap();
        let w = RecordedWorkload::from_reader("replay", buf.as_slice()).unwrap();
        let replayed: Vec<MemoryAccess> = w.trace().collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn thread_partitions_cover_all_records() {
        let original: Vec<MemoryAccess> = (0..10u64).map(|i| acc(i * 0x1000)).collect();
        let w = RecordedWorkload::new("t", original.clone());
        let mut seen: Vec<MemoryAccess> = Vec::new();
        for t in 0..3 {
            seen.extend(w.thread_trace(t, 3));
        }
        seen.sort_by_key(|a| a.addr.raw());
        assert_eq!(seen, original);
    }

    #[test]
    fn stream_windows_match_thread_trace() {
        // Regression (satellite): `thread_stream` used to claim a
        // monomorphised slice fill while actually routing through the
        // per-element blanket iterator impl. Assert the real stream
        // implementations replay exactly the `thread_trace` partition.
        let original: Vec<MemoryAccess> = (0..1013u64).map(|i| acc(i * 0x340)).collect();
        let w = RecordedWorkload::new("t", original);
        for (thread, threads) in [(0, 1), (0, 3), (2, 3), (7, 8)] {
            let expect: Vec<MemoryAccess> = w.thread_trace(thread, threads).collect();
            let mut s = w.thread_stream(thread, threads);
            let mut got = Vec::new();
            loop {
                let win = s.next_window(64).to_vec();
                assert_eq!(win, s.window(), "window() must re-borrow");
                got.extend_from_slice(&win);
                if win.len() < 64 {
                    break;
                }
            }
            assert_eq!(got, expect, "thread {thread}/{threads}");
            assert!(
                s.next_window(64).is_empty(),
                "exhausted stream must stay empty"
            );
        }
    }

    #[test]
    fn single_thread_stream_resumes_after_window_reborrow() {
        let original: Vec<MemoryAccess> = (0..10u64).map(|i| acc(i * 0x1000)).collect();
        let w = RecordedWorkload::new("t", original.clone());
        let mut s = w.thread_stream(0, 1);
        assert_eq!(s.next_window(4), &original[0..4]);
        assert_eq!(s.window(), &original[0..4]);
        assert_eq!(s.next_window(4), &original[4..8]);
        assert_eq!(s.next_window(4), &original[8..10], "short final window");
        assert!(s.next_window(4).is_empty());
        assert!(s.window().is_empty());
    }

    #[test]
    fn recorded_trace_drives_the_tlb() {
        // Sanity: a recorded workload behaves like any other workload in
        // TLB terms.
        use hpage_tlb::{PageTable, TlbHierarchy, TlbOutcome};
        use hpage_types::{Pfn, TlbConfig};
        let w = RecordedWorkload::new(
            "t",
            (0..64u64).map(|i| acc(0x4000_0000 + i * 0x1000)).collect(),
        );
        let mut pt = PageTable::new();
        let mut tlb = TlbHierarchy::new(TlbConfig::tiny());
        let mut walks = 0;
        for a in w.trace() {
            if tlb.lookup(a.addr) == TlbOutcome::Miss {
                let vpn = a.addr.vpn(PageSize::Base4K);
                if pt.translate(a.addr).is_none() {
                    pt.map(vpn, Pfn::new(vpn.index(), PageSize::Base4K))
                        .unwrap();
                }
                let walk = pt.walk(a.addr).unwrap();
                tlb.fill(walk.translation);
                walks += 1;
            }
        }
        assert_eq!(walks, 64); // one cold miss per distinct page
    }
}
