//! `HPT2`: the blocked, seekable, integrity-checked trace format, and
//! its mmap-backed zero-copy replay path.
//!
//! `HPT1` (see [`crate::io`]) is a single delta chain: byte `i` cannot
//! be decoded without every byte before it, so readers can neither
//! seek, shard, nor detect corruption short of decoding garbage. `HPT2`
//! keeps the same per-record encoding but cuts the chain into blocks:
//!
//! ```text
//! "HPT2"  u32 block_records                  // file header
//! repeat block {
//!     u32 payload_bytes   (> 0)
//!     u32 n_records       (1..=block_records)
//!     u64 fnv1a64(payload)
//!     payload: n_records × { header byte; zigzag varint addr delta }
//!              // delta chain restarts at 0 each block, so the first
//!              // record's delta IS its absolute address — the
//!              // restart point that makes blocks self-contained
//! }
//! u32 0  u32 0                               // terminator
//! u64 total_records                          // trailer
//! varint region_count
//! region_count × varint                      // touched 2MiB region
//!                                            // indices, delta-encoded
//! u64 fnv1a64(trailer bytes above)
//! "2TPH"                                     // end magic
//! ```
//!
//! All fixed-width integers are little-endian. The trailer's region
//! list is the trace's touched-2MiB-page set in ascending order; it
//! lets a replayer announce the workload footprint without a decode
//! pass, and [`MmapTrace::open`] cross-checks it against the records so
//! a corrupted trailer cannot smuggle a wrong footprint past the
//! checksums.
//!
//! [`MmapTrace`] maps the file and validates everything once at open —
//! checksums, strict per-block decode, trailer totals — so its replay
//! streams can decode block-by-block with no error paths in the hot
//! loop and windows borrowed straight from the decode buffer.

use crate::hugebuf::HugeVec;
use crate::io::{read_varint, unzigzag, write_varint, zigzag};
use crate::mmap::{Advice, Mmap};
use crate::recorded::coalesce_sorted_indices;
use crate::workload::{StreamIter, TraceStream, Workload};
use hpage_types::{AccessKind, MemoryAccess, PageSize, Region, VirtAddr};
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic of the blocked format.
pub(crate) const HPT2_MAGIC: &[u8; 4] = b"HPT2";
/// End-of-file magic (the header magic reversed).
const END_MAGIC: &[u8; 4] = b"2TPH";

/// Default records per block: long enough to amortise block headers to
/// ~0.001 bytes/record, short enough that a seek touches at most a few
/// hundred KiB of payload.
pub const DEFAULT_BLOCK_RECORDS: u32 = 1 << 14;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn invalid(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Tracks the set of touched 2 MiB regions with a last-hit cache, so
/// the common run-of-accesses-to-one-region case costs one compare.
#[derive(Debug, Default)]
struct RegionTracker {
    last: Option<u64>,
    set: BTreeSet<u64>,
}

impl RegionTracker {
    fn observe(&mut self, addr: VirtAddr) {
        let idx = addr.vpn(PageSize::Huge2M).index();
        if self.last == Some(idx) {
            return;
        }
        self.last = Some(idx);
        self.set.insert(idx);
    }

    fn into_sorted(self) -> Vec<u64> {
        self.set.into_iter().collect()
    }
}

/// Streams accesses into `writer` in `HPT2` format.
#[derive(Debug)]
pub struct Hpt2Writer<W: Write> {
    writer: W,
    block_records: u32,
    /// Encoded payload of the block under construction.
    block: Vec<u8>,
    block_n: u32,
    prev_addr: u64,
    records: u64,
    regions: RegionTracker,
}

impl<W: Write> Hpt2Writer<W> {
    /// Creates a writer with the default block size and emits the file
    /// header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(writer: W) -> io::Result<Self> {
        Hpt2Writer::with_block_records(writer, DEFAULT_BLOCK_RECORDS)
    }

    /// Creates a writer with `block_records` records per block.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if `block_records` is 0.
    pub fn with_block_records(mut writer: W, block_records: u32) -> io::Result<Self> {
        assert!(block_records > 0, "HPT2 block_records must be positive");
        writer.write_all(HPT2_MAGIC)?;
        writer.write_all(&block_records.to_le_bytes())?;
        Ok(Hpt2Writer {
            writer,
            block_records,
            block: Vec::new(),
            block_n: 0,
            prev_addr: 0,
            records: 0,
            regions: RegionTracker::default(),
        })
    }

    /// Appends one access.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, access: &MemoryAccess) -> io::Result<()> {
        let header = u8::from(access.kind == AccessKind::Write);
        self.block.push(header);
        // Same wrapping-ring delta as HPT1 (see TraceWriter::write).
        let delta = access.addr.raw().wrapping_sub(self.prev_addr) as i64;
        write_varint(&mut self.block, zigzag(delta))?;
        self.prev_addr = access.addr.raw();
        self.regions.observe(access.addr);
        self.block_n += 1;
        self.records += 1;
        if self.block_n == self.block_records {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends every access of an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_all<I: IntoIterator<Item = MemoryAccess>>(&mut self, trace: I) -> io::Result<()> {
        for a in trace {
            self.write(&a)?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.block_n == 0 {
            return Ok(());
        }
        let len = u32::try_from(self.block.len()).map_err(|_| invalid("HPT2 block too large"))?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&self.block_n.to_le_bytes())?;
        self.writer.write_all(&fnv1a64(&self.block).to_le_bytes())?;
        self.writer.write_all(&self.block)?;
        self.block.clear();
        self.block_n = 0;
        // Restart point: the next block's delta chain starts from 0, so
        // its first record encodes an absolute address.
        self.prev_addr = 0;
        Ok(())
    }

    /// Flushes the final block, writes the terminator and trailer, and
    /// returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_block()?;
        self.writer.write_all(&0u32.to_le_bytes())?;
        self.writer.write_all(&0u32.to_le_bytes())?;
        let mut trailer = Vec::new();
        trailer.extend_from_slice(&self.records.to_le_bytes());
        let indices = std::mem::take(&mut self.regions).into_sorted();
        write_varint(&mut trailer, indices.len() as u64)?;
        let mut prev = 0u64;
        for (i, &idx) in indices.iter().enumerate() {
            let delta = if i == 0 { idx } else { idx - prev };
            write_varint(&mut trailer, delta)?;
            prev = idx;
        }
        self.writer.write_all(&trailer)?;
        self.writer.write_all(&fnv1a64(&trailer).to_le_bytes())?;
        self.writer.write_all(END_MAGIC)?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Strictly decodes one block payload, appending records to `out` and
/// observing regions. Errors if the payload and record count disagree
/// in any way (short payload, trailing bytes, non-canonical varint).
fn decode_block_strict(
    payload: &[u8],
    n_records: u32,
    out: &mut HugeVec<MemoryAccess>,
    regions: &mut RegionTracker,
) -> io::Result<()> {
    let mut slice = payload;
    let mut prev_addr = 0u64;
    for _ in 0..n_records {
        let mut header = [0u8; 1];
        slice
            .read_exact(&mut header)
            .map_err(|_| invalid("HPT2 block shorter than its record count"))?;
        if header[0] & !1 != 0 {
            return Err(invalid("HPT2 record header has reserved bits set"));
        }
        let delta = match read_varint(&mut slice)? {
            Some(v) => unzigzag(v),
            None => return Err(invalid("HPT2 block shorter than its record count")),
        };
        let addr = (prev_addr as i64).wrapping_add(delta) as u64;
        prev_addr = addr;
        let access = if header[0] & 1 == 1 {
            MemoryAccess::write(VirtAddr::new(addr))
        } else {
            MemoryAccess::read(VirtAddr::new(addr))
        };
        regions.observe(access.addr);
        out.push(access);
    }
    if !slice.is_empty() {
        return Err(invalid("HPT2 block has bytes after its last record"));
    }
    Ok(())
}

/// Fast-path decode of an already-validated block payload (no error
/// paths: [`MmapTrace::open`] proved the payload well-formed).
fn decode_block_trusted(payload: &[u8], n_records: u32, out: &mut HugeVec<MemoryAccess>) {
    out.clear();
    let mut pos = 0usize;
    let mut prev_addr = 0u64;
    for _ in 0..n_records {
        let header = payload[pos];
        pos += 1;
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = payload[pos];
            pos += 1;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        let addr = (prev_addr as i64).wrapping_add(unzigzag(v)) as u64;
        prev_addr = addr;
        out.push(if header & 1 == 1 {
            MemoryAccess::write(VirtAddr::new(addr))
        } else {
            MemoryAccess::read(VirtAddr::new(addr))
        });
    }
    debug_assert_eq!(pos, payload.len(), "validated block decoded short");
}

/// Streaming `HPT2` reader over any `Read`. Implements
/// `Iterator<Item = io::Result<MemoryAccess>>`; block checksums and the
/// trailer are verified as the stream crosses them, so a corrupted file
/// yields an error, never silently wrong records.
#[derive(Debug)]
pub struct Hpt2Reader<R: Read> {
    reader: R,
    block_records: u32,
    block: Vec<u8>,
    pos: usize,
    remaining_in_block: u32,
    prev_addr: u64,
    total_read: u64,
    regions: RegionTracker,
    state: ReaderState,
}

#[derive(Debug, PartialEq, Eq)]
enum ReaderState {
    Streaming,
    /// Terminator seen and trailer verified; iterator is done.
    Finished,
    /// An error was yielded; the iterator is fused.
    Failed,
}

impl<R: Read> Hpt2Reader<R> {
    /// Opens a trace, validating the header magic.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a magic mismatch, or any I/O error.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != HPT2_MAGIC {
            return Err(invalid("not an HPT2 trace file"));
        }
        Hpt2Reader::after_magic(reader)
    }

    /// Resumes a reader positioned just past the magic (see
    /// [`crate::TraceReader::after_magic`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors reading the block-size header.
    pub(crate) fn after_magic(mut reader: R) -> io::Result<Self> {
        let mut le = [0u8; 4];
        reader.read_exact(&mut le)?;
        let block_records = u32::from_le_bytes(le);
        if block_records == 0 {
            return Err(invalid("HPT2 header has zero block size"));
        }
        Ok(Hpt2Reader {
            reader,
            block_records,
            block: Vec::new(),
            pos: 0,
            remaining_in_block: 0,
            prev_addr: 0,
            total_read: 0,
            regions: RegionTracker::default(),
            state: ReaderState::Streaming,
        })
    }

    fn read_u32(&mut self) -> io::Result<u32> {
        let mut le = [0u8; 4];
        self.reader.read_exact(&mut le)?;
        Ok(u32::from_le_bytes(le))
    }

    fn read_u64(&mut self) -> io::Result<u64> {
        let mut le = [0u8; 8];
        self.reader.read_exact(&mut le)?;
        Ok(u64::from_le_bytes(le))
    }

    /// Loads and checksums the next block; `Ok(false)` at the
    /// terminator (after trailer validation).
    fn next_block(&mut self) -> io::Result<bool> {
        let payload_len = self.read_u32()?;
        let n_records = self.read_u32()?;
        if payload_len == 0 && n_records == 0 {
            self.validate_trailer()?;
            return Ok(false);
        }
        if payload_len == 0 || n_records == 0 || n_records > self.block_records {
            return Err(invalid("HPT2 block header out of range"));
        }
        let checksum = self.read_u64()?;
        self.block.resize(payload_len as usize, 0);
        self.reader.read_exact(&mut self.block)?;
        if fnv1a64(&self.block) != checksum {
            return Err(invalid("HPT2 block checksum mismatch"));
        }
        // Record count vs payload agreement is enforced as records are
        // decoded (short payload or trailing bytes both error).
        self.pos = 0;
        self.remaining_in_block = n_records;
        self.prev_addr = 0;
        Ok(true)
    }

    fn validate_trailer(&mut self) -> io::Result<()> {
        let mut trailer = Vec::new();
        let total = self.read_u64()?;
        trailer.extend_from_slice(&total.to_le_bytes());
        let mut varint_buf = VarintCapture {
            reader: &mut self.reader,
            captured: &mut trailer,
        };
        let count = read_varint(&mut varint_buf)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated trailer"))?;
        let mut indices = Vec::new();
        let mut prev = 0u64;
        for i in 0..count {
            let delta = read_varint(&mut varint_buf)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated trailer"))?;
            if i > 0 && delta == 0 {
                return Err(invalid("HPT2 trailer regions not strictly increasing"));
            }
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| invalid("HPT2 trailer region index overflow"))?;
            indices.push(prev);
        }
        let checksum = self.read_u64()?;
        if fnv1a64(&trailer) != checksum {
            return Err(invalid("HPT2 trailer checksum mismatch"));
        }
        let mut end = [0u8; 4];
        self.reader.read_exact(&mut end)?;
        if &end != END_MAGIC {
            return Err(invalid("HPT2 end magic mismatch"));
        }
        if total != self.total_read {
            return Err(invalid("HPT2 trailer record count mismatch"));
        }
        let observed = std::mem::take(&mut self.regions).into_sorted();
        if observed != indices {
            return Err(invalid("HPT2 trailer region set disagrees with records"));
        }
        Ok(())
    }

    fn next_record(&mut self) -> io::Result<Option<MemoryAccess>> {
        while self.remaining_in_block == 0 {
            if !self.next_block()? {
                self.state = ReaderState::Finished;
                return Ok(None);
            }
        }
        let mut slice = &self.block[self.pos..];
        let before = slice.len();
        let mut header = [0u8; 1];
        slice
            .read_exact(&mut header)
            .map_err(|_| invalid("HPT2 block shorter than its record count"))?;
        if header[0] & !1 != 0 {
            return Err(invalid("HPT2 record header has reserved bits set"));
        }
        let delta = match read_varint(&mut slice)? {
            Some(v) => unzigzag(v),
            None => return Err(invalid("HPT2 block shorter than its record count")),
        };
        self.pos += before - slice.len();
        let addr = (self.prev_addr as i64).wrapping_add(delta) as u64;
        self.prev_addr = addr;
        self.remaining_in_block -= 1;
        if self.remaining_in_block == 0 && self.pos != self.block.len() {
            return Err(invalid("HPT2 block has bytes after its last record"));
        }
        self.total_read += 1;
        let access = if header[0] & 1 == 1 {
            MemoryAccess::write(VirtAddr::new(addr))
        } else {
            MemoryAccess::read(VirtAddr::new(addr))
        };
        self.regions.observe(access.addr);
        Ok(Some(access))
    }
}

/// `Read` shim that tees every byte it passes through into a capture
/// buffer — used to checksum the trailer varints while parsing them.
struct VarintCapture<'a, R: Read> {
    reader: &'a mut R,
    captured: &'a mut Vec<u8>,
}

impl<R: Read> Read for VarintCapture<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.reader.read(buf)?;
        self.captured.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

impl<R: Read> Iterator for Hpt2Reader<R> {
    type Item = io::Result<MemoryAccess>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != ReaderState::Streaming {
            return None;
        }
        match self.next_record() {
            Ok(Some(a)) => Some(Ok(a)),
            Ok(None) => None,
            Err(e) => {
                self.state = ReaderState::Failed;
                Some(Err(e))
            }
        }
    }
}

/// Offsets of one validated block inside the mapping.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    payload_start: usize,
    payload_len: u32,
    n_records: u32,
}

/// An `HPT2` trace replayed straight out of a memory-mapped file.
///
/// [`open`](Self::open) performs one full validation pass (checksums,
/// strict decode, trailer cross-checks), after which replay streams
/// decode block-by-block from the mapping with no error handling in the
/// hot path. Memory held is one mapping (paged in lazily by the kernel)
/// plus one decoded block per stream — a multi-gigabyte trace replays
/// without a load phase or a decoded in-memory copy.
#[derive(Debug)]
pub struct MmapTrace {
    name: String,
    map: Mmap,
    blocks: Vec<BlockMeta>,
    total_records: u64,
    regions: Vec<Region>,
}

impl MmapTrace {
    /// Maps and fully validates the `HPT2` trace at `path`.
    ///
    /// # Errors
    ///
    /// Any structural problem — bad magic, checksum mismatch, block
    /// counts disagreeing with payloads, truncation, trailing bytes,
    /// trailer totals or regions disagreeing with the records — is
    /// `InvalidData`/`UnexpectedEof`; OS errors pass through.
    pub fn open(name: impl Into<String>, path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let map = Mmap::map_file(&file)?;
        map.advise(Advice::Sequential);
        map.advise(Advice::WillNeed);
        let bytes = map.as_slice();
        if bytes.len() < 8 || &bytes[..4] != HPT2_MAGIC {
            return Err(invalid("not an HPT2 trace file"));
        }
        let block_records = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if block_records == 0 {
            return Err(invalid("HPT2 header has zero block size"));
        }

        let truncated = || io::Error::new(io::ErrorKind::UnexpectedEof, "truncated HPT2 trace");
        let mut pos = 8usize;
        let mut blocks = Vec::new();
        let mut total = 0u64;
        let mut regions = RegionTracker::default();
        let mut scratch = HugeVec::new();
        loop {
            let header = bytes.get(pos..pos + 8).ok_or_else(truncated)?;
            let payload_len = u32::from_le_bytes(header[..4].try_into().unwrap());
            let n_records = u32::from_le_bytes(header[4..].try_into().unwrap());
            pos += 8;
            if payload_len == 0 && n_records == 0 {
                break;
            }
            if payload_len == 0 || n_records == 0 || n_records > block_records {
                return Err(invalid("HPT2 block header out of range"));
            }
            let checksum_bytes = bytes.get(pos..pos + 8).ok_or_else(truncated)?;
            let checksum = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
            pos += 8;
            let payload = bytes
                .get(pos..pos + payload_len as usize)
                .ok_or_else(truncated)?;
            if fnv1a64(payload) != checksum {
                return Err(invalid("HPT2 block checksum mismatch"));
            }
            scratch.clear();
            decode_block_strict(payload, n_records, &mut scratch, &mut regions)?;
            blocks.push(BlockMeta {
                payload_start: pos,
                payload_len,
                n_records,
            });
            total += u64::from(n_records);
            pos += payload_len as usize;
        }

        // Trailer.
        let trailer_start = pos;
        let total_bytes = bytes.get(pos..pos + 8).ok_or_else(truncated)?;
        let stored_total = u64::from_le_bytes(total_bytes.try_into().unwrap());
        pos += 8;
        let mut cursor = &bytes[pos.min(bytes.len())..];
        let before = cursor.len();
        let count = read_varint(&mut cursor)?.ok_or_else(truncated)?;
        let mut indices = Vec::new();
        let mut prev = 0u64;
        for i in 0..count {
            let delta = read_varint(&mut cursor)?.ok_or_else(truncated)?;
            if i > 0 && delta == 0 {
                return Err(invalid("HPT2 trailer regions not strictly increasing"));
            }
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| invalid("HPT2 trailer region index overflow"))?;
            indices.push(prev);
        }
        pos += before - cursor.len();
        let trailer_payload = &bytes[trailer_start..pos];
        let checksum_bytes = bytes.get(pos..pos + 8).ok_or_else(truncated)?;
        let checksum = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
        pos += 8;
        if fnv1a64(trailer_payload) != checksum {
            return Err(invalid("HPT2 trailer checksum mismatch"));
        }
        let end = bytes.get(pos..pos + 4).ok_or_else(truncated)?;
        if end != END_MAGIC {
            return Err(invalid("HPT2 end magic mismatch"));
        }
        pos += 4;
        if pos != bytes.len() {
            return Err(invalid("HPT2 trace has trailing bytes"));
        }
        if stored_total != total {
            return Err(invalid("HPT2 trailer record count mismatch"));
        }
        let observed = regions.into_sorted();
        if observed != indices {
            return Err(invalid("HPT2 trailer region set disagrees with records"));
        }

        Ok(MmapTrace {
            name: name.into(),
            map,
            blocks,
            total_records: total,
            regions: coalesce_sorted_indices(&observed),
        })
    }

    /// Number of recorded accesses.
    pub fn records(&self) -> u64 {
        self.total_records
    }

    /// Number of on-disk blocks (each independently decodable from its
    /// restart point).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn payload(&self, block: usize) -> &[u8] {
        let meta = self.blocks[block];
        &self.map.as_slice()[meta.payload_start..meta.payload_start + meta.payload_len as usize]
    }

    fn stream_for(&self, thread: u32, threads: u32) -> Hpt2Stream<'_> {
        assert!(thread < threads, "bad thread index");
        Hpt2Stream {
            trace: self,
            next_block: 0,
            buf: HugeVec::new(),
            pos: 0,
            stride: threads as usize,
            phase_skip: thread as usize,
            gather: Vec::new(),
            win: Win::Buf { start: 0, len: 0 },
        }
    }
}

impl Workload for MmapTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn thread_trace(
        &self,
        thread: u32,
        threads: u32,
    ) -> Box<dyn Iterator<Item = MemoryAccess> + Send + '_> {
        // Same round-robin record partition as RecordedWorkload.
        Box::new(StreamIter::new(self.stream_for(thread, threads)))
    }

    fn thread_stream(&self, thread: u32, threads: u32) -> Box<dyn TraceStream + Send + '_> {
        Box::new(self.stream_for(thread, threads))
    }
}

/// Where the current window lives.
#[derive(Debug, Clone, Copy)]
enum Win {
    /// Subslice of the decoded block buffer (single-threaded fast path).
    Buf { start: usize, len: usize },
    /// The gather buffer (block-boundary or strided windows).
    Gather,
}

/// Replay stream over an [`MmapTrace`].
///
/// Single-threaded replay hands out windows that are direct subslices
/// of the decoded block buffer; only windows straddling a block
/// boundary (1 in `block_records / window` calls) are gathered.
/// Strided replay (multi-core partitions) always gathers its every
/// `stride`-th records.
pub struct Hpt2Stream<'a> {
    trace: &'a MmapTrace,
    next_block: usize,
    /// Decoded records of the current block.
    buf: HugeVec<MemoryAccess>,
    /// Consumed prefix of `buf`.
    pos: usize,
    stride: usize,
    /// Records still to skip before the next strided pick.
    phase_skip: usize,
    gather: Vec<MemoryAccess>,
    win: Win,
}

impl Hpt2Stream<'_> {
    /// Decodes the next block into `buf`; false when none remain.
    fn advance_block(&mut self) -> bool {
        let Some(&meta) = self.trace.blocks.get(self.next_block) else {
            self.buf.clear();
            self.pos = 0;
            return false;
        };
        decode_block_trusted(
            self.trace.payload(self.next_block),
            meta.n_records,
            &mut self.buf,
        );
        self.next_block += 1;
        self.pos = 0;
        true
    }
}

impl TraceStream for Hpt2Stream<'_> {
    fn next_window(&mut self, max: usize) -> &[MemoryAccess] {
        if self.stride == 1 {
            if self.pos + max <= self.buf.len() {
                let start = self.pos;
                self.pos += max;
                self.win = Win::Buf { start, len: max };
                return &self.buf[start..start + max];
            }
            // Block boundary: gather the tail, then heads of following
            // blocks until the window is full or the trace ends.
            self.gather.clear();
            self.gather.extend_from_slice(&self.buf[self.pos..]);
            self.pos = self.buf.len();
            while self.gather.len() < max {
                if !self.advance_block() {
                    break;
                }
                let take = (max - self.gather.len()).min(self.buf.len());
                self.gather.extend_from_slice(&self.buf[..take]);
                self.pos = take;
            }
            self.win = Win::Gather;
            return &self.gather;
        }
        // Strided partition: pick every stride-th record.
        self.gather.clear();
        while self.gather.len() < max {
            let avail = self.buf.len() - self.pos;
            if self.phase_skip >= avail {
                self.phase_skip -= avail;
                if !self.advance_block() {
                    break;
                }
                continue;
            }
            self.pos += self.phase_skip;
            self.gather.push(self.buf[self.pos]);
            self.pos += 1;
            self.phase_skip = self.stride - 1;
        }
        self.win = Win::Gather;
        &self.gather
    }

    fn window(&self) -> &[MemoryAccess] {
        match self.win {
            Win::Buf { start, len } => &self.buf[start..start + len],
            Win::Gather => &self.gather,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorded::RecordedWorkload;

    fn acc(addr: u64) -> MemoryAccess {
        MemoryAccess::read(VirtAddr::new(addr))
    }

    fn sample_trace(n: u64) -> Vec<MemoryAccess> {
        (0..n)
            .map(|i| {
                let addr = 0x4000_0000 + (i.wrapping_mul(0x9E37_79B9) % 0x200_0000);
                if i % 3 == 0 {
                    MemoryAccess::write(VirtAddr::new(addr))
                } else {
                    acc(addr)
                }
            })
            .collect()
    }

    fn encode(accesses: &[MemoryAccess], block_records: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = Hpt2Writer::with_block_records(&mut buf, block_records).unwrap();
        w.write_all(accesses.iter().copied()).unwrap();
        assert_eq!(w.records(), accesses.len() as u64);
        w.finish().unwrap();
        buf
    }

    fn temp_trace(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hpage-hpt2-test-{}-{name}", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn empty_roundtrip() {
        let bytes = encode(&[], 8);
        let back: Vec<MemoryAccess> = Hpt2Reader::new(bytes.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn multi_block_roundtrip() {
        let accesses = sample_trace(1000);
        // Block size 64 → 15 full blocks + a 40-record tail.
        let bytes = encode(&accesses, 64);
        let back: Vec<MemoryAccess> = Hpt2Reader::new(bytes.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(back, accesses);
    }

    #[test]
    fn extreme_addresses_roundtrip() {
        let accesses = vec![
            acc(u64::MAX),
            acc(0),
            acc(i64::MAX as u64),
            MemoryAccess::write(VirtAddr::new(1u64 << 63)),
            acc(u64::MAX - 1),
        ];
        let bytes = encode(&accesses, 2);
        let back: Vec<MemoryAccess> = Hpt2Reader::new(bytes.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(back, accesses);
    }

    #[test]
    fn from_reader_auto_detects_hpt2() {
        let accesses = sample_trace(300);
        let bytes = encode(&accesses, 32);
        let w = RecordedWorkload::from_reader("t", bytes.as_slice()).unwrap();
        let replayed: Vec<MemoryAccess> = w.trace().collect();
        assert_eq!(replayed, accesses);
    }

    #[test]
    fn mmap_trace_replays_identically() {
        let accesses = sample_trace(2000);
        let bytes = encode(&accesses, 128);
        let path = temp_trace("replay", &bytes);
        let m = MmapTrace::open("t", &path).unwrap();
        assert_eq!(m.records(), 2000);
        assert_eq!(m.block_count(), 2000 / 128 + 1);
        let replayed: Vec<MemoryAccess> = m.trace().collect();
        assert_eq!(replayed, accesses);
        // Footprint must byte-match the in-memory path.
        let in_mem = RecordedWorkload::new("t", accesses);
        assert_eq!(m.regions(), in_mem.regions());
        assert_eq!(m.footprint_bytes(), in_mem.footprint_bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mmap_stream_windows_match_thread_trace() {
        let accesses = sample_trace(700);
        let bytes = encode(&accesses, 64);
        let path = temp_trace("windows", &bytes);
        let m = MmapTrace::open("t", &path).unwrap();
        let in_mem = RecordedWorkload::new("t", accesses);
        for (thread, threads) in [(0, 1), (0, 2), (1, 2), (3, 4)] {
            let expect: Vec<MemoryAccess> = in_mem.thread_trace(thread, threads).collect();
            let mut s = m.thread_stream(thread, threads);
            let mut got = Vec::new();
            loop {
                // 48 < 64 forces windows that straddle block restarts.
                let win = s.next_window(48).to_vec();
                assert_eq!(win, s.window(), "window() must re-borrow");
                got.extend_from_slice(&win);
                if win.len() < 48 {
                    break;
                }
            }
            assert_eq!(got, expect, "thread {thread}/{threads}");
            assert!(s.next_window(48).is_empty());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let accesses = sample_trace(500);
        let mut bytes = encode(&accesses, 64);
        // Flip a bit deep in some block payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let items: Vec<io::Result<MemoryAccess>> =
            Hpt2Reader::new(bytes.as_slice()).unwrap().collect();
        assert!(
            items.iter().any(|r| r.is_err()),
            "streaming reader must surface the corruption"
        );
        let path = temp_trace("corrupt", &bytes);
        assert!(MmapTrace::open("t", &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_is_rejected() {
        let accesses = sample_trace(500);
        let full = encode(&accesses, 64);
        for cut in [full.len() - 1, full.len() - 5, full.len() / 2, 9] {
            let bytes = &full[..cut];
            let mut ok = true;
            match Hpt2Reader::new(bytes) {
                Ok(r) => {
                    for item in r {
                        if item.is_err() {
                            ok = false;
                            break;
                        }
                    }
                    // A truncated stream must either error or have
                    // stopped before the (missing) validated trailer.
                    if ok {
                        panic!("truncated at {cut}: reader finished cleanly");
                    }
                }
                Err(_) => {}
            }
            let path = temp_trace("trunc", bytes);
            assert!(MmapTrace::open("t", &path).is_err(), "truncated at {cut}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn tampered_trailer_total_is_rejected() {
        let accesses = sample_trace(100);
        let bytes = encode(&accesses, 64);
        // The trailer's u64 total sits right after the 8-byte
        // terminator; rewrite it (and fix its checksum) to lie.
        let trailer_total_at = bytes
            .windows(8)
            .rposition(|w| w == [0u8; 8])
            .expect("terminator")
            + 8;
        let mut tampered = bytes.clone();
        tampered[trailer_total_at] ^= 1;
        // Without fixing the checksum the mismatch is caught there:
        let path = temp_trace("trailer", &tampered);
        let err = MmapTrace::open("t", &path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
        // Now recompute the trailer checksum over the tampered bytes so
        // only the record-count cross-check can catch the lie.
        let trailer_end = tampered.len() - 12; // checksum + end magic
        let sum = fnv1a64(&tampered[trailer_total_at..trailer_end]);
        let at = trailer_end;
        tampered[at..at + 8].copy_from_slice(&sum.to_le_bytes());
        let path = temp_trace("trailer2", &tampered);
        let err = MmapTrace::open("t", &path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_blocks_restart_the_delta_chain() {
        // Two records a huge stride apart, one per block: each block's
        // single varint must encode an absolute address (delta from 0),
        // which only round-trips if restart points work.
        let accesses = vec![acc(0xDEAD_0000_0000), acc(0x0000_BEEF)];
        let bytes = encode(&accesses, 1);
        let back: Vec<MemoryAccess> = Hpt2Reader::new(bytes.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(back, accesses);
    }
}
