//! Huge-page-friendly working buffers.
//!
//! The simulator's biggest allocations — a recorded trace's access
//! array, the mmap reader's block-decode buffers — are exactly the kind
//! of large, hot, sequentially-filled memory the paper is about.
//! [`HugeVec`] aligns its allocation to the 2 MiB huge-page boundary
//! and asks the kernel (via `madvise(MADV_HUGEPAGE)`) to back it with
//! transparent huge pages, so the *simulator's own* TLB behaviour stops
//! polluting the measurements it takes. The meta-effect is measured in
//! the criterion suite (`hugevec_fill` vs a plain `Vec`).

#![allow(unsafe_code)]

use crate::mmap::{advise_raw, Advice};
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ops::Deref;
use std::ptr::NonNull;

/// Alignment (and growth quantum) of every [`HugeVec`] allocation: the
/// x86-64 huge-page size. Aligned, multiple-of-2MiB allocations are
/// what lets THP back the buffer without straddling.
pub const HUGE_PAGE_BYTES: usize = 2 * 1024 * 1024;

/// A growable array of `Copy` elements in a 2 MiB-aligned,
/// `MADV_HUGEPAGE`-advised allocation.
///
/// API is the small slice of `Vec` the trace pipeline needs: `push`,
/// `extend_from_slice`, and `Deref<Target = [T]>`. Elements are `Copy`,
/// so dropping the buffer never needs to drop elements and growth is a
/// plain `memcpy`.
pub struct HugeVec<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
}

// SAFETY: HugeVec owns its allocation exclusively, like Vec; sending it
// (or sharing &HugeVec) is safe whenever the element type allows it.
unsafe impl<T: Copy + Send> Send for HugeVec<T> {}
unsafe impl<T: Copy + Sync> Sync for HugeVec<T> {}

impl<T: Copy> HugeVec<T> {
    /// An empty buffer; allocates nothing until the first push.
    pub fn new() -> Self {
        assert!(
            std::mem::size_of::<T>() > 0,
            "HugeVec: zero-sized types unsupported"
        );
        HugeVec {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    /// An empty buffer with room for `n` elements (rounded up to whole
    /// huge pages).
    pub fn with_capacity(n: usize) -> Self {
        let mut v = HugeVec::new();
        if n > 0 {
            v.grow_to(n);
        }
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drops all elements (a length reset — `T: Copy` needs no drops);
    /// capacity is retained.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: [ptr, ptr+len) is owned, initialised (every element
        // was written by push/extend before len covered it), and
        // borrowed immutably for self's borrow.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Appends one element.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len == self.cap {
            self.grow_to(self.len + 1);
        }
        // SAFETY: len < cap after grow_to, so the write is in bounds.
        unsafe {
            self.ptr.as_ptr().add(self.len).write(value);
        }
        self.len += 1;
    }

    /// Appends every element of `src`.
    pub fn extend_from_slice(&mut self, src: &[T]) {
        if src.is_empty() {
            return;
        }
        let needed = self.len + src.len();
        if needed > self.cap {
            self.grow_to(needed);
        }
        // SAFETY: capacity covers len+src.len(); src cannot overlap the
        // destination because we hold &mut self and src is a live &[T].
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.as_ptr().add(self.len), src.len());
        }
        self.len = needed;
    }

    /// Grows capacity to at least `need` elements: whole huge pages,
    /// doubling to amortise.
    #[cold]
    fn grow_to(&mut self, need: usize) {
        let elem = std::mem::size_of::<T>();
        let min_bytes = need.checked_mul(elem).expect("HugeVec: capacity overflow");
        let doubled = (self.cap * elem).saturating_mul(2);
        let bytes = min_bytes
            .max(doubled)
            .checked_next_multiple_of(HUGE_PAGE_BYTES)
            .or_else(|| min_bytes.checked_next_multiple_of(HUGE_PAGE_BYTES))
            .expect("HugeVec: capacity overflow");
        let layout =
            Layout::from_size_align(bytes, HUGE_PAGE_BYTES).expect("HugeVec: invalid layout");
        // SAFETY: layout has non-zero size (bytes >= HUGE_PAGE_BYTES).
        let new_ptr = unsafe { alloc(layout) };
        let Some(new_ptr) = NonNull::new(new_ptr.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        advise_raw(new_ptr.as_ptr().cast(), bytes, Advice::HugePage);
        if self.len > 0 {
            // SAFETY: both buffers are live and distinct; len elements
            // are initialised in the old one.
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
            }
        }
        self.dealloc_storage();
        self.ptr = new_ptr;
        self.cap = bytes / elem;
    }

    fn dealloc_storage(&mut self) {
        if self.cap > 0 {
            let bytes = self.cap * std::mem::size_of::<T>();
            // Reconstructs exactly the layout grow_to allocated with:
            // cap is always bytes/elem of a HUGE_PAGE_BYTES-multiple
            // allocation... unless elem doesn't divide the byte count
            // evenly; recompute via the same rounding to be exact.
            let bytes = bytes.next_multiple_of(HUGE_PAGE_BYTES);
            let layout =
                Layout::from_size_align(bytes, HUGE_PAGE_BYTES).expect("HugeVec: invalid layout");
            // SAFETY: ptr came from alloc with this same layout.
            unsafe {
                dealloc(self.ptr.as_ptr().cast(), layout);
            }
        }
    }
}

impl<T: Copy> Drop for HugeVec<T> {
    fn drop(&mut self) {
        self.dealloc_storage();
    }
}

impl<T: Copy> Deref for HugeVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> Default for HugeVec<T> {
    fn default() -> Self {
        HugeVec::new()
    }
}

impl<T: Copy> Clone for HugeVec<T> {
    fn clone(&self) -> Self {
        let mut v = HugeVec::with_capacity(self.len);
        v.extend_from_slice(self.as_slice());
        v
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for HugeVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for HugeVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq> Eq for HugeVec<T> {}

impl<T: Copy> FromIterator<T> for HugeVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = HugeVec::with_capacity(iter.size_hint().0);
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy> From<&[T]> for HugeVec<T> {
    fn from(src: &[T]) -> Self {
        let mut v = HugeVec::with_capacity(src.len());
        v.extend_from_slice(src);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_without_allocating() {
        let v: HugeVec<u64> = HugeVec::new();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 0);
        assert_eq!(&*v, &[] as &[u64]);
    }

    #[test]
    fn allocation_is_huge_page_aligned() {
        let mut v: HugeVec<u64> = HugeVec::new();
        v.push(7);
        assert_eq!(v.ptr.as_ptr() as usize % HUGE_PAGE_BYTES, 0);
        assert_eq!(v.capacity(), HUGE_PAGE_BYTES / 8);
    }

    #[test]
    fn push_and_extend_round_trip() {
        let mut v: HugeVec<u32> = HugeVec::new();
        for i in 0..100u32 {
            v.push(i);
        }
        let tail: Vec<u32> = (100..1000).collect();
        v.extend_from_slice(&tail);
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(&*v, &expect[..]);
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn growth_preserves_contents_across_reallocation() {
        // Force at least one reallocation: more than 2MiB of u64s.
        let n = HUGE_PAGE_BYTES / 8 + 1234;
        let mut v: HugeVec<u64> = HugeVec::new();
        for i in 0..n as u64 {
            v.push(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        assert!(v.capacity() >= n);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }

    #[test]
    fn clone_eq_debug() {
        let v: HugeVec<u16> = (0..500u16).collect();
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(format!("{:?}", HugeVec::from(&[1u8, 2][..])), "[1, 2]");
    }

    #[test]
    fn with_capacity_rounds_to_whole_pages() {
        let v: HugeVec<u8> = HugeVec::with_capacity(10);
        assert_eq!(v.capacity(), HUGE_PAGE_BYTES);
        assert!(v.is_empty());
    }
}
