//! Compact binary trace files.
//!
//! The paper's two-step methodology moves data between the offline
//! simulation and the replay run through trace files (§4: "the PCC
//! candidate addresses as well as the time when they are promoted are
//! recorded in a trace file"). This module provides the equivalent for
//! raw access traces: a delta/varint-encoded binary format that makes
//! captured workload traces small enough to store and share, plus a
//! streaming reader that plugs into anything accepting an access
//! iterator.
//!
//! Format (`HPT1` magic, little-endian varints):
//!
//! ```text
//! "HPT1"
//! repeat {
//!     header byte: bit0 = is_write, bits1.. reserved 0
//!     zigzag varint: delta of the address from the previous record
//! }
//! ```

use hpage_types::{AccessKind, MemoryAccess, VirtAddr};
use std::io::{self, Read, Write};

pub(crate) const HPT1_MAGIC: &[u8; 4] = b"HPT1";
const MAGIC: &[u8; 4] = HPT1_MAGIC;

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

pub(crate) fn read_varint<R: Read>(r: &mut R) -> io::Result<Option<u64>> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && first => return Ok(None),
            Err(e) => return Err(e),
        }
        first = false;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        // The 10th byte (shift == 63) has room for exactly one payload
        // bit. A continuation bit, or any of payload bits 1..7 set,
        // encodes a value outside u64 — reject it instead of silently
        // shifting those bits into oblivion and decoding a wrong
        // address.
        if shift == 63 && byte[0] > 0x01 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
    }
}

/// Streams accesses into `writer` in `HPT1` format.
///
/// A mut reference can be passed as the writer (see the standard
/// library's blanket `Write for &mut W` impl).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    writer: W,
    prev_addr: u64,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the file header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut writer: W) -> io::Result<Self> {
        writer.write_all(MAGIC)?;
        Ok(TraceWriter {
            writer,
            prev_addr: 0,
            records: 0,
        })
    }

    /// Appends one access.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, access: &MemoryAccess) -> io::Result<()> {
        let header = u8::from(access.kind == AccessKind::Write);
        self.writer.write_all(&[header])?;
        // Wrapping subtraction in u64, then reinterpret: the reader
        // undoes it with `wrapping_add` in the same ring, so round-trip
        // is exact for every address pair — including ones more than
        // i64::MAX apart, where a checked `as i64` subtraction
        // overflows (debug-build panic).
        let delta = access.addr.raw().wrapping_sub(self.prev_addr) as i64;
        write_varint(&mut self.writer, zigzag(delta))?;
        self.prev_addr = access.addr.raw();
        self.records += 1;
        Ok(())
    }

    /// Appends every access of an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_all<I: IntoIterator<Item = MemoryAccess>>(&mut self, trace: I) -> io::Result<()> {
        for a in trace {
            self.write(&a)?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Streaming reader over an `HPT1` trace. Implements
/// `Iterator<Item = io::Result<MemoryAccess>>`.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    reader: R,
    prev_addr: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic does not match, or any I/O
    /// error from the reader.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an HPT1 trace file",
            ));
        }
        Ok(TraceReader {
            reader,
            prev_addr: 0,
        })
    }

    /// Resumes a reader positioned just past the magic (used by the
    /// format-sniffing entry points, which consume the magic to decide
    /// which decoder to hand the stream to).
    pub(crate) fn after_magic(reader: R) -> Self {
        TraceReader {
            reader,
            prev_addr: 0,
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<MemoryAccess>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut header = [0u8; 1];
        match self.reader.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => return Some(Err(e)),
        }
        let delta = match read_varint(&mut self.reader) {
            Ok(Some(v)) => unzigzag(v),
            Ok(None) => {
                return Some(Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated record",
                )))
            }
            Err(e) => return Some(Err(e)),
        };
        let addr = (self.prev_addr as i64).wrapping_add(delta) as u64;
        self.prev_addr = addr;
        let access = if header[0] & 1 == 1 {
            MemoryAccess::write(VirtAddr::new(addr))
        } else {
            MemoryAccess::read(VirtAddr::new(addr))
        };
        Some(Ok(access))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthScale, SyntheticWorkload};
    use crate::workload::Workload;

    fn roundtrip(accesses: &[MemoryAccess]) -> Vec<MemoryAccess> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        w.write_all(accesses.iter().copied()).unwrap();
        assert_eq!(w.records(), accesses.len() as u64);
        w.finish().unwrap();
        TraceReader::new(buf.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap()
    }

    #[test]
    fn empty_roundtrip() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn mixed_roundtrip() {
        let accesses = vec![
            MemoryAccess::read(VirtAddr::new(0x1000)),
            MemoryAccess::write(VirtAddr::new(0x0FFF)), // negative delta
            MemoryAccess::read(VirtAddr::new(u64::MAX / 2)),
            MemoryAccess::write(VirtAddr::new(0)),
        ];
        assert_eq!(roundtrip(&accesses), accesses);
    }

    #[test]
    fn workload_trace_roundtrip_and_compression() {
        let w: SyntheticWorkload = crate::synth::dedup(SynthScale::TEST, 3);
        let accesses: Vec<MemoryAccess> = w.trace().take(50_000).collect();
        let mut buf = Vec::new();
        let mut tw = TraceWriter::new(&mut buf).unwrap();
        tw.write_all(accesses.iter().copied()).unwrap();
        tw.finish().unwrap();
        // Sequential-heavy traces compress far below 9 bytes/record.
        assert!(
            buf.len() < accesses.len() * 4,
            "trace file {} bytes for {} records",
            buf.len(),
            accesses.len()
        );
        let back: Vec<MemoryAccess> = TraceReader::new(buf.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(back, accesses);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::new(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        w.write(&MemoryAccess::read(VirtAddr::new(0xABCDEF)))
            .unwrap();
        w.finish().unwrap();
        buf.pop(); // chop the varint's last byte
        let items: Vec<io::Result<MemoryAccess>> =
            TraceReader::new(buf.as_slice()).unwrap().collect();
        assert!(items.last().unwrap().is_err());
    }

    #[test]
    fn i64_boundary_delta_roundtrips() {
        // Regression: consecutive addresses more than i64::MAX apart
        // used to overflow the writer's checked `i64` subtraction and
        // panic in debug builds. Wrapping arithmetic makes every pair
        // round-trip exactly.
        let accesses = vec![
            MemoryAccess::read(VirtAddr::new(i64::MAX as u64)),
            MemoryAccess::write(VirtAddr::new(u64::MAX)),
            MemoryAccess::read(VirtAddr::new(0)),
            MemoryAccess::write(VirtAddr::new(1u64 << 63)),
            MemoryAccess::read(VirtAddr::new((1u64 << 63) - 1)),
        ];
        assert_eq!(roundtrip(&accesses), accesses);
    }

    #[test]
    fn ten_byte_varint_edge() {
        // u64::MAX encodes as nine 0xFF continuation bytes + final 0x01:
        // the 10th byte carries exactly one payload bit.
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        assert_eq!(
            read_varint(&mut max.as_slice()).unwrap(),
            Some(u64::MAX),
            "canonical 10-byte encoding of u64::MAX must decode"
        );

        // Regression: payload bits 1..7 in the 10th byte used to be
        // silently shifted out, decoding a *wrong* value instead of
        // erroring.
        for last in [0x02u8, 0x40, 0x7F] {
            let mut buf = vec![0xFFu8; 9];
            buf.push(last);
            let err = read_varint(&mut buf.as_slice()).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "last byte {last:#x}"
            );
        }

        // A continuation bit in the 10th byte overflows too, even if
        // its payload bits are in range.
        for tail in [&[0x81u8, 0x00][..], &[0x80, 0x01]] {
            let mut buf = vec![0xFFu8; 9];
            buf.extend_from_slice(tail);
            let err = read_varint(&mut buf.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "tail {tail:?}");
        }
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), Some(v));
        }
        assert_eq!(unzigzag(zigzag(-5)), -5);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }
}
