//! The **Promotion Candidate Cache (PCC)** — the core contribution of
//! *"Architectural Support for Optimizing Huge Page Selection Within the
//! OS"* (MICRO 2023).
//!
//! The PCC is a small, fully-associative hardware structure placed after
//! the last-level TLB. Whenever a memory access misses the whole TLB
//! hierarchy and triggers a hardware page-table walk, the walker checks the
//! *accessed* bit of the page-table entry covering the huge-page-aligned
//! region (the PMD entry for 2 MiB regions). If the bit was already set —
//! i.e. this is not a cold first touch — the walk is reported to the PCC,
//! which tracks the region's page-table-walk frequency in an 8-bit
//! saturating counter. Regions with the highest counters are the best huge
//! page promotion candidates ("HUBs": High-reUse TLB-sensitive data), and
//! the OS periodically reads a ranked dump of the PCC to decide what to
//! promote (Fig. 4 of the paper).
//!
//! # Example
//!
//! ```
//! use hpage_pcc::{Pcc, PccEvent};
//! use hpage_types::{PageSize, PccConfig, VirtAddr};
//!
//! let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
//! let hot = VirtAddr::new(0x8A31_4000_0000).vpn(PageSize::Huge2M);
//!
//! // First walk to a never-before-accessed region is filtered out
//! // (cold-miss filter driven by the page-table accessed bit).
//! assert_eq!(pcc.record_walk(hot, false), PccEvent::FilteredColdMiss);
//!
//! // Subsequent walks (accessed bit already set) are tracked.
//! pcc.record_walk(hot, true);
//! pcc.record_walk(hot, true);
//! let dump = pcc.dump();
//! assert_eq!(dump[0].region, hot);
//! assert_eq!(dump[0].frequency, 1); // inserted at 0, bumped once
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod cache;

pub use bank::{CoreCandidate, PccBank};
pub use cache::{Candidate, Pcc, PccEvent, PccStats, ReplacementPolicy};

/// Decides whether a 1 GiB promotion is preferable to 2 MiB promotions for
/// a region, per §3.2.3 of the paper: if the frequency of a 2 MiB PCC entry
/// is at least 512× less than the corresponding 1 GiB PCC entry's
/// frequency, the 1 GiB page size is the better fit.
///
/// `freq_2m` is the frequency of one 2 MiB entry inside the 1 GiB region;
/// `freq_1g` is the 1 GiB PCC entry's frequency.
///
/// ```
/// use hpage_pcc::prefer_1g_promotion;
/// assert!(prefer_1g_promotion(1, 512));
/// assert!(!prefer_1g_promotion(2, 512));
/// assert!(prefer_1g_promotion(0, 1));
/// ```
pub fn prefer_1g_promotion(freq_2m: u64, freq_1g: u64) -> bool {
    if freq_1g == 0 {
        return false;
    }
    match freq_2m.checked_mul(512) {
        Some(scaled) => scaled <= freq_1g,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefer_1g_boundary() {
        assert!(prefer_1g_promotion(0, 1));
        assert!(prefer_1g_promotion(1, 512));
        assert!(!prefer_1g_promotion(1, 511));
        assert!(!prefer_1g_promotion(0, 0));
        // Overflow-safe.
        assert!(!prefer_1g_promotion(u64::MAX, u64::MAX));
    }
}
