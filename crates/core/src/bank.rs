//! Per-core PCC banks (§3.2.2: "Per Core vs Shared PCCs").
//!
//! The paper chooses one local PCC per core: each core's TLB hierarchy
//! feeds its own PCC, and the OS is responsible for aggregating the
//! per-core candidate lists before promoting. [`PccBank`] models the set of
//! per-core PCCs of one machine and provides the aggregation views the OS
//! promotion engine consumes.

use crate::cache::{Candidate, Pcc, PccEvent, ReplacementPolicy};
use hpage_types::{CoreId, FxHashMap, FxHashSet, PageSize, PccConfig, Vpn};

/// A candidate tagged with the core whose PCC reported it, as seen by the
/// OS when it aggregates multiple per-core PCC dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreCandidate {
    /// The core whose PCC tracked this region.
    pub core: CoreId,
    /// The region and its frequency.
    pub candidate: Candidate,
}

impl core::fmt::Display for CoreCandidate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.core, self.candidate)
    }
}

/// The per-core PCCs of a simulated machine, all tracking the same
/// granularity.
#[derive(Debug, Clone)]
pub struct PccBank {
    pccs: Vec<Pcc>,
}

impl PccBank {
    /// Creates `cores` identical PCCs.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or the config/granularity are invalid (see
    /// [`Pcc::new`]).
    pub fn new(cores: u32, config: PccConfig, granularity: PageSize) -> Self {
        Self::with_replacement(cores, config, granularity, ReplacementPolicy::default())
    }

    /// Creates `cores` identical PCCs with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PccBank::new`].
    pub fn with_replacement(
        cores: u32,
        config: PccConfig,
        granularity: PageSize,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(cores > 0, "a PCC bank needs at least one core");
        PccBank {
            pccs: (0..cores)
                .map(|_| Pcc::with_replacement(config, granularity, policy))
                .collect(),
        }
    }

    /// Number of cores (= number of PCCs).
    pub fn cores(&self) -> u32 {
        self.pccs.len() as u32
    }

    /// The PCC of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn pcc(&self, core: CoreId) -> &Pcc {
        &self.pccs[core.0 as usize]
    }

    /// Mutable access to the PCC of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn pcc_mut(&mut self, core: CoreId) -> &mut Pcc {
        &mut self.pccs[core.0 as usize]
    }

    /// Reports a walk observed on `core` (see [`Pcc::record_walk`]).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or the region granularity is wrong.
    pub fn record_walk(&mut self, core: CoreId, region: Vpn, access_bit_was_set: bool) -> PccEvent {
        self.pcc_mut(core).record_walk(region, access_bit_was_set)
    }

    /// Invalidates `region` in *every* PCC — a TLB shootdown is broadcast
    /// to all cores, so all PCC copies of the region must go (§3.3).
    /// Returns the number of PCCs that held the region.
    pub fn invalidate_all(&mut self, region: Vpn) -> usize {
        self.pccs
            .iter_mut()
            .filter_map(|p| p.invalidate(region).then_some(()))
            .count()
    }

    /// Aggregated dump of all PCCs in "highest frequency first" order — the
    /// OS view used by the highest-PCC-frequency promotion policy.
    ///
    /// A region tracked by several cores (each core's TLB misses feed its
    /// own PCC) appears **once**, with the per-core frequencies summed and
    /// the candidate attributed to the lowest-numbered tracking core.
    /// Emitting one entry per core used to hand the promotion engine the
    /// same region several times, wasting promotion-budget slots on
    /// no-op repeat promotions and under-ranking regions whose heat is
    /// spread across threads.
    pub fn dump_by_frequency(&self) -> Vec<CoreCandidate> {
        let mut merged: Vec<CoreCandidate> = Vec::new();
        let mut slot_of_region: FxHashMap<u64, usize> = FxHashMap::default();
        for (i, pcc) in self.pccs.iter().enumerate() {
            for candidate in pcc.dump() {
                match slot_of_region.entry(candidate.region.index()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let merged = &mut merged[*e.get()].candidate;
                        merged.frequency = merged.frequency.saturating_add(candidate.frequency);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(merged.len());
                        merged.push(CoreCandidate {
                            core: CoreId(i as u32),
                            candidate,
                        });
                    }
                }
            }
        }
        merged.sort_by(|a, b| {
            b.candidate
                .frequency
                .cmp(&a.candidate.frequency)
                .then_with(|| a.core.0.cmp(&b.core.0))
                .then_with(|| a.candidate.region.index().cmp(&b.candidate.region.index()))
        });
        merged
    }

    /// Aggregated dump interleaving the per-core ranked lists round-robin
    /// (core 0's best, core 1's best, …, core 0's second, …) — the OS view
    /// used by the round-robin promotion policy, which distributes huge
    /// pages evenly across threads.
    ///
    /// A region tracked by several cores keeps only its **first**
    /// occurrence in the interleaved order (it already got that core's
    /// fair-share slot); repeats from later cores used to burn those
    /// cores' slots on regions the engine had just promoted.
    pub fn dump_round_robin(&self) -> Vec<CoreCandidate> {
        let per_core: Vec<Vec<Candidate>> = self.pccs.iter().map(|p| p.dump()).collect();
        let longest = per_core.iter().map(Vec::len).max().unwrap_or(0);
        let mut out = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for rank in 0..longest {
            for (i, list) in per_core.iter().enumerate() {
                if let Some(c) = list.get(rank) {
                    if seen.insert(c.region.index()) {
                        out.push(CoreCandidate {
                            core: CoreId(i as u32),
                            candidate: *c,
                        });
                    }
                }
            }
        }
        out
    }

    /// Detaches the PCC of `core` from the bank, leaving an empty
    /// placeholder with the same configuration. The sharded simulation
    /// loop uses this to hand each core's PCC to the worker thread that
    /// owns the core between interval barriers; [`restore`](Self::restore)
    /// puts it back before the OS consumes the bank.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn take(&mut self, core: CoreId) -> Pcc {
        let slot = &mut self.pccs[core.0 as usize];
        let empty = Pcc::with_replacement(
            *slot.config(),
            slot.granularity(),
            slot.replacement_policy(),
        );
        core::mem::replace(slot, empty)
    }

    /// Reattaches a PCC previously [`take`](Self::take)n from `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn restore(&mut self, core: CoreId, pcc: Pcc) {
        self.pccs[core.0 as usize] = pcc;
    }

    /// Total number of candidates tracked across all cores.
    pub fn total_candidates(&self) -> usize {
        self.pccs.iter().map(Pcc::len).sum()
    }

    /// Empties every per-core PCC, returning the number of candidates
    /// lost. Models an SRAM reset fault (§3.2: the PCC is architecturally
    /// transparent state, so losing it is safe — only promotion quality
    /// degrades until counters are rebuilt).
    pub fn clear_all(&mut self) -> usize {
        let lost = self.total_candidates();
        for pcc in &mut self.pccs {
            pcc.clear();
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Huge2M)
    }

    fn bank(cores: u32) -> PccBank {
        PccBank::new(
            cores,
            PccConfig::paper_2m().with_entries(8),
            PageSize::Huge2M,
        )
    }

    #[test]
    fn walks_stay_core_local() {
        let mut b = bank(2);
        b.record_walk(CoreId(0), region(1), true);
        b.record_walk(CoreId(0), region(1), true);
        assert_eq!(b.pcc(CoreId(0)).frequency_of(region(1)), Some(1));
        assert_eq!(b.pcc(CoreId(1)).frequency_of(region(1)), None);
    }

    #[test]
    fn shootdown_broadcasts_to_all_cores() {
        let mut b = bank(3);
        for c in 0..3 {
            b.record_walk(CoreId(c), region(7), true);
        }
        assert_eq!(b.invalidate_all(region(7)), 3);
        assert_eq!(b.total_candidates(), 0);
    }

    #[test]
    fn frequency_dump_is_globally_sorted() {
        let mut b = bank(2);
        // Core 0: region 1 with freq 3. Core 1: region 2 with freq 5.
        for _ in 0..4 {
            b.record_walk(CoreId(0), region(1), true);
        }
        for _ in 0..6 {
            b.record_walk(CoreId(1), region(2), true);
        }
        let dump = b.dump_by_frequency();
        assert_eq!(dump[0].candidate.region, region(2));
        assert_eq!(dump[0].core, CoreId(1));
        assert_eq!(dump[1].candidate.region, region(1));
        assert!(dump
            .windows(2)
            .all(|w| w[0].candidate.frequency >= w[1].candidate.frequency));
    }

    #[test]
    fn round_robin_interleaves_cores() {
        let mut b = bank(2);
        // Core 0 tracks regions 1,2; core 1 tracks regions 11,12.
        for r in [1u64, 1, 1, 2] {
            b.record_walk(CoreId(0), region(r), true);
        }
        for r in [11u64, 11, 12] {
            b.record_walk(CoreId(1), region(r), true);
        }
        let rr = b.dump_round_robin();
        let cores: Vec<u32> = rr.iter().map(|c| c.core.0).collect();
        assert_eq!(cores, vec![0, 1, 0, 1]);
        // First entries are each core's top candidate.
        assert_eq!(rr[0].candidate.region, region(1));
        assert_eq!(rr[1].candidate.region, region(11));
    }

    #[test]
    fn round_robin_handles_uneven_lists() {
        let mut b = bank(2);
        b.record_walk(CoreId(0), region(1), true);
        let rr = b.dump_round_robin();
        assert_eq!(rr.len(), 1);
        assert_eq!(rr[0].core, CoreId(0));
    }

    #[test]
    fn frequency_dump_merges_regions_shared_across_cores() {
        let mut b = bank(3);
        // Region 5 is hot on every core (a shared heap in a fig-8 style
        // multithreaded run): freq 2 on core 0, 3 on core 1, 1 on core 2.
        for _ in 0..3 {
            b.record_walk(CoreId(0), region(5), true);
        }
        for _ in 0..4 {
            b.record_walk(CoreId(1), region(5), true);
        }
        for _ in 0..2 {
            b.record_walk(CoreId(2), region(5), true);
        }
        // Region 9 is core-1-local with freq 4 — higher than any single
        // core's view of region 5, lower than the merged view.
        for _ in 0..5 {
            b.record_walk(CoreId(1), region(9), true);
        }
        let dump = b.dump_by_frequency();
        // One entry per region, not one per (core, region).
        assert_eq!(dump.len(), 2);
        // The shared region outranks the single-core one only because
        // its per-core frequencies were summed: 2 + 3 + 1 = 6 > 4.
        assert_eq!(dump[0].candidate.region, region(5));
        assert_eq!(dump[0].candidate.frequency, 6);
        // Attributed to the lowest-numbered core that tracks it.
        assert_eq!(dump[0].core, CoreId(0));
        assert_eq!(dump[1].candidate.region, region(9));
        assert_eq!(dump[1].candidate.frequency, 4);
    }

    #[test]
    fn round_robin_emits_shared_region_once() {
        let mut b = bank(2);
        // Both cores rank region 5 first; core 0 also tracks region 1,
        // core 1 also tracks region 11.
        for r in [5u64, 5, 5, 1] {
            b.record_walk(CoreId(0), region(r), true);
        }
        for r in [5u64, 5, 11] {
            b.record_walk(CoreId(1), region(r), true);
        }
        let rr = b.dump_round_robin();
        let regions: Vec<u64> = rr.iter().map(|c| c.candidate.region.index()).collect();
        // Core 1's duplicate of region 5 is dropped; its slot is not
        // wasted on a region already first in line.
        assert_eq!(
            regions.iter().filter(|&&r| r == region(5).index()).count(),
            1
        );
        assert_eq!(rr[0].candidate.region, region(5));
        assert_eq!(rr[0].core, CoreId(0));
        // Every tracked region still appears exactly once.
        let mut sorted = regions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 5, 11]);
    }

    #[test]
    fn take_restore_round_trips() {
        let mut b = bank(2);
        for _ in 0..3 {
            b.record_walk(CoreId(0), region(1), true);
        }
        let taken = b.take(CoreId(0));
        // The placeholder is empty but keeps the slot's configuration.
        assert_eq!(b.pcc(CoreId(0)).len(), 0);
        assert_eq!(b.pcc(CoreId(0)).config(), taken.config());
        assert_eq!(taken.frequency_of(region(1)), Some(2));
        b.restore(CoreId(0), taken);
        assert_eq!(b.pcc(CoreId(0)).frequency_of(region(1)), Some(2));
        assert_eq!(b.total_candidates(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = bank(0);
    }

    #[test]
    fn display_includes_core() {
        let mut b = bank(1);
        b.record_walk(CoreId(0), region(1), true);
        let d = b.dump_by_frequency();
        assert!(d[0].to_string().starts_with("core0"));
    }
}
