//! The single-PCC structure (Fig. 3, right side, of the paper).

use core::fmt;
use hpage_types::{PageSize, PccConfig, Vpn};

/// Victim-selection policy for a full PCC (§3.2.1).
///
/// The paper uses LFU with LRU as the tiebreaker and notes that pure LRU
/// performs similarly at 128 entries because evicted entries usually all
/// have frequency 0. Both are provided so the claim can be tested
/// (ablation bench `ablation_replacement`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Evict the least-frequently-used entry; break ties by least recently
    /// used. The paper's default.
    #[default]
    LfuWithLruTiebreak,
    /// Evict the least-recently-used entry regardless of frequency.
    Lru,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::LfuWithLruTiebreak => write!(f, "LFU+LRU"),
            ReplacementPolicy::Lru => write!(f, "LRU"),
        }
    }
}

/// Outcome of reporting one page-table walk to the PCC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PccEvent {
    /// The walk was a cold miss (region's accessed bit not yet set) and the
    /// access-bit filter dropped it.
    FilteredColdMiss,
    /// The region was already tracked; its frequency was incremented
    /// to the contained value.
    Hit(u64),
    /// The region was inserted into a free slot with frequency 0.
    Inserted,
    /// The region was inserted after evicting the contained victim region.
    InsertedWithEviction(Vpn),
}

/// One entry of a PCC dump: a huge-page-region promotion candidate and its
/// observed page-table-walk frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// The huge-page-aligned virtual region (the PCC tag).
    pub region: Vpn,
    /// The frequency counter value at dump time.
    pub frequency: u64,
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} freq={}", self.region, self.frequency)
    }
}

/// Counters describing everything a PCC instance has done. Useful for
/// experiments and for asserting hardware-behaviour invariants in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PccStats {
    /// Page-table walks reported to the PCC (post-TLB-hierarchy misses).
    pub walks_reported: u64,
    /// Walks dropped by the cold-miss access-bit filter.
    pub cold_filtered: u64,
    /// Walks that hit an existing entry.
    pub hits: u64,
    /// Insertions of new regions.
    pub insertions: u64,
    /// Evictions caused by insertions into a full PCC.
    pub evictions: u64,
    /// Invalidations triggered by TLB shootdowns (promotions etc.).
    pub invalidations: u64,
    /// Times the decay function halved all counters.
    pub decays: u64,
}

/// A single promotion candidate cache (fully associative).
///
/// The structure tracks `config.entries` huge-page-aligned regions at one
/// granularity (2 MiB or 1 GiB). The frequency field is an N-bit saturating
/// counter; when any counter saturates, all counters are halved so their
/// relative order is maintained (the paper's decay function).
#[derive(Debug, Clone)]
pub struct Pcc {
    config: PccConfig,
    granularity: PageSize,
    policy: ReplacementPolicy,
    entries: Vec<Entry>,
    clock: u64,
    stats: PccStats,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    region_index: u64,
    frequency: u64,
    last_used: u64,
}

impl Pcc {
    /// Creates a PCC tracking regions of `granularity` with the paper's
    /// default LFU(+LRU) replacement.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`PccConfig::validate`]) or
    /// `granularity` is the base page size — the PCC tracks huge-page
    /// regions only.
    pub fn new(config: PccConfig, granularity: PageSize) -> Self {
        Pcc::with_replacement(config, granularity, ReplacementPolicy::default())
    }

    /// Creates a PCC with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Pcc::new`].
    pub fn with_replacement(
        config: PccConfig,
        granularity: PageSize,
        policy: ReplacementPolicy,
    ) -> Self {
        config.validate().expect("invalid PCC config");
        assert!(
            granularity.is_huge(),
            "the PCC tracks huge-page regions, not base pages"
        );
        Pcc {
            entries: Vec::with_capacity(config.entries as usize),
            config,
            granularity,
            policy,
            clock: 0,
            stats: PccStats::default(),
        }
    }

    /// The configuration this PCC was built with.
    pub fn config(&self) -> &PccConfig {
        &self.config
    }

    /// The region granularity (2 MiB or 1 GiB) this PCC tracks.
    pub fn granularity(&self) -> PageSize {
        self.granularity
    }

    /// The replacement policy in effect.
    pub fn replacement_policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of regions currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no regions are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of regions (the configured entry count).
    pub fn capacity(&self) -> usize {
        self.config.entries as usize
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &PccStats {
        &self.stats
    }

    /// Reports a hardware page-table walk for an address inside `region`.
    ///
    /// `access_bit_was_set` is the value of the page-table accessed bit
    /// covering the region *before* this walk set it (PMD bit for 2 MiB,
    /// PUD bit for 1 GiB — steps 3/6 of Fig. 3). When the configured
    /// cold-miss filter is on and the bit was clear, the walk is ignored so
    /// cold first-touch misses cannot pollute the PCC.
    ///
    /// # Panics
    ///
    /// Panics if `region.size()` differs from this PCC's granularity.
    pub fn record_walk(&mut self, region: Vpn, access_bit_was_set: bool) -> PccEvent {
        assert_eq!(
            region.size(),
            self.granularity,
            "region granularity must match the PCC's"
        );
        self.stats.walks_reported += 1;
        self.clock += 1;

        if self.config.access_bit_filter && !access_bit_was_set {
            self.stats.cold_filtered += 1;
            return PccEvent::FilteredColdMiss;
        }

        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.region_index == region.index())
        {
            // Hit: bump the saturating counter, decaying first if needed.
            if self.entries[pos].frequency >= self.config.counter_max() {
                if self.config.decay_on_saturation {
                    self.decay();
                } else {
                    // Saturate: stay at max, refresh recency.
                    self.entries[pos].last_used = self.clock;
                    self.stats.hits += 1;
                    return PccEvent::Hit(self.entries[pos].frequency);
                }
            }
            self.entries[pos].frequency += 1;
            self.entries[pos].last_used = self.clock;
            self.stats.hits += 1;
            return PccEvent::Hit(self.entries[pos].frequency);
        }

        // Miss: insert, evicting a victim when full.
        let evicted = if self.entries.len() == self.capacity() {
            let victim = self.select_victim();
            let v = self.entries.swap_remove(victim);
            self.stats.evictions += 1;
            Some(Vpn::new(v.region_index, self.granularity))
        } else {
            None
        };
        self.entries.push(Entry {
            region_index: region.index(),
            frequency: 0,
            last_used: self.clock,
        });
        self.stats.insertions += 1;
        match evicted {
            Some(v) => PccEvent::InsertedWithEviction(v),
            None => PccEvent::Inserted,
        }
    }

    fn select_victim(&self) -> usize {
        debug_assert!(!self.entries.is_empty());
        let mut best = 0usize;
        for i in 1..self.entries.len() {
            let (a, b) = (&self.entries[i], &self.entries[best]);
            let worse = match self.policy {
                ReplacementPolicy::LfuWithLruTiebreak => (a.frequency, a.last_used)
                    .cmp(&(b.frequency, b.last_used))
                    .is_lt(),
                ReplacementPolicy::Lru => a.last_used < b.last_used,
            };
            if worse {
                best = i;
            }
        }
        best
    }

    fn decay(&mut self) {
        for e in &mut self.entries {
            e.frequency /= 2;
        }
        self.stats.decays += 1;
    }

    /// Removes `region` from the PCC if present, returning whether it was
    /// tracked. Invoked on TLB shootdowns: when the OS promotes a candidate
    /// (or migrates its pages) the shootdown invalidates the PCC entry so
    /// no stale candidate survives (§3.3, Fig. 4 step C).
    pub fn invalidate(&mut self, region: Vpn) -> bool {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.region_index == region.index() && region.size() == self.granularity)
        {
            self.entries.swap_remove(pos);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Returns the tracked frequency of `region`, if present.
    pub fn frequency_of(&self, region: Vpn) -> Option<u64> {
        if region.size() != self.granularity {
            return None;
        }
        self.entries
            .iter()
            .find(|e| e.region_index == region.index())
            .map(|e| e.frequency)
    }

    /// Dumps the PCC contents as a priority list — highest frequency first,
    /// most recently used first among equals — exactly the order the OS
    /// reads from the designated memory region in Fig. 4.
    pub fn dump(&self) -> Vec<Candidate> {
        let mut snapshot: Vec<&Entry> = self.entries.iter().collect();
        snapshot.sort_by_key(|e| std::cmp::Reverse((e.frequency, e.last_used)));
        snapshot
            .into_iter()
            .map(|e| Candidate {
                region: Vpn::new(e.region_index, self.granularity),
                frequency: e.frequency,
            })
            .collect()
    }

    /// Iterates over tracked candidates in unspecified order (cheaper than
    /// [`dump`](Self::dump) when ranking is not needed).
    pub fn iter(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.entries.iter().map(|e| Candidate {
            region: Vpn::new(e.region_index, self.granularity),
            frequency: e.frequency,
        })
    }

    /// Clears all entries (e.g. on context switch in a per-process PCC
    /// virtualisation model). Statistics are preserved.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::VirtAddr;

    fn region(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Huge2M)
    }

    fn small_pcc(entries: u32) -> Pcc {
        Pcc::new(
            PccConfig::paper_2m().with_entries(entries),
            PageSize::Huge2M,
        )
    }

    #[test]
    fn insert_hit_sequence() {
        let mut pcc = small_pcc(4);
        assert_eq!(pcc.record_walk(region(1), true), PccEvent::Inserted);
        assert_eq!(pcc.record_walk(region(1), true), PccEvent::Hit(1));
        assert_eq!(pcc.record_walk(region(1), true), PccEvent::Hit(2));
        assert_eq!(pcc.frequency_of(region(1)), Some(2));
        assert_eq!(pcc.len(), 1);
    }

    #[test]
    fn cold_miss_filter_drops_first_touch() {
        let mut pcc = small_pcc(4);
        assert_eq!(
            pcc.record_walk(region(9), false),
            PccEvent::FilteredColdMiss
        );
        assert!(pcc.is_empty());
        assert_eq!(pcc.stats().cold_filtered, 1);
        // With the bit set, it is admitted.
        assert_eq!(pcc.record_walk(region(9), true), PccEvent::Inserted);
    }

    #[test]
    fn filter_disabled_admits_cold_misses() {
        let cfg = PccConfig {
            access_bit_filter: false,
            ..PccConfig::paper_2m().with_entries(4)
        };
        let mut pcc = Pcc::new(cfg, PageSize::Huge2M);
        assert_eq!(pcc.record_walk(region(9), false), PccEvent::Inserted);
        assert_eq!(pcc.stats().cold_filtered, 0);
    }

    #[test]
    fn lfu_eviction_prefers_lowest_frequency() {
        let mut pcc = small_pcc(2);
        pcc.record_walk(region(1), true);
        pcc.record_walk(region(1), true); // freq 1
        pcc.record_walk(region(2), true); // freq 0
                                          // PCC full; inserting region 3 must evict region 2 (lowest freq).
        match pcc.record_walk(region(3), true) {
            PccEvent::InsertedWithEviction(v) => assert_eq!(v, region(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(pcc.frequency_of(region(1)).is_some());
        assert!(pcc.frequency_of(region(2)).is_none());
    }

    #[test]
    fn lfu_tiebreak_is_lru() {
        let mut pcc = small_pcc(2);
        pcc.record_walk(region(1), true); // freq 0, older
        pcc.record_walk(region(2), true); // freq 0, newer
        match pcc.record_walk(region(3), true) {
            PccEvent::InsertedWithEviction(v) => assert_eq!(v, region(1)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn pure_lru_ignores_frequency() {
        let mut pcc = Pcc::with_replacement(
            PccConfig::paper_2m().with_entries(2),
            PageSize::Huge2M,
            ReplacementPolicy::Lru,
        );
        pcc.record_walk(region(1), true);
        pcc.record_walk(region(1), true);
        pcc.record_walk(region(1), true); // freq 2, but oldest after next line
        pcc.record_walk(region(2), true); // freq 0, most recent
                                          // LRU evicts region 1 even though it is the most frequent.
        match pcc.record_walk(region(3), true) {
            PccEvent::InsertedWithEviction(v) => assert_eq!(v, region(1)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn decay_halves_all_counters_on_saturation() {
        let cfg = PccConfig {
            counter_bits: 3, // max = 7
            ..PccConfig::paper_2m().with_entries(4)
        };
        let mut pcc = Pcc::new(cfg, PageSize::Huge2M);
        pcc.record_walk(region(1), true);
        for _ in 0..7 {
            pcc.record_walk(region(1), true); // reach 7 (saturated)
        }
        pcc.record_walk(region(2), true);
        pcc.record_walk(region(2), true); // region2 freq = 1
        assert_eq!(pcc.frequency_of(region(1)), Some(7));
        // Next hit on region 1 saturates -> all halved (7->3, 1->0), then +1.
        pcc.record_walk(region(1), true);
        assert_eq!(pcc.frequency_of(region(1)), Some(4));
        assert_eq!(pcc.frequency_of(region(2)), Some(0));
        assert_eq!(pcc.stats().decays, 1);
        // Relative order is preserved.
        let dump = pcc.dump();
        assert_eq!(dump[0].region, region(1));
    }

    #[test]
    fn no_decay_saturates_flat() {
        let cfg = PccConfig {
            counter_bits: 2, // max = 3
            decay_on_saturation: false,
            ..PccConfig::paper_2m().with_entries(4)
        };
        let mut pcc = Pcc::new(cfg, PageSize::Huge2M);
        for _ in 0..10 {
            pcc.record_walk(region(1), true);
        }
        assert_eq!(pcc.frequency_of(region(1)), Some(3));
        assert_eq!(pcc.stats().decays, 0);
    }

    #[test]
    fn dump_orders_by_frequency_desc() {
        let mut pcc = small_pcc(8);
        for (r, n) in [(1u64, 3), (2, 5), (3, 1)] {
            for _ in 0..=n {
                pcc.record_walk(region(r), true);
            }
        }
        let dump = pcc.dump();
        assert_eq!(
            dump.iter().map(|c| c.region.index()).collect::<Vec<_>>(),
            vec![2, 1, 3]
        );
        assert!(dump.windows(2).all(|w| w[0].frequency >= w[1].frequency));
    }

    #[test]
    fn invalidate_on_shootdown() {
        let mut pcc = small_pcc(4);
        pcc.record_walk(region(1), true);
        assert!(pcc.invalidate(region(1)));
        assert!(!pcc.invalidate(region(1)));
        assert!(pcc.is_empty());
        assert_eq!(pcc.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_wrong_granularity_is_noop() {
        let mut pcc = small_pcc(4);
        pcc.record_walk(region(1), true);
        assert!(!pcc.invalidate(Vpn::new(1, PageSize::Huge1G)));
        assert_eq!(pcc.len(), 1);
    }

    #[test]
    fn clear_preserves_stats() {
        let mut pcc = small_pcc(4);
        pcc.record_walk(region(1), true);
        pcc.clear();
        assert!(pcc.is_empty());
        assert_eq!(pcc.stats().insertions, 1);
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut pcc = small_pcc(3);
        for i in 0..100 {
            pcc.record_walk(region(i), true);
            assert!(pcc.len() <= 3);
        }
        assert_eq!(pcc.len(), 3);
        assert_eq!(pcc.stats().evictions, 97);
    }

    #[test]
    #[should_panic(expected = "huge-page regions")]
    fn base_page_granularity_rejected() {
        let _ = Pcc::new(PccConfig::paper_2m(), PageSize::Base4K);
    }

    #[test]
    #[should_panic(expected = "granularity must match")]
    fn mismatched_region_size_panics() {
        let mut pcc = small_pcc(4);
        pcc.record_walk(Vpn::new(1, PageSize::Huge1G), true);
    }

    #[test]
    fn vpn_tag_matches_paper_prefix_semantics() {
        // The tag is the 2MB virtual address prefix: two addresses in the
        // same 2MB region must collapse to the same PCC entry.
        let mut pcc = small_pcc(4);
        let a = VirtAddr::new(0x4000_0000).vpn(PageSize::Huge2M);
        let b = VirtAddr::new(0x4000_0000 + 0x1F_FFFF).vpn(PageSize::Huge2M);
        assert_eq!(a, b);
        pcc.record_walk(a, true);
        assert_eq!(pcc.record_walk(b, true), PccEvent::Hit(1));
        assert_eq!(pcc.len(), 1);
    }

    #[test]
    fn one_gb_pcc_geometry() {
        let pcc = Pcc::new(PccConfig::paper_1g(), PageSize::Huge1G);
        assert_eq!(pcc.capacity(), 8);
        assert_eq!(pcc.granularity(), PageSize::Huge1G);
    }

    #[test]
    fn display_impls() {
        let c = Candidate {
            region: region(1),
            frequency: 5,
        };
        assert!(c.to_string().contains("freq=5"));
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::LfuWithLruTiebreak.to_string(), "LFU+LRU");
    }
}
