//! Recorder backends: the zero-cost null recorder, an in-memory buffer,
//! and a streaming JSONL sink.

use std::collections::BTreeMap;
use std::io::Write;

use crate::event::Event;

/// A sink for flight-recorder events.
///
/// The simulator is generic over `R: Recorder`, so the default
/// [`NullRecorder`] monomorphizes every `record` call to an inlined
/// no-op — an uninstrumented run compiles to the same hot loop it had
/// before this trait existed.
///
/// Implementors that buffer or serialize should override [`enabled`]
/// to return `true`; callers use it to skip *constructing* expensive
/// events (e.g. interval snapshots that walk the PCC bank).
pub trait Recorder {
    /// Whether this recorder actually keeps events. `false` lets call
    /// sites skip building event payloads entirely.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event at simulation time `at` (total accesses issued).
    #[inline]
    fn record(&mut self, at: u64, event: Event) {
        let _ = (at, event);
    }
}

/// The do-nothing recorder: the default for every simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Buffers every event in memory; for tests and programmatic analysis.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    events: Vec<(u64, Event)>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded `(timestamp, event)` pairs, in arrival order.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-kind event counts, ordered by kind name.
    pub fn counts_by_kind(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for (_, ev) in &self.events {
            *counts.entry(ev.kind()).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the full buffer as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (at, ev) in &self.events {
            out.push_str(&ev.to_jsonl(*at));
            out.push('\n');
        }
        out
    }
}

impl Recorder for MemoryRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, at: u64, event: Event) {
        self.events.push((at, event));
    }
}

/// Streams events as JSON Lines to any [`Write`] target.
///
/// Writes are line-buffered by the caller-supplied writer; I/O errors
/// are captured rather than panicking mid-simulation and surfaced by
/// [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    counts: BTreeMap<&'static str, u64>,
    total: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`; the caller should hand in something buffered
    /// (e.g. `BufWriter<File>`).
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            counts: BTreeMap::new(),
            total: 0,
            error: None,
        }
    }

    /// Events written so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-kind event counts, ordered by kind name.
    pub fn counts_by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Flushes and returns the per-kind counts, or the first I/O error
    /// encountered while streaming.
    pub fn finish(mut self) -> std::io::Result<BTreeMap<&'static str, u64>> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(self.counts)
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: u64, event: Event) {
        if self.error.is_some() {
            return;
        }
        *self.counts.entry(event.kind()).or_insert(0) += 1;
        self.total += 1;
        let line = event.to_jsonl(at);
        if let Err(err) = writeln!(self.writer, "{line}") {
            self.error = Some(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TlbLevel;
    use crate::json::assert_json_shape;
    use hpage_types::{CoreId, PageSize};

    fn hit() -> Event {
        Event::TlbHit {
            core: CoreId(0),
            level: TlbLevel::L1,
            size: PageSize::Base4K,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(1, hit()); // must be a harmless no-op
    }

    #[test]
    fn memory_recorder_buffers_and_counts() {
        let mut r = MemoryRecorder::new();
        assert!(r.enabled());
        r.record(1, hit());
        r.record(2, hit());
        assert_eq!(r.len(), 2);
        assert_eq!(r.counts_by_kind().get("tlb_hit"), Some(&2));
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert_json_shape(line);
        }
    }

    #[test]
    fn jsonl_sink_streams_and_finishes() {
        let mut buf = Vec::new();
        let mut sink = JsonlSink::new(&mut buf);
        assert!(sink.enabled());
        sink.record(5, hit());
        sink.record(9, hit());
        assert_eq!(sink.total(), 2);
        let counts = sink.finish().expect("finish");
        assert_eq!(counts.get("tlb_hit"), Some(&2));
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"at\":5,"));
        for line in text.lines() {
            assert_json_shape(line);
        }
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_surfaces_io_errors_at_finish() {
        let mut sink = JsonlSink::new(FailingWriter);
        sink.record(1, hit());
        sink.record(2, hit()); // swallowed after first error
        assert!(sink.finish().is_err());
    }
}
