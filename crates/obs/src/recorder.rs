//! Recorder backends: the zero-cost null recorder, an in-memory buffer
//! (optionally a bounded ring), a streaming JSONL sink, and a tee that
//! feeds two recorders at once.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::Event;

/// A sink for flight-recorder events.
///
/// The simulator is generic over `R: Recorder`, so the default
/// [`NullRecorder`] monomorphizes every `record` call to an inlined
/// no-op — an uninstrumented run compiles to the same hot loop it had
/// before this trait existed.
///
/// Implementors that buffer or serialize should override [`enabled`]
/// to return `true`; callers use it to skip *constructing* expensive
/// events (e.g. interval snapshots that walk the PCC bank).
pub trait Recorder {
    /// Whether this recorder actually keeps events. `false` lets call
    /// sites skip building event payloads entirely.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event at simulation time `at` (total accesses issued).
    #[inline]
    fn record(&mut self, at: u64, event: Event) {
        let _ = (at, event);
    }
}

/// The do-nothing recorder: the default for every simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// `Option<R>` is a recorder that may not be there: `None` behaves like
/// [`NullRecorder`], `Some(r)` like `r`. Lets callers decide at runtime
/// whether to attach one leg of a [`Tee`] without monomorphizing every
/// combination.
impl<R: Recorder> Recorder for Option<R> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(Recorder::enabled)
    }

    fn record(&mut self, at: u64, event: Event) {
        if let Some(r) = self.as_mut() {
            r.record(at, event);
        }
    }
}

/// A mutable borrow of a recorder is itself a recorder, so a call site
/// can tee a caller-owned recorder with a local one without taking
/// ownership of either.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, at: u64, event: Event) {
        (**self).record(at, event);
    }
}

/// Buffers every event in memory; for tests and programmatic analysis.
///
/// By default the buffer is unbounded. Long chaos runs can cap it with
/// [`with_capacity`](MemoryRecorder::with_capacity), which turns the
/// buffer into a ring keeping the **most recent** events (the tail is
/// what matters when diagnosing a failure) and counts what was
/// overwritten in [`dropped`](MemoryRecorder::dropped).
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    events: Vec<(u64, Event)>,
    /// Ring capacity; `None` is unbounded.
    capacity: Option<usize>,
    /// Next ring slot to overwrite once the buffer is full.
    head: usize,
    dropped: u64,
}

impl MemoryRecorder {
    /// An empty, unbounded recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty ring recorder keeping at most `capacity` events (the
    /// most recent ones; older events are overwritten and counted).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        MemoryRecorder {
            events: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// All retained `(timestamp, event)` pairs, oldest first. For an
    /// unbounded recorder this is every event in arrival order; for a
    /// ring it is the most recent `capacity` events.
    pub fn events(&self) -> Vec<(u64, Event)> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full (always 0 for an
    /// unbounded recorder). Surface this through a metrics registry
    /// (e.g. a `recorder.events_dropped` counter) so capped recordings
    /// are visibly lossy rather than silently truncated.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-kind event counts of the *retained* events, ordered by kind
    /// name.
    pub fn counts_by_kind(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for (_, ev) in &self.events {
            *counts.entry(ev.kind()).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the retained buffer as JSON Lines, oldest event first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (at, ev) in self.events() {
            out.push_str(&ev.to_jsonl(at));
            out.push('\n');
        }
        out
    }
}

impl Recorder for MemoryRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, at: u64, event: Event) {
        match self.capacity {
            Some(cap) if self.events.len() == cap => {
                self.events[self.head] = (at, event);
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.events.push((at, event)),
        }
    }
}

/// Streams events as JSON Lines to any [`Write`] target.
///
/// Writes are line-buffered by the caller-supplied writer; I/O errors
/// are captured rather than panicking mid-simulation and surfaced by
/// [`JsonlSink::finish`]. The sink also flushes on `Drop`, so a run
/// that aborts before calling `finish` still leaves whole JSONL lines
/// behind (every record is written with a single `writeln!`). An error
/// that would otherwise die with the `Drop` (nobody called `finish`, or
/// the final flush itself failed) is counted in the shared error
/// counter ([`with_error_counter`](JsonlSink::with_error_counter)) and
/// reported once to stderr with the sink's path
/// ([`with_path`](JsonlSink::with_path)) — a full disk must be visible,
/// not silent data loss.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    counts: BTreeMap<&'static str, u64>,
    total: u64,
    error: Option<std::io::Error>,
    path: Option<String>,
    io_errors: Option<Arc<AtomicU64>>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`; the caller should hand in something buffered
    /// (e.g. `BufWriter<File>`).
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            counts: BTreeMap::new(),
            total: 0,
            error: None,
            path: None,
            io_errors: None,
        }
    }

    /// Names the sink's destination for error reports (the file path,
    /// typically) so a failing sink is identifiable on stderr.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Attaches a shared counter incremented once per I/O error the
    /// sink encounters (streaming write failures and the `Drop`-flush).
    /// Callers mirror it into a metrics snapshot as `sink.io_errors`.
    pub fn with_error_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.io_errors = Some(counter);
        self
    }

    /// Events written so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn count_io_error(&self) {
        if let Some(c) = &self.io_errors {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-kind event counts, ordered by kind name.
    pub fn counts_by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Flushes and returns the per-kind counts, or the first I/O error
    /// encountered while streaming.
    pub fn finish(mut self) -> std::io::Result<BTreeMap<&'static str, u64>> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(std::mem::take(&mut self.counts))
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best-effort: a sink dropped mid-run (panic, early return) must
        // not leave buffered lines unwritten. Errors that would die here
        // — a streaming error nobody surfaced via `finish`, or a failing
        // final flush — are counted and reported once to stderr instead
        // of being silently swallowed.
        let flush_err = self.writer.flush().err();
        if flush_err.is_some() {
            // Streaming errors were already counted by `record`.
            self.count_io_error();
        }
        let unsurfaced = self.error.take();
        if let Some(err) = unsurfaced.as_ref().or(flush_err.as_ref()) {
            let target = self.path.as_deref().unwrap_or("<unnamed sink>");
            eprintln!("warning: jsonl sink {target}: {err} (events may be lost)");
        }
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: u64, event: Event) {
        if self.error.is_some() {
            return;
        }
        *self.counts.entry(event.kind()).or_insert(0) += 1;
        self.total += 1;
        let line = event.to_jsonl(at);
        if let Err(err) = writeln!(self.writer, "{line}") {
            self.count_io_error();
            self.error = Some(err);
        }
    }
}

/// Feeds every event to two recorders — e.g. a [`JsonlSink`] for the
/// raw stream plus a telemetry aggregator, in one simulation pass.
#[derive(Debug)]
pub struct Tee<A: Recorder, B: Recorder>(
    /// First recorder.
    pub A,
    /// Second recorder.
    pub B,
);

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    #[inline]
    fn record(&mut self, at: u64, event: Event) {
        self.0.record(at, event);
        self.1.record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TlbLevel;
    use crate::json::assert_json_shape;
    use hpage_types::{CoreId, PageSize};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn hit() -> Event {
        Event::TlbHit {
            core: CoreId(0),
            level: TlbLevel::L1,
            size: PageSize::Base4K,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(1, hit()); // must be a harmless no-op
    }

    #[test]
    fn memory_recorder_buffers_and_counts() {
        let mut r = MemoryRecorder::new();
        assert!(r.enabled());
        r.record(1, hit());
        r.record(2, hit());
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.counts_by_kind().get("tlb_hit"), Some(&2));
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert_json_shape(line);
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = MemoryRecorder::with_capacity(3);
        for at in 1..=7 {
            r.record(at, hit());
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        let ats: Vec<u64> = r.events().iter().map(|(at, _)| *at).collect();
        assert_eq!(ats, vec![5, 6, 7], "ring keeps the newest events in order");
        // JSONL render follows the same oldest-first order.
        assert!(r.to_jsonl().starts_with("{\"at\":5,"));
    }

    #[test]
    fn ring_below_capacity_behaves_like_unbounded() {
        let mut r = MemoryRecorder::with_capacity(8);
        r.record(1, hit());
        r.record(2, hit());
        assert_eq!(r.dropped(), 0);
        let ats: Vec<u64> = r.events().iter().map(|(at, _)| *at).collect();
        assert_eq!(ats, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_ring_is_rejected() {
        let _ = MemoryRecorder::with_capacity(0);
    }

    #[test]
    fn jsonl_sink_streams_and_finishes() {
        let mut buf = Vec::new();
        let mut sink = JsonlSink::new(&mut buf);
        assert!(sink.enabled());
        sink.record(5, hit());
        sink.record(9, hit());
        assert_eq!(sink.total(), 2);
        let counts = sink.finish().expect("finish");
        assert_eq!(counts.get("tlb_hit"), Some(&2));
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"at\":5,"));
        for line in text.lines() {
            assert_json_shape(line);
        }
    }

    /// A shared-buffer writer that survives the sink's drop, counting
    /// flushes — the stand-in for a file a crashed run leaves behind.
    #[derive(Clone, Default)]
    struct SharedWriter {
        buf: Rc<RefCell<Vec<u8>>>,
        flushes: Rc<RefCell<u32>>,
    }

    impl Write for SharedWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.borrow_mut().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            *self.flushes.borrow_mut() += 1;
            Ok(())
        }
    }

    #[test]
    fn dropped_sink_flushes_and_leaves_valid_jsonl() {
        // A "truncated" run: the sink is dropped mid-stream without
        // finish(). The writer must still have been flushed and every
        // line already written must be complete, valid JSONL.
        let w = SharedWriter::default();
        {
            let mut sink = JsonlSink::new(w.clone());
            for at in 1..=5 {
                sink.record(at, hit());
            }
            // No finish(): the scope end drops the sink.
        }
        assert!(*w.flushes.borrow() >= 1, "Drop must flush the writer");
        let text = String::from_utf8(w.buf.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.ends_with('\n'), "no partial trailing line");
        for line in text.lines() {
            assert_json_shape(line);
        }
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_surfaces_io_errors_at_finish() {
        let mut sink = JsonlSink::new(FailingWriter);
        sink.record(1, hit());
        sink.record(2, hit()); // swallowed after first error
        assert!(sink.finish().is_err());
    }

    #[test]
    fn streaming_error_is_counted_once_even_through_drop() {
        let errors = Arc::new(AtomicU64::new(0));
        {
            let mut sink = JsonlSink::new(FailingWriter)
                .with_path("/tmp/nope.jsonl")
                .with_error_counter(errors.clone());
            sink.record(1, hit());
            sink.record(2, hit());
            // No finish(): the Drop reports the unsurfaced error but
            // must not recount it.
        }
        assert_eq!(errors.load(Ordering::Relaxed), 1);
    }

    struct FlushFailingWriter;
    impl Write for FlushFailingWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("flush: disk full"))
        }
    }

    #[test]
    fn drop_flush_error_is_counted_not_swallowed() {
        let errors = Arc::new(AtomicU64::new(0));
        {
            let mut sink = JsonlSink::new(FlushFailingWriter).with_error_counter(errors.clone());
            sink.record(1, hit());
        }
        assert_eq!(
            errors.load(Ordering::Relaxed),
            1,
            "Drop-flush failure must land in the error counter"
        );
    }

    #[test]
    fn finished_sink_does_not_double_report() {
        let errors = Arc::new(AtomicU64::new(0));
        let mut sink = JsonlSink::new(FailingWriter).with_error_counter(errors.clone());
        sink.record(1, hit());
        assert!(sink.finish().is_err()); // surfaced here; Drop stays quiet
        assert_eq!(errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tee_feeds_both_recorders() {
        let mut tee = Tee(MemoryRecorder::new(), MemoryRecorder::with_capacity(1));
        assert!(tee.enabled());
        tee.record(1, hit());
        tee.record(2, hit());
        assert_eq!(tee.0.len(), 2);
        assert_eq!(tee.1.len(), 1);
        assert_eq!(tee.1.dropped(), 1);
        // A tee of two null recorders stays disabled.
        assert!(!Tee(NullRecorder, NullRecorder).enabled());
    }
}
