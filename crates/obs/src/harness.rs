//! Harness-level observability: wall-clock timings and warnings from the
//! experiment runner.
//!
//! The simulation's flight recorder ([`Event`](crate::Event)) is clocked
//! in *simulation time* (accesses issued) so recordings are byte-stable.
//! The experiment harness lives in a different domain — wall-clock
//! seconds per cell and per figure — which must never leak into figure
//! tables (it would break the byte-identical `-j 1` vs `-j N`
//! guarantee). This module is that separate channel: a thread-safe log
//! the runner's worker pool appends to, which the `repro` binary renders
//! as the `BENCH_repro.json` perf artifact.

use crate::json::{esc, num};
use std::sync::Mutex;

/// Wall-clock timing of one executed harness cell (one simulation run).
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// The cell's label, e.g. `fig7/BFS/pcc`.
    pub label: String,
    /// Wall-clock seconds the cell's simulation took.
    pub wall_s: f64,
}

/// Wall-clock timing of one harness section (one figure/table driver).
#[derive(Debug, Clone, PartialEq)]
pub struct SectionTiming {
    /// The section label, e.g. `figure 7`.
    pub label: String,
    /// Wall-clock seconds the whole section took.
    pub wall_s: f64,
}

/// One supervised retry of a failed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryRecord {
    /// The retried cell's label.
    pub label: String,
    /// The attempt about to run (1-based; ≥ 2 for a retry).
    pub attempt: u32,
    /// Seeded backoff slept before the attempt, in milliseconds.
    pub backoff_ms: u64,
}

/// A cell the supervisor gave up on after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// The failed cell's label.
    pub label: String,
    /// Human-readable failure reason (panic message or deadline).
    pub reason: String,
    /// Attempts made before giving up.
    pub attempts: u32,
}

/// A cell that overran a supervisor deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineFlag {
    /// The flagged cell's label.
    pub label: String,
    /// `true` for the hard deadline (attempt abandoned), `false` for
    /// the soft deadline (flagged, still running).
    pub hard: bool,
    /// Wall-clock seconds elapsed when the flag was raised.
    pub wall_s: f64,
}

/// Thread-safe log of harness timings and warnings.
///
/// Workers of the parallel runner append [`CellTiming`]s concurrently;
/// the driving binary appends [`SectionTiming`]s and warnings (e.g. a
/// geomean that had to exclude non-positive values). Everything here is
/// *observability only*: nothing read back from the log may influence
/// experiment results.
#[derive(Debug, Default)]
pub struct HarnessLog {
    cells: Mutex<Vec<CellTiming>>,
    sections: Mutex<Vec<SectionTiming>>,
    warnings: Mutex<Vec<String>>,
    retries: Mutex<Vec<RetryRecord>>,
    failures: Mutex<Vec<FailureRecord>>,
    deadline_flags: Mutex<Vec<DeadlineFlag>>,
}

impl HarnessLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed cell's wall-clock time.
    pub fn record_cell(&self, label: impl Into<String>, wall_s: f64) {
        self.cells.lock().unwrap().push(CellTiming {
            label: label.into(),
            wall_s,
        });
    }

    /// Records one section's wall-clock time.
    pub fn record_section(&self, label: impl Into<String>, wall_s: f64) {
        self.sections.lock().unwrap().push(SectionTiming {
            label: label.into(),
            wall_s,
        });
    }

    /// Records a harness warning (rendered into the perf artifact and,
    /// verbosely, to stderr by the driving binary).
    pub fn warn(&self, message: impl Into<String>) {
        self.warnings.lock().unwrap().push(message.into());
    }

    /// Snapshot of all cell timings, in completion order.
    pub fn cells(&self) -> Vec<CellTiming> {
        self.cells.lock().unwrap().clone()
    }

    /// Snapshot of all section timings, in completion order.
    pub fn sections(&self) -> Vec<SectionTiming> {
        self.sections.lock().unwrap().clone()
    }

    /// Records one supervised retry of a failed cell.
    pub fn record_retry(&self, label: impl Into<String>, attempt: u32, backoff_ms: u64) {
        self.retries.lock().unwrap().push(RetryRecord {
            label: label.into(),
            attempt,
            backoff_ms,
        });
    }

    /// Records a cell the supervisor gave up on.
    pub fn record_failure(
        &self,
        label: impl Into<String>,
        reason: impl Into<String>,
        attempts: u32,
    ) {
        self.failures.lock().unwrap().push(FailureRecord {
            label: label.into(),
            reason: reason.into(),
            attempts,
        });
    }

    /// Records a deadline overrun (`hard = true` abandons the attempt).
    pub fn record_deadline(&self, label: impl Into<String>, hard: bool, wall_s: f64) {
        self.deadline_flags.lock().unwrap().push(DeadlineFlag {
            label: label.into(),
            hard,
            wall_s,
        });
    }

    /// Snapshot of all warnings.
    pub fn warnings(&self) -> Vec<String> {
        self.warnings.lock().unwrap().clone()
    }

    /// Snapshot of all supervised retries, in occurrence order.
    pub fn retries(&self) -> Vec<RetryRecord> {
        self.retries.lock().unwrap().clone()
    }

    /// Snapshot of all cell failures, in occurrence order.
    pub fn failures(&self) -> Vec<FailureRecord> {
        self.failures.lock().unwrap().clone()
    }

    /// Snapshot of all deadline flags, in occurrence order.
    pub fn deadline_flags(&self) -> Vec<DeadlineFlag> {
        self.deadline_flags.lock().unwrap().clone()
    }

    /// Total wall-clock seconds across all recorded cells (the *serial*
    /// cost of the grid; with `jobs > 1` this exceeds elapsed time).
    pub fn total_cell_seconds(&self) -> f64 {
        self.cells.lock().unwrap().iter().map(|c| c.wall_s).sum()
    }

    /// Renders the log as the body fields of the `BENCH_repro.json`
    /// artifact (callers wrap it with run-level metadata).
    pub fn to_json_fields(&self) -> String {
        let sections: Vec<String> = self
            .sections()
            .iter()
            .map(|s| {
                format!(
                    "{{\"label\":\"{}\",\"wall_s\":{}}}",
                    esc(&s.label),
                    num(s.wall_s)
                )
            })
            .collect();
        let cells: Vec<String> = self
            .cells()
            .iter()
            .map(|c| {
                format!(
                    "{{\"label\":\"{}\",\"wall_s\":{}}}",
                    esc(&c.label),
                    num(c.wall_s)
                )
            })
            .collect();
        let warnings: Vec<String> = self
            .warnings()
            .iter()
            .map(|w| format!("\"{}\"", esc(w)))
            .collect();
        let retries: Vec<String> = self
            .retries()
            .iter()
            .map(|r| {
                format!(
                    "{{\"label\":\"{}\",\"attempt\":{},\"backoff_ms\":{}}}",
                    esc(&r.label),
                    r.attempt,
                    r.backoff_ms
                )
            })
            .collect();
        let failures: Vec<String> = self
            .failures()
            .iter()
            .map(|f| {
                format!(
                    "{{\"label\":\"{}\",\"reason\":\"{}\",\"attempts\":{}}}",
                    esc(&f.label),
                    esc(&f.reason),
                    f.attempts
                )
            })
            .collect();
        let deadlines: Vec<String> = self
            .deadline_flags()
            .iter()
            .map(|d| {
                format!(
                    "{{\"label\":\"{}\",\"hard\":{},\"wall_s\":{}}}",
                    esc(&d.label),
                    d.hard,
                    num(d.wall_s)
                )
            })
            .collect();
        format!(
            "\"serial_cell_s\":{},\"sections\":[{}],\"cells\":[{}],\"warnings\":[{}],\
             \"retries\":[{}],\"failures\":[{}],\"deadline_flags\":[{}]",
            num(self.total_cell_seconds()),
            sections.join(","),
            cells.join(","),
            warnings.join(","),
            retries.join(","),
            failures.join(","),
            deadlines.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::assert_json_shape;

    #[test]
    fn records_and_sums() {
        let log = HarnessLog::new();
        log.record_cell("fig1/BFS/base-4k", 0.25);
        log.record_cell("fig1/BFS/ideal-2m", 0.75);
        log.record_section("figure 1", 1.1);
        log.warn("geomean: 1 non-positive value excluded");
        assert_eq!(log.cells().len(), 2);
        assert_eq!(log.sections().len(), 1);
        assert_eq!(log.warnings().len(), 1);
        assert!((log.total_cell_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_fields_are_valid_json() {
        let log = HarnessLog::new();
        log.record_cell("a\"b", 0.5);
        log.record_section("figure \\ 9", 2.0);
        log.warn("watch\nout");
        log.record_retry("fig7/BFS/pcc", 2, 14);
        log.record_failure("fig7/BFS/pcc", "panicked: \"boom\"", 3);
        log.record_deadline("fig7/BFS/pcc", true, 30.5);
        let wrapped = format!("{{{}}}", log.to_json_fields());
        assert_json_shape(&wrapped);
        assert!(wrapped.contains("\"serial_cell_s\":0.500000"));
        assert!(wrapped.contains("\"retries\":[{\"label\":"));
        assert!(wrapped.contains("\"attempts\":3"));
        assert!(wrapped.contains("\"hard\":true"));
    }

    #[test]
    fn supervisor_records_round_trip() {
        let log = HarnessLog::new();
        log.record_retry("c", 2, 7);
        log.record_failure("c", "hard deadline", 2);
        log.record_deadline("c", false, 1.5);
        assert_eq!(
            log.retries(),
            vec![RetryRecord {
                label: "c".into(),
                attempt: 2,
                backoff_ms: 7
            }]
        );
        assert_eq!(log.failures()[0].reason, "hard deadline");
        assert!(!log.deadline_flags()[0].hard);
    }

    #[test]
    fn concurrent_appends_are_all_kept() {
        let log = HarnessLog::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..25 {
                        log.record_cell(format!("t{t}/c{i}"), 0.01);
                    }
                });
            }
        });
        assert_eq!(log.cells().len(), 100);
    }
}
