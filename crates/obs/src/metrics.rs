//! Per-interval metric series — the structured generalization of the
//! simulator's old `interval_walk_rates` vector.

use crate::json::num;

/// Metrics for one promotion interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntervalRow {
    /// Fraction of this interval's accesses that walked the page table.
    pub walk_rate: f64,
    /// Fraction that hit an L1 TLB.
    pub l1_hit_rate: f64,
    /// Fraction that hit the unified L2 TLB.
    pub l2_hit_rate: f64,
    /// Regions promoted during this interval's policy run.
    pub promotions: u64,
    /// Regions demoted during this interval's policy run.
    pub demotions: u64,
    /// Live entries across all per-core PCCs at the boundary.
    pub pcc_occupancy: u64,
    /// Huge (2 MiB) frames resident at the boundary.
    pub huge_pages_resident: u64,
    /// Total memory bloat at the boundary, in bytes.
    pub bloat_bytes: u64,
}

impl IntervalRow {
    /// Renders the row as one JSON Lines record (no trailing newline).
    pub fn to_jsonl(&self, index: usize) -> String {
        format!(
            "{{\"interval\":{},\"walk_rate\":{},\"l1_rate\":{},\"l2_rate\":{},\
             \"promotions\":{},\"demotions\":{},\"pcc_occupancy\":{},\
             \"huge_resident\":{},\"bloat_bytes\":{}}}",
            index,
            num(self.walk_rate),
            num(self.l1_hit_rate),
            num(self.l2_hit_rate),
            self.promotions,
            self.demotions,
            self.pcc_occupancy,
            self.huge_pages_resident,
            self.bloat_bytes
        )
    }
}

/// The full per-interval time series of one simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalSeries {
    rows: Vec<IntervalRow>,
}

impl IntervalSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one interval's row.
    pub fn push(&mut self, row: IntervalRow) {
        self.rows.push(row);
    }

    /// The recorded rows, in interval order.
    pub fn rows(&self) -> &[IntervalRow] {
        &self.rows
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no interval completed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Just the walk rates (the legacy `interval_walk_rates` view).
    pub fn walk_rates(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.walk_rate).collect()
    }

    /// Renders the whole series as JSON Lines, one row per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&row.to_jsonl(i));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::assert_json_shape;

    #[test]
    fn series_round_trip() {
        let mut s = IntervalSeries::new();
        assert!(s.is_empty());
        s.push(IntervalRow {
            walk_rate: 0.3,
            l1_hit_rate: 0.6,
            l2_hit_rate: 0.1,
            promotions: 4,
            demotions: 1,
            pcc_occupancy: 99,
            huge_pages_resident: 7,
            bloat_bytes: 2048,
        });
        s.push(IntervalRow::default());
        assert_eq!(s.len(), 2);
        assert_eq!(s.walk_rates(), vec![0.3, 0.0]);
        let jsonl = s.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert_json_shape(line);
        }
        assert!(jsonl.starts_with("{\"interval\":0,\"walk_rate\":0.300000"));
    }
}
