//! Minimal hand-rolled JSON emission helpers.
//!
//! Hand-rolled rather than pulling in serde: everything this workspace
//! serializes is flat records of numbers and short ASCII identifiers,
//! and the build environment is offline. These helpers are the single
//! escaping implementation for the whole workspace (the bench crate's
//! figure writers and the flight recorder's JSONL sink both use them).

/// Escapes a string for embedding in a JSON string literal (the
/// identifiers used here are ASCII, but be correct anyway).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON value fragment (`null` for non-finite
/// values, which raw JSON cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Asserts `s` is structurally sane JSON: balanced braces/brackets and
/// no raw control characters. A tiny validator for tests — not a parser.
///
/// # Panics
///
/// Panics when the structure is unbalanced or a raw control character
/// appears.
pub fn assert_json_shape(s: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            assert!((c as u32) >= 0x20, "raw control char inside JSON string");
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            c => assert!((c as u32) >= 0x20, "raw control char in JSON"),
        }
        assert!(depth >= 0, "unbalanced JSON nesting");
    }
    assert!(!in_string, "unterminated JSON string");
    assert_eq!(depth, 0, "unbalanced JSON nesting");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(esc("tab\there"), "tab\\there");
        assert_eq!(esc("cr\rhere"), "cr\\rhere");
        assert_eq!(esc("plain ascii_09"), "plain ascii_09");
    }

    #[test]
    fn escaping_roundtrips_through_shape_check() {
        // Hostile app labels (quotes, backslashes, control chars) must
        // still produce structurally valid JSON.
        for hostile in ["a\"b", "back\\slash", "new\nline", "\u{0}\u{1f}", "\"\\\""] {
            let doc = format!("{{\"label\":\"{}\"}}", esc(hostile));
            assert_json_shape(&doc);
        }
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(2.5), "2.500000");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(0.0), "0.000000");
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn shape_check_catches_imbalance() {
        assert_json_shape("{\"a\":[1,2}");
    }
}
