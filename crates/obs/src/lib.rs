//! Flight recorder: a zero-overhead structured event and metrics layer.
//!
//! The paper's whole argument is about *visibility* — the PCC exists
//! because the OS cannot see which regions cause page-table walks. This
//! crate gives the simulator the same courtesy: every decision point
//! (TLB hits and walks, PCC updates, promotions, demotions, shootdowns,
//! interval snapshots) can emit a typed [`Event`] into a [`Recorder`].
//!
//! Three recorders ship:
//!
//! - [`NullRecorder`] — the default; every method is an inlined no-op so
//!   an uninstrumented simulation pays nothing (the simulator is generic
//!   over `R: Recorder`, so the null case monomorphizes to dead code).
//! - [`MemoryRecorder`] — buffers `(timestamp, Event)` pairs in memory
//!   for tests and programmatic inspection, optionally as a bounded ring
//!   that keeps the most recent events and counts what it dropped.
//! - [`JsonlSink`] — streams events as JSON Lines to any writer, and
//!   flushes on `Drop` so truncated runs still leave whole lines.
//! - [`Tee`] — fans one event stream out to two recorders (e.g. a raw
//!   JSONL dump plus the `hpage-telemetry` aggregator in one pass).
//!
//! Timestamps are simulation time (total accesses issued), never wall
//! clock, so recordings of a fixed-seed run are byte-stable.
//!
//! The crate is dependency-free apart from `hpage-types` (the build
//! environment is offline): JSON is emitted by the tiny hand-rolled
//! helpers in [`json`], shared with the bench crate's report writers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod event;
mod harness;
mod metrics;
mod recorder;

pub use event::{
    Event, FailureReason, IntervalSnapshot, PccAction, TlbLevel, EVENT_KINDS,
    FREQ_HISTOGRAM_BUCKETS,
};
pub use harness::{
    CellTiming, DeadlineFlag, FailureRecord, HarnessLog, RetryRecord, SectionTiming,
};
pub use metrics::{IntervalRow, IntervalSeries};
pub use recorder::{JsonlSink, MemoryRecorder, NullRecorder, Recorder, Tee};
