//! The typed event taxonomy — one variant per decision point the paper
//! describes (Figs. 3–4: the TLB/PTW datapath, the PCC update rules,
//! and the OS promotion engine).

use crate::json::num;
use hpage_types::{CoreId, PageSize, ProcessId, Vpn};

/// Which TLB level satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// A split-size L1 structure.
    L1,
    /// The unified L2.
    L2,
}

/// What a PCC did with one reported page-table walk (mirrors
/// `hpage_pcc::PccEvent`, kept separate so this crate stays at the
/// bottom of the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PccAction {
    /// The region was already tracked; its counter was bumped to the
    /// carried frequency.
    Hit(u64),
    /// The region was inserted into a free entry.
    Inserted,
    /// The region was inserted, evicting the carried victim region.
    InsertedWithEviction(Vpn),
    /// The cold-miss A-bit filter dropped the walk (§3.2.2).
    FilteredColdMiss,
}

/// Why a promotion attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// No huge frame was available (fragmentation / memory pressure).
    NoFrames,
    /// The promotion budget (utility-curve cap) was exhausted.
    BudgetExhausted,
}

/// Log2 frequency-histogram buckets in an [`IntervalSnapshot`]: bucket
/// `i` counts PCC entries with `frequency in [2^i, 2^(i+1))` (bucket 0
/// also counts frequency 0; the last bucket absorbs the tail).
pub const FREQ_HISTOGRAM_BUCKETS: usize = 16;

/// State of the whole pipeline at one promotion-interval boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSnapshot {
    /// Interval index (0-based).
    pub interval: u64,
    /// Live entries across all per-core PCCs.
    pub pcc_occupancy: u64,
    /// Total entries across all per-core PCCs.
    pub pcc_capacity: u64,
    /// Log2 histogram of PCC entry frequencies (see
    /// [`FREQ_HISTOGRAM_BUCKETS`]).
    pub freq_histogram: [u32; FREQ_HISTOGRAM_BUCKETS],
    /// Fraction of this interval's accesses that hit any L1 TLB.
    pub l1_hit_rate: f64,
    /// Fraction that hit the unified L2 TLB.
    pub l2_hit_rate: f64,
    /// Fraction that walked the page table (the paper's PTW %).
    pub walk_rate: f64,
    /// 2 MiB blocks that are currently fully free and huge-capable.
    pub free_huge_blocks: u64,
    /// 2 MiB frames currently in use as huge pages.
    pub huge_pages_resident: u64,
    /// Total memory bloat (resident-beyond-touched bytes), all processes.
    pub bloat_bytes: u64,
}

/// One flight-recorder event. All payloads are `Copy` scalars so that
/// constructing an event costs nothing that the optimizer cannot erase
/// when the recorder is a no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A TLB lookup was satisfied without a walk.
    TlbHit {
        /// The looking-up core.
        core: CoreId,
        /// Which level hit.
        level: TlbLevel,
        /// Page size of the hit translation.
        size: PageSize,
    },
    /// A lookup missed the whole hierarchy and walked the page table.
    Walk {
        /// The walking core.
        core: CoreId,
        /// Page size of the resolved leaf.
        size: PageSize,
        /// Page-table levels the walk references without a PWC.
        levels: u8,
        /// Levels actually referenced after page-walk-cache hits
        /// (`levels - effective_levels` levels were PWC hits).
        effective_levels: u8,
        /// Whether the leaf's PMD accessed bit was already set before
        /// this walk (the PCC's cold-miss filter input, §3.2.2).
        a_bit_was_set: bool,
    },
    /// A page fault mapped new memory.
    Fault {
        /// The faulting core.
        core: CoreId,
        /// The owning process.
        process: ProcessId,
        /// Page size the fault was served with.
        size: PageSize,
    },
    /// A PCC processed one reported walk.
    PccUpdate {
        /// The core whose PCC updated.
        core: CoreId,
        /// PCC granularity (2 MiB or 1 GiB region tracking).
        granularity: PageSize,
        /// The region reported.
        region: Vpn,
        /// What the PCC did.
        action: PccAction,
        /// Whether this update saturated a counter and halved the whole
        /// PCC (the paper's decay function).
        decayed: bool,
    },
    /// The OS engine promoted a region.
    PromotionDecision {
        /// The owning process.
        process: ProcessId,
        /// The promoted 2 MiB region.
        region: Vpn,
        /// Rank among this interval's promotions (0 = chosen first).
        rank: u32,
        /// The deciding policy's name.
        policy: &'static str,
        /// The policy's predicted benefit at decision time: the PCC
        /// frequency (walks last interval) for PCC-driven policies, 0
        /// for policies that do not predict (THP, HawkEye coverage,
        /// replay). This is the "predicted" side of the promotion
        /// ledger's predicted-vs-realized accounting.
        predicted_walks: u64,
    },
    /// A promotion attempt failed.
    PromotionFailure {
        /// Why.
        reason: FailureReason,
    },
    /// A promotion triggered compaction (pages migrated to assemble a
    /// free 2 MiB block).
    Compaction {
        /// The promoting process.
        process: ProcessId,
        /// The region whose promotion compacted.
        region: Vpn,
        /// Base pages migrated.
        pages_migrated: u64,
    },
    /// The OS demoted a promoted region (memory pressure, §3.3.3).
    Demotion {
        /// The owning process.
        process: ProcessId,
        /// The demoted region.
        region: Vpn,
    },
    /// A TLB shootdown was broadcast for a region.
    Shootdown {
        /// The owning process.
        process: ProcessId,
        /// The invalidated region.
        region: Vpn,
        /// TLB entries actually removed across the owning cores — the
        /// shootdown's "duration" proxy (each removed entry is an
        /// invalidation the IPI handler would have performed).
        entries_flushed: u64,
    },
    /// An injected shootdown storm (interfering-workload interference)
    /// flushed one core's entire TLB hierarchy and page-walk cache —
    /// distinct from the per-region [`Shootdown`](Event::Shootdown)
    /// broadcast a promotion sends.
    ShootdownStorm {
        /// The flushed core.
        core: CoreId,
        /// Resident TLB translations discarded by the flush.
        entries_flushed: u64,
    },
    /// Interval-boundary snapshot of the whole pipeline.
    Interval(IntervalSnapshot),
    /// The fault injector activated a fault this interval.
    FaultInjected {
        /// The fault plan's wire label for the kind ("oom",
        /// "fragmentation_shock", …).
        fault: &'static str,
        /// Interval the fault fired in.
        interval: u64,
    },
    /// A promotion candidate was skipped because its exponential backoff
    /// has not expired (graceful degradation under injected faults).
    PromotionDeferred {
        /// The owning process.
        process: ProcessId,
        /// The deferred region.
        region: Vpn,
        /// Simulation time (accesses) when the region may retry.
        retry_at: u64,
        /// Consecutive promotion failures for this region so far.
        failures: u32,
    },
    /// The pressure detector engaged: promotion is throttled and cold
    /// huge regions become demotion targets.
    PressureEnter {
        /// Free huge-capable blocks at the moment of entry.
        free_blocks: u64,
        /// Total bloat at the moment of entry.
        bloat_bytes: u64,
    },
    /// The pressure detector disengaged (hysteresis threshold reached).
    PressureExit {
        /// Free huge-capable blocks at the moment of exit.
        free_blocks: u64,
    },
    /// A pressure demotion reclaimed bloat: never-touched tail pages of a
    /// huge region were unmapped and their frames freed.
    BloatRecovered {
        /// The owning process.
        process: ProcessId,
        /// Bytes returned to the free pool.
        bytes: u64,
    },
    /// A harness cell's attempt panicked; the supervisor caught it.
    CellPanicked {
        /// Submission index of the cell in its grid.
        cell: u64,
        /// Which attempt panicked (1-based).
        attempt: u32,
    },
    /// The supervisor re-queued a failed cell after a seeded backoff.
    CellRetried {
        /// Submission index of the cell in its grid.
        cell: u64,
        /// The attempt about to run (1-based; ≥ 2 for a retry).
        attempt: u32,
        /// Seeded backoff slept before this attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// A cell exceeded its soft deadline (flagged, still running).
    CellSoftDeadline {
        /// Submission index of the cell in its grid.
        cell: u64,
        /// Wall-clock elapsed when the flag was raised, in milliseconds.
        elapsed_ms: u64,
    },
    /// A cell exceeded its hard deadline and its attempt was abandoned.
    CellHardDeadline {
        /// Submission index of the cell in its grid.
        cell: u64,
        /// Which attempt was abandoned (1-based).
        attempt: u32,
    },
    /// Nested mode: the host promoted a guest-physical region to a huge
    /// page (the guest-side decision is the ordinary
    /// [`PromotionDecision`](Event::PromotionDecision)).
    HostPromotion {
        /// The VM (pid of the guest process) whose host mapping changed.
        process: ProcessId,
        /// The promoted guest-physical 2 MiB region.
        region: Vpn,
        /// The host policy's predicted benefit at decision time.
        predicted_walks: u64,
    },
}

/// Every event kind's wire name, in emission-summary order.
pub const EVENT_KINDS: [&str; 21] = [
    "tlb_hit",
    "walk",
    "fault",
    "pcc",
    "promote",
    "promote_fail",
    "compact",
    "demote",
    "shootdown",
    "shootdown_storm",
    "interval",
    "fault_injected",
    "defer",
    "pressure_enter",
    "pressure_exit",
    "bloat_recovered",
    "cell_panic",
    "cell_retry",
    "cell_deadline_soft",
    "cell_deadline_hard",
    "host_promote",
];

fn size_str(size: PageSize) -> &'static str {
    match size {
        PageSize::Base4K => "4k",
        PageSize::Huge2M => "2m",
        PageSize::Huge1G => "1g",
    }
}

impl Event {
    /// The event's wire name (the JSONL `type` field; one of
    /// [`EVENT_KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TlbHit { .. } => "tlb_hit",
            Event::Walk { .. } => "walk",
            Event::Fault { .. } => "fault",
            Event::PccUpdate { .. } => "pcc",
            Event::PromotionDecision { .. } => "promote",
            Event::PromotionFailure { .. } => "promote_fail",
            Event::Compaction { .. } => "compact",
            Event::Demotion { .. } => "demote",
            Event::Shootdown { .. } => "shootdown",
            Event::ShootdownStorm { .. } => "shootdown_storm",
            Event::Interval(_) => "interval",
            Event::FaultInjected { .. } => "fault_injected",
            Event::PromotionDeferred { .. } => "defer",
            Event::PressureEnter { .. } => "pressure_enter",
            Event::PressureExit { .. } => "pressure_exit",
            Event::BloatRecovered { .. } => "bloat_recovered",
            Event::CellPanicked { .. } => "cell_panic",
            Event::CellRetried { .. } => "cell_retry",
            Event::CellSoftDeadline { .. } => "cell_deadline_soft",
            Event::CellHardDeadline { .. } => "cell_deadline_hard",
            Event::HostPromotion { .. } => "host_promote",
        }
    }

    /// Renders the event as one JSON Lines record (no trailing newline).
    /// `at` is simulation time in total accesses issued.
    pub fn to_jsonl(&self, at: u64) -> String {
        let kind = self.kind();
        let body = match self {
            Event::TlbHit { core, level, size } => format!(
                "\"core\":{},\"level\":\"{}\",\"size\":\"{}\"",
                core.0,
                match level {
                    TlbLevel::L1 => "l1",
                    TlbLevel::L2 => "l2",
                },
                size_str(*size)
            ),
            Event::Walk {
                core,
                size,
                levels,
                effective_levels,
                a_bit_was_set,
            } => format!(
                "\"core\":{},\"size\":\"{}\",\"levels\":{},\"effective_levels\":{},\"a_bit\":{}",
                core.0,
                size_str(*size),
                levels,
                effective_levels,
                a_bit_was_set
            ),
            Event::Fault {
                core,
                process,
                size,
            } => format!(
                "\"core\":{},\"process\":{},\"size\":\"{}\"",
                core.0,
                process.0,
                size_str(*size)
            ),
            Event::PccUpdate {
                core,
                granularity,
                region,
                action,
                decayed,
            } => {
                let action_body = match action {
                    PccAction::Hit(freq) => format!("\"action\":\"hit\",\"freq\":{freq}"),
                    PccAction::Inserted => "\"action\":\"insert\"".into(),
                    PccAction::InsertedWithEviction(victim) => {
                        format!("\"action\":\"insert_evict\",\"evicted\":{}", victim.index())
                    }
                    PccAction::FilteredColdMiss => "\"action\":\"cold_filtered\"".into(),
                };
                format!(
                    "\"core\":{},\"gran\":\"{}\",\"region\":{},{},\"decayed\":{}",
                    core.0,
                    size_str(*granularity),
                    region.index(),
                    action_body,
                    decayed
                )
            }
            Event::PromotionDecision {
                process,
                region,
                rank,
                policy,
                predicted_walks,
            } => format!(
                "\"process\":{},\"region\":{},\"rank\":{},\"policy\":\"{}\",\"predicted_walks\":{}",
                process.0,
                region.index(),
                rank,
                crate::json::esc(policy),
                predicted_walks
            ),
            Event::PromotionFailure { reason } => format!(
                "\"reason\":\"{}\"",
                match reason {
                    FailureReason::NoFrames => "no_frames",
                    FailureReason::BudgetExhausted => "budget_exhausted",
                }
            ),
            Event::Compaction {
                process,
                region,
                pages_migrated,
            } => format!(
                "\"process\":{},\"region\":{},\"pages_migrated\":{}",
                process.0,
                region.index(),
                pages_migrated
            ),
            Event::Demotion { process, region } => {
                format!("\"process\":{},\"region\":{}", process.0, region.index())
            }
            Event::Shootdown {
                process,
                region,
                entries_flushed,
            } => format!(
                "\"process\":{},\"region\":{},\"entries_flushed\":{}",
                process.0,
                region.index(),
                entries_flushed
            ),
            Event::ShootdownStorm {
                core,
                entries_flushed,
            } => format!(
                "\"core\":{},\"entries_flushed\":{}",
                core.0, entries_flushed
            ),
            Event::Interval(s) => {
                let hist: Vec<String> = s.freq_histogram.iter().map(|c| c.to_string()).collect();
                format!(
                    "\"index\":{},\"pcc_occupancy\":{},\"pcc_capacity\":{},\
                     \"freq_hist\":[{}],\"l1_rate\":{},\"l2_rate\":{},\"walk_rate\":{},\
                     \"free_2m_blocks\":{},\"huge_resident\":{},\"bloat_bytes\":{}",
                    s.interval,
                    s.pcc_occupancy,
                    s.pcc_capacity,
                    hist.join(","),
                    num(s.l1_hit_rate),
                    num(s.l2_hit_rate),
                    num(s.walk_rate),
                    s.free_huge_blocks,
                    s.huge_pages_resident,
                    s.bloat_bytes
                )
            }
            Event::FaultInjected { fault, interval } => {
                format!(
                    "\"fault\":\"{}\",\"interval\":{}",
                    crate::json::esc(fault),
                    interval
                )
            }
            Event::PromotionDeferred {
                process,
                region,
                retry_at,
                failures,
            } => format!(
                "\"process\":{},\"region\":{},\"retry_at\":{},\"failures\":{}",
                process.0,
                region.index(),
                retry_at,
                failures
            ),
            Event::PressureEnter {
                free_blocks,
                bloat_bytes,
            } => format!("\"free_blocks\":{free_blocks},\"bloat_bytes\":{bloat_bytes}"),
            Event::PressureExit { free_blocks } => {
                format!("\"free_blocks\":{free_blocks}")
            }
            Event::BloatRecovered { process, bytes } => {
                format!("\"process\":{},\"bytes\":{}", process.0, bytes)
            }
            Event::CellPanicked { cell, attempt } => {
                format!("\"cell\":{cell},\"attempt\":{attempt}")
            }
            Event::CellRetried {
                cell,
                attempt,
                backoff_ms,
            } => format!("\"cell\":{cell},\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}"),
            Event::CellSoftDeadline { cell, elapsed_ms } => {
                format!("\"cell\":{cell},\"elapsed_ms\":{elapsed_ms}")
            }
            Event::CellHardDeadline { cell, attempt } => {
                format!("\"cell\":{cell},\"attempt\":{attempt}")
            }
            Event::HostPromotion {
                process,
                region,
                predicted_walks,
            } => format!(
                "\"process\":{},\"region\":{},\"predicted_walks\":{}",
                process.0,
                region.index(),
                predicted_walks
            ),
        };
        format!("{{\"at\":{at},\"type\":\"{kind}\",{body}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::assert_json_shape;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::TlbHit {
                core: CoreId(0),
                level: TlbLevel::L1,
                size: PageSize::Base4K,
            },
            Event::TlbHit {
                core: CoreId(1),
                level: TlbLevel::L2,
                size: PageSize::Huge2M,
            },
            Event::Walk {
                core: CoreId(0),
                size: PageSize::Base4K,
                levels: 4,
                effective_levels: 2,
                a_bit_was_set: true,
            },
            Event::Fault {
                core: CoreId(0),
                process: ProcessId(0),
                size: PageSize::Huge2M,
            },
            Event::PccUpdate {
                core: CoreId(0),
                granularity: PageSize::Huge2M,
                region: Vpn::new(12, PageSize::Huge2M),
                action: PccAction::Hit(3),
                decayed: false,
            },
            Event::PccUpdate {
                core: CoreId(0),
                granularity: PageSize::Huge2M,
                region: Vpn::new(13, PageSize::Huge2M),
                action: PccAction::InsertedWithEviction(Vpn::new(9, PageSize::Huge2M)),
                decayed: true,
            },
            Event::PromotionDecision {
                process: ProcessId(0),
                region: Vpn::new(12, PageSize::Huge2M),
                rank: 0,
                policy: "pcc",
                predicted_walks: 41,
            },
            Event::PromotionFailure {
                reason: FailureReason::NoFrames,
            },
            Event::PromotionFailure {
                reason: FailureReason::BudgetExhausted,
            },
            Event::Compaction {
                process: ProcessId(0),
                region: Vpn::new(12, PageSize::Huge2M),
                pages_migrated: 37,
            },
            Event::Demotion {
                process: ProcessId(1),
                region: Vpn::new(5, PageSize::Huge2M),
            },
            Event::Shootdown {
                process: ProcessId(0),
                region: Vpn::new(12, PageSize::Huge2M),
                entries_flushed: 7,
            },
            Event::ShootdownStorm {
                core: CoreId(2),
                entries_flushed: 131,
            },
            Event::Interval(IntervalSnapshot {
                interval: 3,
                pcc_occupancy: 100,
                pcc_capacity: 256,
                freq_histogram: [1; FREQ_HISTOGRAM_BUCKETS],
                l1_hit_rate: 0.9,
                l2_hit_rate: 0.05,
                walk_rate: 0.05,
                free_huge_blocks: 12,
                huge_pages_resident: 38,
                bloat_bytes: 1024,
            }),
            Event::FaultInjected {
                fault: "oom",
                interval: 4,
            },
            Event::PromotionDeferred {
                process: ProcessId(0),
                region: Vpn::new(12, PageSize::Huge2M),
                retry_at: 900_000,
                failures: 2,
            },
            Event::PressureEnter {
                free_blocks: 1,
                bloat_bytes: 4096,
            },
            Event::PressureExit { free_blocks: 6 },
            Event::BloatRecovered {
                process: ProcessId(1),
                bytes: 2 * 1024 * 1024 - 4096,
            },
            Event::CellPanicked {
                cell: 3,
                attempt: 1,
            },
            Event::CellRetried {
                cell: 3,
                attempt: 2,
                backoff_ms: 14,
            },
            Event::CellSoftDeadline {
                cell: 0,
                elapsed_ms: 12_000,
            },
            Event::CellHardDeadline {
                cell: 0,
                attempt: 2,
            },
            Event::HostPromotion {
                process: ProcessId(1),
                region: Vpn::new(0x2000_0000, PageSize::Huge2M),
                predicted_walks: 17,
            },
        ]
    }

    #[test]
    fn every_variant_renders_valid_json_with_its_kind() {
        for ev in sample_events() {
            let line = ev.to_jsonl(42);
            assert_json_shape(&line);
            assert!(line.starts_with("{\"at\":42,"), "line: {line}");
            assert!(
                line.contains(&format!("\"type\":\"{}\"", ev.kind())),
                "line: {line}"
            );
            assert!(EVENT_KINDS.contains(&ev.kind()));
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let mut kinds: Vec<&str> = EVENT_KINDS.to_vec();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), EVENT_KINDS.len());
    }

    #[test]
    fn jsonl_is_deterministic() {
        let ev = Event::Walk {
            core: CoreId(2),
            size: PageSize::Huge2M,
            levels: 3,
            effective_levels: 1,
            a_bit_was_set: false,
        };
        assert_eq!(ev.to_jsonl(7), ev.to_jsonl(7));
        assert_eq!(
            ev.to_jsonl(7),
            "{\"at\":7,\"type\":\"walk\",\"core\":2,\"size\":\"2m\",\
             \"levels\":3,\"effective_levels\":1,\"a_bit\":false}"
        );
    }
}
