//! Analytic performance model and evaluation-reporting helpers.
//!
//! The paper measures wall-clock runtime on a real Xeon; our substrate is
//! a functional simulator, so time is reconstructed from event counts:
//!
//! ```text
//! cycles = accesses · base_cpi
//!        + (L1-TLB misses) · lat_L2TLB
//!        + Σ walks · lat_walk · levels/4
//!        + promotions · promotion_cost + migrated_pages · migrate_cost
//! ```
//!
//! Speedups are cycle ratios against the 4 KiB-only baseline, which is
//! what the paper's figures plot. The model preserves *relative* ordering
//! and rough magnitudes; EXPERIMENTS.md records paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod model;
mod plot;
mod report;

pub use curve::{geomean, geomean_positive, GeomeanSummary, UtilityCurve, UtilityPoint};
pub use model::RunCounters;
pub use plot::ascii_plot;
pub use report::{fmt_pct, fmt_speedup, TextTable};
