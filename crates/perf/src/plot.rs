//! Terminal line plots for utility curves — a lightweight way to *see*
//! the paper's figures in a terminal next to the numeric tables.

use crate::curve::UtilityCurve;

/// Renders one or more utility curves as an ASCII plot. The x-axis is
/// the point index (sweep order), the y-axis is speedup. Each curve is
/// drawn with its own glyph; a legend follows.
///
/// ```
/// use hpage_perf::{ascii_plot, UtilityCurve, UtilityPoint};
/// let mut c = UtilityCurve::new("BFS", "pcc");
/// for (pct, s) in [(0u64, 1.0), (4, 2.2), (100, 2.3)] {
///     c.points.push(UtilityPoint { percent: pct, speedup: s, walk_ratio: 0.0, huge_pages_used: 0 });
/// }
/// let plot = ascii_plot(&[c], 40, 10);
/// assert!(plot.contains("pcc"));
/// ```
pub fn ascii_plot(curves: &[UtilityCurve], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.max(8);
    let height = height.max(4);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut max_points = 0usize;
    for c in curves {
        for p in &c.points {
            lo = lo.min(p.speedup);
            hi = hi.max(p.speedup);
        }
        max_points = max_points.max(c.points.len());
    }
    if !lo.is_finite() || max_points == 0 {
        return String::from("(no data)\n");
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (ci, curve) in curves.iter().enumerate() {
        let glyph = GLYPHS[ci % GLYPHS.len()];
        for (i, p) in curve.points.iter().enumerate() {
            let x = if max_points == 1 {
                0
            } else {
                i * (width - 1) / (max_points - 1)
            };
            let yf = (p.speedup - lo) / (hi - lo);
            let y = ((1.0 - yf) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[y.min(height - 1)][x];
            // On collision, later curves overwrite — noted in the legend.
            *cell = glyph;
        }
    }
    let mut out = String::new();
    for (row_idx, row) in grid.iter().enumerate() {
        let label = if row_idx == 0 {
            format!("{hi:>6.2}x")
        } else if row_idx == height - 1 {
            format!("{lo:>6.2}x")
        } else {
            "       ".to_string()
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    // X labels: first and last sweep percents of the longest curve.
    if let Some(longest) = curves.iter().max_by_key(|c| c.points.len()) {
        if let (Some(first), Some(last)) = (longest.points.first(), longest.points.last()) {
            out.push_str(&format!(
                "        {}%{}{}%\n",
                first.percent,
                " ".repeat(width.saturating_sub(6)),
                last.percent
            ));
        }
    }
    for (ci, curve) in curves.iter().enumerate() {
        out.push_str(&format!(
            "        {} {} ({})\n",
            GLYPHS[ci % GLYPHS.len()],
            curve.policy,
            curve.app
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::UtilityPoint;

    fn curve(policy: &str, speedups: &[f64]) -> UtilityCurve {
        let mut c = UtilityCurve::new("app", policy);
        for (i, &s) in speedups.iter().enumerate() {
            c.points.push(UtilityPoint {
                percent: i as u64,
                speedup: s,
                walk_ratio: 0.0,
                huge_pages_used: 0,
            });
        }
        c
    }

    #[test]
    fn plot_contains_axis_and_legend() {
        let p = ascii_plot(&[curve("pcc", &[1.0, 1.5, 2.0])], 30, 8);
        assert!(p.contains("2.00x"));
        assert!(p.contains("1.00x"));
        assert!(p.contains("* pcc (app)"));
        assert!(p.contains('+'));
    }

    #[test]
    fn rising_curve_rises() {
        let p = ascii_plot(&[curve("pcc", &[1.0, 2.0])], 20, 6);
        let rows: Vec<&str> = p.lines().collect();
        // The high point is on an earlier (upper) row than the low point.
        // Only grid rows (containing the axis '|'), not the legend.
        let star_rows: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains('|') && r.contains('*'))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(star_rows.len(), 2);
        // First star row (top) corresponds to the 2.0 point.
        assert!(star_rows[0] < star_rows[1]);
    }

    #[test]
    fn multiple_curves_get_distinct_glyphs() {
        let p = ascii_plot(
            &[curve("pcc", &[1.0, 2.0]), curve("hawkeye", &[1.0, 1.2])],
            20,
            6,
        );
        assert!(p.contains('*'));
        assert!(p.contains('o'));
        assert!(p.contains("hawkeye"));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(ascii_plot(&[], 20, 6), "(no data)\n");
        let flat = ascii_plot(&[curve("pcc", &[1.0, 1.0])], 20, 6);
        assert!(flat.contains("pcc")); // flat curve does not divide by zero
        let single = ascii_plot(&[curve("pcc", &[1.3])], 20, 6);
        assert!(single.contains('*'));
    }
}
