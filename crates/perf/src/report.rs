//! Minimal fixed-width text tables for rendering the paper's figures as
//! terminal output (the `repro` binary's format).

use core::fmt;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a speedup with two decimals and an `x` suffix ("1.28x").
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}x")
}

/// Formats a ratio as a percentage with one decimal ("12.3%").
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["app", "speedup"]);
        t.row(["BFS", "1.28x"]).row(["PageRank", "1.33x"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("PageRank"));
        // Columns align: "speedup" starts at the same offset in all rows.
        let col = lines[0].find("speedup").unwrap();
        assert_eq!(&lines[2][col..col + 5], "1.28x");
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(1.284), "1.28x");
        assert_eq!(fmt_pct(0.1234), "12.3%");
    }
}
