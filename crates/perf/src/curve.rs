//! Performance-utility curves (the paper's Fig. 5/8/9 data structure).

/// One point of a utility curve: performance when huge pages are limited
/// to `percent`% of the application footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityPoint {
    /// Percent of the footprint backed by huge pages (0, 1, 2, 4, …, 64,
    /// 100 in the paper's sweeps).
    pub percent: u64,
    /// Speedup over the 4 KiB baseline.
    pub speedup: f64,
    /// Page-table-walk rate (fraction of accesses) at this point.
    pub walk_ratio: f64,
    /// Huge pages actually promoted/allocated at this point.
    pub huge_pages_used: u64,
}

/// A labelled utility curve for one app under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityCurve {
    /// Application name.
    pub app: String,
    /// Policy name ("pcc", "hawkeye", …).
    pub policy: String,
    /// Points in ascending `percent` order.
    pub points: Vec<UtilityPoint>,
}

impl UtilityCurve {
    /// The paper's sweep of footprint percentages.
    pub const PAPER_SWEEP: [u64; 9] = [0, 1, 2, 4, 8, 16, 32, 64, 100];

    /// Creates an empty curve.
    pub fn new(app: impl Into<String>, policy: impl Into<String>) -> Self {
        UtilityCurve {
            app: app.into(),
            policy: policy.into(),
            points: Vec::new(),
        }
    }

    /// The speedup at `percent`, if measured.
    pub fn speedup_at(&self, percent: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.percent == percent)
            .map(|p| p.speedup)
    }

    /// The smallest sweep percentage whose speedup reaches `fraction` of
    /// the curve's peak speedup — the paper's "promote 4% of the
    /// footprint to get >75% of peak" headline metric. `None` when the
    /// curve is empty.
    pub fn percent_reaching(&self, fraction: f64) -> Option<u64> {
        let peak = self
            .points
            .iter()
            .map(|p| p.speedup)
            .fold(f64::NAN, f64::max);
        if !peak.is_finite() {
            return None;
        }
        // "Fraction of peak" interpolates between baseline (1.0) and peak.
        let target = 1.0 + (peak - 1.0) * fraction;
        self.points
            .iter()
            .find(|p| p.speedup >= target - 1e-12)
            .map(|p| p.percent)
    }

    /// Whether speedups are (weakly) monotonic in promoted footprint —
    /// holds for well-behaved utility curves modulo promotion overheads.
    pub fn is_monotonic(&self, tolerance: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].speedup >= w[0].speedup - tolerance)
    }
}

/// Geometric mean of a nonempty slice; returns `None` when empty or any
/// value is non-positive.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Result of [`geomean_positive`]: the geometric mean over the usable
/// (strictly positive, finite) subset of the input, plus how much was
/// excluded to get it.
///
/// [`geomean`]'s all-or-nothing contract is right for math but wrong
/// for report rendering: one non-positive speedup (e.g. a degenerate
/// cell at test scale) used to blank an entire figure's geomean row.
/// Renderers use this variant instead and surface `excluded` to the
/// reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeomeanSummary {
    /// Geomean over the usable values; `None` when none were usable.
    pub value: Option<f64>,
    /// Values that contributed.
    pub used: usize,
    /// Non-positive or non-finite values that had to be excluded.
    pub excluded: usize,
}

impl GeomeanSummary {
    /// Whether anything had to be excluded.
    pub fn is_partial(&self) -> bool {
        self.excluded > 0
    }
}

/// Geometric mean over the strictly positive, finite subset of
/// `values`, reporting how many values were excluded.
pub fn geomean_positive(values: &[f64]) -> GeomeanSummary {
    let usable: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0 && v.is_finite())
        .collect();
    GeomeanSummary {
        value: geomean(&usable),
        used: usable.len(),
        excluded: values.len() - usable.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> UtilityCurve {
        let mut c = UtilityCurve::new("BFS", "pcc");
        for (pct, s) in [
            (0u64, 1.0),
            (1, 1.15),
            (2, 1.22),
            (4, 1.28),
            (8, 1.30),
            (100, 1.32),
        ] {
            c.points.push(UtilityPoint {
                percent: pct,
                speedup: s,
                walk_ratio: 0.1,
                huge_pages_used: pct,
            });
        }
        c
    }

    #[test]
    fn speedup_lookup() {
        let c = curve();
        assert_eq!(c.speedup_at(4), Some(1.28));
        assert_eq!(c.speedup_at(3), None);
    }

    #[test]
    fn percent_reaching_paper_metric() {
        let c = curve();
        // Peak 1.32; 75% of the way is 1.24 — first reached at 4%.
        assert_eq!(c.percent_reaching(0.75), Some(4));
        // 100% of peak only at the end.
        assert_eq!(c.percent_reaching(1.0), Some(100));
        // 0% of peak: the baseline point qualifies.
        assert_eq!(c.percent_reaching(0.0), Some(0));
        assert_eq!(UtilityCurve::new("x", "y").percent_reaching(0.5), None);
    }

    #[test]
    fn monotonicity_check() {
        let mut c = curve();
        assert!(c.is_monotonic(0.0));
        c.points[3].speedup = 1.0;
        assert!(!c.is_monotonic(0.01));
        assert!(c.is_monotonic(0.5));
    }

    #[test]
    fn geomean_math() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[2.0, 0.0]), None);
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        let g = geomean(&[1.3]).unwrap();
        assert!((g - 1.3).abs() < 1e-12);
    }

    #[test]
    fn geomean_positive_excludes_rather_than_blanks() {
        let s = geomean_positive(&[2.0, 0.0, 8.0, -1.0, f64::NAN]);
        assert_eq!(s.used, 2);
        assert_eq!(s.excluded, 3);
        assert!(s.is_partial());
        assert!((s.value.unwrap() - 4.0).abs() < 1e-12);
        // Clean input matches the strict geomean exactly.
        let clean = geomean_positive(&[1.0, 4.0]);
        assert_eq!(clean.value, geomean(&[1.0, 4.0]));
        assert!(!clean.is_partial());
        // Nothing usable: value is None but the counts still report why.
        let none = geomean_positive(&[0.0, -2.0]);
        assert_eq!(none.value, None);
        assert_eq!(none.excluded, 2);
    }

    #[test]
    fn paper_sweep_values() {
        assert_eq!(UtilityCurve::PAPER_SWEEP.len(), 9);
        assert_eq!(UtilityCurve::PAPER_SWEEP[0], 0);
        assert_eq!(*UtilityCurve::PAPER_SWEEP.last().unwrap(), 100);
    }
}
