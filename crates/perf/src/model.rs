//! Event counters and the cycle model.

use hpage_types::TimingConfig;

/// Event counts accumulated over one simulated run (one thread/core or a
/// whole-run aggregate — the arithmetic is the same).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Memory accesses issued.
    pub accesses: u64,
    /// Accesses that hit any L1 TLB.
    pub l1_hits: u64,
    /// Accesses that hit the L2 TLB.
    pub l2_hits: u64,
    /// Accesses that missed the whole hierarchy (page-table walks).
    pub walks: u64,
    /// Sum of page-table levels referenced over all walks (4 per walk for
    /// base-page leaves, 3 for 2 MiB, 2 for 1 GiB).
    pub walk_levels: u64,
    /// Page faults served with base pages.
    pub faults_base: u64,
    /// Page faults served with huge pages.
    pub faults_huge: u64,
    /// Huge-page promotions performed.
    pub promotions: u64,
    /// Huge-page demotions performed.
    pub demotions: u64,
    /// Base pages migrated by compaction.
    pub pages_migrated: u64,
    /// Base pages collapsed (copied) into huge pages by promotions.
    pub pages_collapsed: u64,
    /// TLB shootdowns broadcast.
    pub shootdowns: u64,
    /// Nested mode: host-dimension huge-page promotions (guest
    /// promotions are counted in `promotions`). Zero in native runs.
    pub host_promotions: u64,
    /// Nested mode: host-side shootdowns (nested-TLB / host
    /// structure-cache invalidations after a host remap). Zero in
    /// native runs.
    pub host_shootdowns: u64,
    /// Data-cache L2 hits (zero unless the cache model is enabled).
    pub cache_l2_hits: u64,
    /// Data-cache LLC hits.
    pub cache_llc_hits: u64,
    /// Data accesses served from memory.
    pub cache_memory: u64,
}

impl RunCounters {
    /// Component-wise sum (aggregate across threads/processes).
    #[must_use]
    pub fn merged(&self, other: &RunCounters) -> RunCounters {
        RunCounters {
            accesses: self.accesses + other.accesses,
            l1_hits: self.l1_hits + other.l1_hits,
            l2_hits: self.l2_hits + other.l2_hits,
            walks: self.walks + other.walks,
            walk_levels: self.walk_levels + other.walk_levels,
            faults_base: self.faults_base + other.faults_base,
            faults_huge: self.faults_huge + other.faults_huge,
            promotions: self.promotions + other.promotions,
            demotions: self.demotions + other.demotions,
            pages_migrated: self.pages_migrated + other.pages_migrated,
            pages_collapsed: self.pages_collapsed + other.pages_collapsed,
            shootdowns: self.shootdowns + other.shootdowns,
            host_promotions: self.host_promotions + other.host_promotions,
            host_shootdowns: self.host_shootdowns + other.host_shootdowns,
            cache_l2_hits: self.cache_l2_hits + other.cache_l2_hits,
            cache_llc_hits: self.cache_llc_hits + other.cache_llc_hits,
            cache_memory: self.cache_memory + other.cache_memory,
        }
    }

    /// Fraction of accesses causing page-table walks (the paper's
    /// "PTW %" / last-level TLB miss rate), in `[0, 1]`.
    pub fn walk_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.walks as f64 / self.accesses as f64
        }
    }

    /// Modelled execution time in cycles under `timing`.
    pub fn cycles(&self, timing: &TimingConfig) -> f64 {
        let base = self.accesses as f64 * timing.base_cost_millicycles as f64 / 1000.0;
        let l2 = (self.l2_hits + self.walks) as f64 * timing.l2_tlb_latency as f64;
        // A full 4-level walk costs walk_latency; shorter walks (huge
        // leaves) cost proportionally less.
        let walk = self.walk_levels as f64 * timing.walk_latency as f64 / 4.0;
        // Host promotions remap host frames and shoot down nested
        // translations, the same class of work as a guest promotion.
        let promo = (self.promotions + self.demotions + self.host_promotions) as f64
            * timing.promotion_cost as f64;
        let migrate = (self.pages_migrated + self.pages_collapsed) as f64
            * timing.migrate_cost_per_page as f64;
        // Cache-model terms are zero unless the optional cache hierarchy
        // ran (pair with `TimingConfig::with_cache_model`).
        let cache = self.cache_l2_hits as f64 * timing.cache_l2_latency as f64
            + self.cache_llc_hits as f64 * timing.cache_llc_latency as f64
            + self.cache_memory as f64 * timing.cache_memory_latency as f64;
        base + l2 + walk + promo + migrate + cache
    }

    /// Speedup of `self` relative to `baseline` under `timing`
    /// (`>1` means `self` is faster).
    pub fn speedup_over(&self, baseline: &RunCounters, timing: &TimingConfig) -> f64 {
        baseline.cycles(timing) / self.cycles(timing)
    }

    /// Address-translation overhead as a fraction of total cycles.
    pub fn translation_overhead(&self, timing: &TimingConfig) -> f64 {
        let total = self.cycles(timing);
        if total == 0.0 {
            return 0.0;
        }
        let l2 = (self.l2_hits + self.walks) as f64 * timing.l2_tlb_latency as f64;
        let walk = self.walk_levels as f64 * timing.walk_latency as f64 / 4.0;
        (l2 + walk) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingConfig {
        TimingConfig::paper()
    }

    #[test]
    fn cycles_additive_components() {
        let t = timing();
        let mut c = RunCounters {
            accesses: 1000,
            ..RunCounters::default()
        };
        let base_only = c.cycles(&t);
        assert!((base_only - 1000.0 * t.base_cost_millicycles as f64 / 1000.0).abs() < 1e-9);
        c.walks = 10;
        c.walk_levels = 40;
        let with_walks = c.cycles(&t);
        assert!(
            (with_walks
                - base_only
                - 10.0 * t.l2_tlb_latency as f64
                - 10.0 * t.walk_latency as f64)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn shorter_walks_cost_less() {
        let t = timing();
        let full = RunCounters {
            accesses: 100,
            walks: 10,
            walk_levels: 40, // 4-level walks
            ..RunCounters::default()
        };
        let huge = RunCounters {
            accesses: 100,
            walks: 10,
            walk_levels: 30, // 3-level walks (2MB leaves)
            ..RunCounters::default()
        };
        assert!(huge.cycles(&t) < full.cycles(&t));
    }

    #[test]
    fn speedup_of_fewer_walks() {
        let t = timing();
        let slow = RunCounters {
            accesses: 1_000_000,
            walks: 300_000,
            walk_levels: 1_200_000,
            l2_hits: 100_000,
            ..RunCounters::default()
        };
        let fast = RunCounters {
            accesses: 1_000_000,
            walks: 30_000,
            walk_levels: 90_000,
            l2_hits: 100_000,
            ..RunCounters::default()
        };
        let s = fast.speedup_over(&slow, &t);
        assert!(s > 1.5, "expected large speedup, got {s}");
        assert!(slow.speedup_over(&slow, &t) == 1.0);
    }

    #[test]
    fn promotion_overheads_charged() {
        let t = timing();
        let without = RunCounters {
            accesses: 1000,
            ..RunCounters::default()
        };
        let with = RunCounters {
            promotions: 2,
            pages_migrated: 10,
            pages_collapsed: 100,
            ..without
        };
        let delta = with.cycles(&t) - without.cycles(&t);
        let expected = 2.0 * t.promotion_cost as f64 + 110.0 * t.migrate_cost_per_page as f64;
        assert!((delta - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_everything() {
        let a = RunCounters {
            accesses: 1,
            l1_hits: 2,
            l2_hits: 3,
            walks: 4,
            walk_levels: 5,
            faults_base: 6,
            faults_huge: 7,
            promotions: 8,
            demotions: 9,
            pages_migrated: 10,
            pages_collapsed: 11,
            shootdowns: 12,
            host_promotions: 13,
            host_shootdowns: 14,
            cache_l2_hits: 15,
            cache_llc_hits: 16,
            cache_memory: 17,
        };
        let m = a.merged(&a);
        assert_eq!(m.accesses, 2);
        assert_eq!(m.shootdowns, 24);
        assert_eq!(m.walk_levels, 10);
        assert_eq!(m.host_promotions, 26);
        assert_eq!(m.host_shootdowns, 28);
        assert_eq!(m.cache_memory, 34);
    }

    #[test]
    fn host_promotions_charged_like_promotions() {
        let t = timing();
        let without = RunCounters {
            accesses: 1000,
            ..RunCounters::default()
        };
        let with = RunCounters {
            host_promotions: 3,
            ..without
        };
        let delta = with.cycles(&t) - without.cycles(&t);
        assert!((delta - 3.0 * t.promotion_cost as f64).abs() < 1e-9);
    }

    #[test]
    fn cache_terms_charged_when_present() {
        let t = TimingConfig::paper().with_cache_model();
        let without = RunCounters {
            accesses: 1000,
            ..RunCounters::default()
        };
        let with = RunCounters {
            cache_l2_hits: 5,
            cache_llc_hits: 3,
            cache_memory: 2,
            ..without
        };
        let delta = with.cycles(&t) - without.cycles(&t);
        let expected = 5.0 * t.cache_l2_latency as f64
            + 3.0 * t.cache_llc_latency as f64
            + 2.0 * t.cache_memory_latency as f64;
        assert!((delta - expected).abs() < 1e-9);
        // with_cache_model lowers the base cost.
        assert!(t.base_cost_millicycles < TimingConfig::paper().base_cost_millicycles);
    }

    #[test]
    fn walk_ratio_bounds() {
        assert_eq!(RunCounters::default().walk_ratio(), 0.0);
        let c = RunCounters {
            accesses: 100,
            walks: 25,
            ..RunCounters::default()
        };
        assert!((c.walk_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn translation_overhead_fraction() {
        let t = timing();
        let c = RunCounters {
            accesses: 1000,
            walks: 100,
            walk_levels: 400,
            ..RunCounters::default()
        };
        let f = c.translation_overhead(&t);
        assert!(f > 0.0 && f < 1.0);
        assert_eq!(RunCounters::default().translation_overhead(&t), 0.0);
    }
}
