//! Physical-memory accounting: frame allocation at base and huge
//! granularity, the paper's fragmentation injector, and compaction.
//!
//! The model tracks occupancy per 2 MiB block rather than per-frame
//! identity: frames are fungible for TLB behaviour (translations are
//! virtually tagged), so what matters is *huge-page availability* — which
//! blocks can still be turned into 2 MiB pages, directly or after
//! compaction. Fragmentation follows the paper's §5.1.1 recipe: one
//! non-movable base page pinned in every 2 MiB block of X% of memory,
//! making those blocks permanently huge-incapable.

use hpage_types::{HpageError, PageSize, Pfn};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Frames per 2 MiB block.
const FRAMES_PER_BLOCK: u16 = 512;

/// Result of a successful huge-frame allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeAlloc {
    /// The 2 MiB frame.
    pub pfn: Pfn,
    /// Base pages the allocator had to migrate (compaction work) to free
    /// the block. Zero when a clean block was available.
    pub pages_migrated: u64,
}

/// Lifetime allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhysMemStats {
    /// Base-frame allocations served.
    pub base_allocs: u64,
    /// Huge-frame allocations served.
    pub huge_allocs: u64,
    /// Huge-frame allocations that failed (no block even with compaction).
    pub huge_failures: u64,
    /// Compaction runs performed for huge allocations.
    pub compactions: u64,
    /// Total base pages migrated by compaction.
    pub pages_migrated: u64,
    /// Huge/giant allocations denied by an injected fault gate (counted
    /// separately from organic `huge_failures`).
    pub gated_failures: u64,
}

/// Injected-fault gate over the allocator (see `hpage-faults`). All
/// fields default to off; base-page allocation is never gated — an OOM
/// window starves *promotions*, not the demand-fault path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocGate {
    /// Deny every huge and giant allocation outright.
    pub deny_huge: bool,
    /// Treat compaction as unavailable (clean blocks still allocate).
    pub deny_compaction: bool,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Block {
    /// Movable base frames currently allocated in this block.
    used: u16,
    /// One frame is pinned by an unmovable allocation (fragmentation).
    unmovable: bool,
    /// The whole block is allocated as a huge frame.
    huge: bool,
}

impl Block {
    fn capacity(&self) -> u16 {
        if self.huge {
            0
        } else {
            FRAMES_PER_BLOCK - u16::from(self.unmovable)
        }
    }

    fn free(&self) -> u16 {
        self.capacity().saturating_sub(self.used)
    }

    fn huge_capable(&self) -> bool {
        !self.unmovable && !self.huge
    }
}

/// The machine's physical memory.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    blocks: Vec<Block>,
    stats: PhysMemStats,
    gate: AllocGate,
    /// Rotor so base allocations cycle rather than always hammering
    /// block 0.
    base_rotor: usize,
}

impl PhysicalMemory {
    /// Creates `bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of 2 MiB.
    pub fn new(bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(PageSize::Huge2M.bytes()),
            "physical memory must be a nonzero multiple of 2MiB"
        );
        let nblocks = (bytes / PageSize::Huge2M.bytes()) as usize;
        PhysicalMemory {
            blocks: vec![Block::default(); nblocks],
            stats: PhysMemStats::default(),
            gate: AllocGate::default(),
            base_rotor: 0,
        }
    }

    /// Fragments memory per the paper's recipe (§5.1.1): one base page is
    /// allocated in *every* 2 MiB block — non-movable in `percent`% of
    /// blocks (chosen uniformly with `seed`), movable in the rest. The
    /// pinned blocks can never back a huge page; the others can, but only
    /// after compaction migrates their resident page away. In this state
    /// no order-9 free block exists anywhere, so synchronous fault-time
    /// THP allocation (which does not compact) always fails — matching
    /// the paper's observation that greedy THP gains almost nothing on
    /// fragmented memory while promotion-by-compaction still works.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn fragment(&mut self, percent: u8, seed: u64) {
        assert!(percent <= 100, "fragmentation is a percentage");
        let mut order: Vec<usize> = (0..self.blocks.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let n = self.blocks.len() * usize::from(percent) / 100;
        for (k, &i) in order.iter().enumerate() {
            if k < n {
                // A huge-backed block cannot retroactively host unmovable
                // kernel pages, and a block whose every frame is already
                // occupied has no room for one — both cases matter when
                // fragment() models a mid-run fragmentation shock rather
                // than setup-time state.
                if !self.blocks[i].huge && self.blocks[i].used < FRAMES_PER_BLOCK {
                    self.blocks[i].unmovable = true;
                }
            } else if self.blocks[i].used == 0 && !self.blocks[i].huge {
                // Residual movable occupancy: compactable, but blocks the
                // fault-time fast path.
                self.blocks[i].used = 1;
            }
        }
    }

    /// Number of 2 MiB blocks.
    pub fn block_count(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Total base-frame capacity (excluding pinned unmovable frames).
    pub fn total_frames(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| u64::from(FRAMES_PER_BLOCK - u16::from(b.unmovable)))
            .sum()
    }

    /// Free base-frame capacity right now.
    pub fn free_frames(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.free())).sum()
    }

    /// Blocks that could still become huge pages (not fragmented, not
    /// already huge) — possibly requiring compaction.
    pub fn huge_capable_blocks(&self) -> u64 {
        self.blocks.iter().filter(|b| b.huge_capable()).count() as u64
    }

    /// Blocks that could become huge pages *right now* without any
    /// compaction: huge-capable and completely free. The flight
    /// recorder samples this at interval boundaries as the cheap-
    /// promotion headroom signal.
    pub fn free_huge_capable_blocks(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.huge_capable() && b.used == 0)
            .count() as u64
    }

    /// Blocks currently allocated as huge frames.
    pub fn huge_blocks_in_use(&self) -> u64 {
        self.blocks.iter().filter(|b| b.huge).count() as u64
    }

    /// Base-frame capacity currently consumed by allocations of any
    /// size: movable base frames plus the full span of huge blocks.
    /// `total_frames() == free_frames() + used_frames()` always holds
    /// (the invariant the auditor and property tests pin down).
    pub fn used_frames(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| {
                if b.huge {
                    u64::from(FRAMES_PER_BLOCK)
                } else {
                    u64::from(b.used)
                }
            })
            .sum()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &PhysMemStats {
        &self.stats
    }

    /// The injected-fault gate currently in force.
    pub fn alloc_gate(&self) -> AllocGate {
        self.gate
    }

    /// Installs an injected-fault gate (pass `AllocGate::default()` to
    /// lift it).
    pub fn set_alloc_gate(&mut self, gate: AllocGate) {
        self.gate = gate;
    }

    /// Checks the per-block structural invariants the allocator is
    /// supposed to preserve, returning a description of each violation
    /// (empty when healthy). Used by `hpage_os::audit`.
    pub fn check_block_invariants(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            if b.huge && b.used > 0 {
                out.push(format!(
                    "block {i}: huge but carries {} movable base frames",
                    b.used
                ));
            }
            if b.huge && b.unmovable {
                out.push(format!("block {i}: huge despite a pinned unmovable frame"));
            }
            if !b.huge && b.used > b.capacity() {
                out.push(format!(
                    "block {i}: {} frames used exceeds capacity {}",
                    b.used,
                    b.capacity()
                ));
            }
        }
        out
    }

    /// Allocates one 4 KiB frame.
    ///
    /// Placement policy: prefer partially used blocks (keeping clean
    /// blocks intact for huge pages, as the buddy allocator's
    /// split-reluctance and Linux's mobility grouping tend to), then
    /// fragmented blocks, then clean blocks.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::OutOfMemory`] when no frame is free.
    pub fn alloc_base(&mut self) -> Result<Pfn, HpageError> {
        let n = self.blocks.len();
        let score = |b: &Block| -> u8 {
            if b.free() == 0 {
                return u8::MAX; // unusable
            }
            if b.used > 0 {
                0 // partially dirty: best
            } else if b.unmovable {
                1 // fragmented but empty: next
            } else {
                2 // clean: last resort
            }
        };
        let mut best: Option<(u8, usize)> = None;
        for off in 0..n {
            let i = (self.base_rotor + off) % n;
            let s = score(&self.blocks[i]);
            if s == 0 {
                best = Some((0, i));
                break;
            }
            if s < u8::MAX && best.map(|(bs, _)| s < bs).unwrap_or(true) {
                best = Some((s, i));
            }
        }
        let Some((_, i)) = best else {
            return Err(HpageError::OutOfMemory { requested: 4096 });
        };
        let slot = u64::from(self.blocks[i].used);
        self.blocks[i].used += 1;
        if self.blocks[i].free() == 0 {
            self.base_rotor = (i + 1) % n;
        }
        self.stats.base_allocs += 1;
        Ok(Pfn::new(
            i as u64 * u64::from(FRAMES_PER_BLOCK) + slot,
            PageSize::Base4K,
        ))
    }

    /// Frees one 4 KiB frame.
    ///
    /// Frames are fungible in this accounting model: if the frame's
    /// nominal block no longer holds movable pages (it was compacted into
    /// a huge page since), the release is applied to another occupied
    /// block — global counts stay exact.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvariantViolation`] for a wrong-sized or
    /// out-of-range PFN, or when no movable base frame is allocated
    /// anywhere (a double free at the accounting level). The memory is
    /// left untouched in every error case.
    pub fn free_base(&mut self, pfn: Pfn) -> Result<(), HpageError> {
        if pfn.size() != PageSize::Base4K {
            return Err(invariant(format!(
                "free_base takes 4K frames, got {:?}",
                pfn.size()
            )));
        }
        let i = (pfn.index() / u64::from(FRAMES_PER_BLOCK)) as usize;
        if i >= self.blocks.len() {
            return Err(invariant(format!(
                "free_base: pfn {} outside physical memory",
                pfn.index()
            )));
        }
        if !self.blocks[i].huge && self.blocks[i].used > 0 {
            self.blocks[i].used -= 1;
            return Ok(());
        }
        // Stale identity after compaction: free from any occupied block.
        match self.blocks.iter_mut().find(|b| !b.huge && b.used > 0) {
            Some(b) => {
                b.used -= 1;
                Ok(())
            }
            None => Err(invariant(format!(
                "free_base of pfn {} with no movable base frames allocated anywhere (double free?)",
                pfn.index()
            ))),
        }
    }

    /// Allocates one 2 MiB frame.
    ///
    /// Tries a clean huge-capable block first; with `allow_compaction`,
    /// vacates the least-occupied huge-capable block by migrating its
    /// movable pages into free space elsewhere (cost reported in
    /// [`HugeAlloc::pages_migrated`]).
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::OutOfMemory`] when no block can be freed,
    /// or [`HpageError::Fault`] when an injected [`AllocGate`] denies
    /// huge allocation.
    pub fn alloc_huge(&mut self, allow_compaction: bool) -> Result<HugeAlloc, HpageError> {
        if self.gate.deny_huge {
            self.stats.gated_failures += 1;
            return Err(HpageError::Fault {
                reason: "oom window: huge allocation denied".into(),
            });
        }
        let allow_compaction = allow_compaction && !self.gate.deny_compaction;
        // Fast path: a clean block.
        if let Some(i) = self
            .blocks
            .iter()
            .position(|b| b.huge_capable() && b.used == 0)
        {
            self.blocks[i].huge = true;
            self.stats.huge_allocs += 1;
            return Ok(HugeAlloc {
                pfn: Pfn::new(i as u64, PageSize::Huge2M),
                pages_migrated: 0,
            });
        }
        if !allow_compaction {
            self.stats.huge_failures += 1;
            return Err(HpageError::OutOfMemory {
                requested: PageSize::Huge2M.bytes(),
            });
        }
        // Compaction: pick the least-used huge-capable block whose pages
        // fit in the free space of the other blocks.
        let victim = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.huge_capable())
            .min_by_key(|(_, b)| b.used)
            .map(|(i, _)| i);
        let Some(v) = victim else {
            self.stats.huge_failures += 1;
            return Err(HpageError::OutOfMemory {
                requested: PageSize::Huge2M.bytes(),
            });
        };
        let mut to_move = self.blocks[v].used;
        let free_elsewhere: u64 = self
            .blocks
            .iter()
            .enumerate()
            .filter(|&(i, b)| i != v && !b.huge)
            .map(|(_, b)| u64::from(b.free()))
            .sum();
        if u64::from(to_move) > free_elsewhere {
            self.stats.huge_failures += 1;
            return Err(HpageError::OutOfMemory {
                requested: PageSize::Huge2M.bytes(),
            });
        }
        let migrated = u64::from(to_move);
        // Distribute the evicted pages into other blocks, dirtiest first
        // (same placement preference as alloc_base).
        let mut order: Vec<usize> = (0..self.blocks.len()).filter(|&i| i != v).collect();
        order.sort_by_key(|&i| {
            let b = &self.blocks[i];
            (b.used == 0, b.unmovable) // prefer dirty, then fragmented
        });
        for i in order {
            if to_move == 0 {
                break;
            }
            if self.blocks[i].huge {
                continue;
            }
            let take = to_move.min(self.blocks[i].free());
            self.blocks[i].used += take;
            to_move -= take;
        }
        debug_assert_eq!(to_move, 0);
        self.blocks[v].used = 0;
        self.blocks[v].huge = true;
        self.stats.huge_allocs += 1;
        self.stats.compactions += 1;
        self.stats.pages_migrated += migrated;
        Ok(HugeAlloc {
            pfn: Pfn::new(v as u64, PageSize::Huge2M),
            pages_migrated: migrated,
        })
    }

    /// Allocates a 1 GiB frame: 512 naturally aligned, contiguous 2 MiB
    /// blocks, all clean and huge-capable. With `allow_compaction`, the
    /// occupied blocks in the best-aligned window are vacated first.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::OutOfMemory`] when no aligned window can be
    /// freed — on fragmented memory this is the common case, which is why
    /// 1 GiB pages are effectively boot-time-only resources on real
    /// systems. Returns [`HpageError::Fault`] when an injected
    /// [`AllocGate`] denies huge allocation.
    pub fn alloc_giant(&mut self, allow_compaction: bool) -> Result<HugeAlloc, HpageError> {
        if self.gate.deny_huge {
            self.stats.gated_failures += 1;
            return Err(HpageError::Fault {
                reason: "oom window: giant allocation denied".into(),
            });
        }
        let allow_compaction = allow_compaction && !self.gate.deny_compaction;
        const BLOCKS: usize = 512;
        let windows = self.blocks.len() / BLOCKS;
        let mut best: Option<(u64, usize)> = None; // (pages to move, window)
        'windows: for w in 0..windows {
            let window = &self.blocks[w * BLOCKS..(w + 1) * BLOCKS];
            let mut to_move = 0u64;
            for b in window {
                if !b.huge_capable() {
                    continue 'windows;
                }
                to_move += u64::from(b.used);
            }
            if to_move == 0 {
                best = Some((0, w));
                break;
            }
            if allow_compaction && best.map(|(m, _)| to_move < m).unwrap_or(true) {
                best = Some((to_move, w));
            }
        }
        let Some((to_move, w)) = best else {
            self.stats.huge_failures += 1;
            return Err(HpageError::OutOfMemory {
                requested: PageSize::Huge1G.bytes(),
            });
        };
        if to_move > 0 {
            // Check room elsewhere, then vacate the window.
            let free_elsewhere: u64 = self
                .blocks
                .iter()
                .enumerate()
                .filter(|&(i, b)| (i < w * BLOCKS || i >= (w + 1) * BLOCKS) && !b.huge)
                .map(|(_, b)| u64::from(b.free()))
                .sum();
            if to_move > free_elsewhere {
                self.stats.huge_failures += 1;
                return Err(HpageError::OutOfMemory {
                    requested: PageSize::Huge1G.bytes(),
                });
            }
            let mut remaining = to_move;
            let (lo, hi) = (w * BLOCKS, (w + 1) * BLOCKS);
            for i in (0..self.blocks.len()).filter(|&i| i < lo || i >= hi) {
                if remaining == 0 {
                    break;
                }
                if self.blocks[i].huge {
                    continue;
                }
                let take = remaining.min(u64::from(self.blocks[i].free()));
                self.blocks[i].used += take as u16;
                remaining -= take;
            }
            for b in &mut self.blocks[lo..hi] {
                b.used = 0;
            }
            self.stats.compactions += 1;
            self.stats.pages_migrated += to_move;
        }
        for b in &mut self.blocks[w * BLOCKS..(w + 1) * BLOCKS] {
            b.huge = true;
        }
        self.stats.huge_allocs += 1;
        Ok(HugeAlloc {
            pfn: Pfn::new(w as u64, PageSize::Huge1G),
            pages_migrated: to_move,
        })
    }

    /// Frees a 1 GiB frame allocated by [`alloc_giant`](Self::alloc_giant).
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvariantViolation`] for a wrong-sized or
    /// out-of-range PFN, or when any block of the window is not huge
    /// (a double free or never-allocated window). Checked up front: the
    /// window is either released whole or left untouched.
    pub fn free_giant(&mut self, pfn: Pfn) -> Result<(), HpageError> {
        if pfn.size() != PageSize::Huge1G {
            return Err(invariant(format!(
                "free_giant takes 1G frames, got {:?}",
                pfn.size()
            )));
        }
        let lo = pfn.index() as usize * 512;
        if lo + 512 > self.blocks.len() {
            return Err(invariant(format!(
                "free_giant: pfn {} outside physical memory",
                pfn.index()
            )));
        }
        if let Some(off) = self.blocks[lo..lo + 512].iter().position(|b| !b.huge) {
            return Err(invariant(format!(
                "free_giant of window {}: block {} is not huge (double free?)",
                pfn.index(),
                lo + off
            )));
        }
        for b in &mut self.blocks[lo..lo + 512] {
            b.huge = false;
        }
        Ok(())
    }

    /// Frees a 2 MiB frame.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvariantViolation`] for a wrong-sized or
    /// out-of-range PFN, or when the block is not allocated huge (a
    /// double free or never-allocated block).
    pub fn free_huge(&mut self, pfn: Pfn) -> Result<(), HpageError> {
        let i = self.expect_huge_block(pfn, "free_huge")?;
        self.blocks[i].huge = false;
        Ok(())
    }

    /// Converts a freed huge block directly into 512 allocated base
    /// frames inside the same block (the demotion path: the data stays
    /// in place, the mapping granularity changes).
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvariantViolation`] for a wrong-sized or
    /// out-of-range PFN, or when the block is not allocated huge.
    pub fn split_huge_in_place(&mut self, pfn: Pfn) -> Result<Vec<Pfn>, HpageError> {
        let i = self.expect_huge_block(pfn, "split_huge_in_place")?;
        self.blocks[i].huge = false;
        // The unmovable flag cannot be set (the block was huge), so all
        // 512 frames are usable.
        self.blocks[i].used = FRAMES_PER_BLOCK;
        let base = i as u64 * u64::from(FRAMES_PER_BLOCK);
        Ok((0..u64::from(FRAMES_PER_BLOCK))
            .map(|k| Pfn::new(base + k, PageSize::Base4K))
            .collect())
    }

    /// Validates that `pfn` names an in-range block currently allocated
    /// huge, returning its index.
    fn expect_huge_block(&self, pfn: Pfn, op: &str) -> Result<usize, HpageError> {
        if pfn.size() != PageSize::Huge2M {
            return Err(invariant(format!(
                "{op} takes 2M frames, got {:?}",
                pfn.size()
            )));
        }
        let i = pfn.index() as usize;
        if i >= self.blocks.len() {
            return Err(invariant(format!(
                "{op}: pfn {} outside physical memory",
                pfn.index()
            )));
        }
        if !self.blocks[i].huge {
            return Err(invariant(format!(
                "{op} of block {i} which is not huge (double free?)"
            )));
        }
        Ok(i)
    }
}

fn invariant(what: impl Into<String>) -> HpageError {
    HpageError::InvariantViolation { what: what.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB2: u64 = PageSize::Huge2M.bytes();

    #[test]
    fn capacity_math() {
        let pm = PhysicalMemory::new(8 * MB2);
        assert_eq!(pm.block_count(), 8);
        assert_eq!(pm.total_frames(), 8 * 512);
        assert_eq!(pm.free_frames(), 8 * 512);
        assert_eq!(pm.huge_capable_blocks(), 8);
    }

    #[test]
    #[should_panic(expected = "multiple of 2MiB")]
    fn unaligned_size_panics() {
        let _ = PhysicalMemory::new(4096);
    }

    #[test]
    fn fragmentation_pins_blocks() {
        let mut pm = PhysicalMemory::new(10 * MB2);
        pm.fragment(50, 1);
        assert_eq!(pm.huge_capable_blocks(), 5);
        // Pinned blocks lose one frame of capacity each; the other blocks
        // carry one movable resident page each.
        assert_eq!(pm.total_frames(), 10 * 512 - 5);
        assert_eq!(pm.free_frames(), 10 * 512 - 5 - 5);
        // No clean block remains: fault-time (no-compaction) huge
        // allocation fails...
        assert!(pm.alloc_huge(false).is_err());
        // ...but promotion-path compaction still succeeds.
        assert!(pm.alloc_huge(true).is_ok());
        pm.fragment(100, 1);
        assert_eq!(pm.huge_capable_blocks(), 0);
    }

    #[test]
    fn base_alloc_prefers_dirty_blocks() {
        let mut pm = PhysicalMemory::new(4 * MB2);
        // Dirty block 2 by hand; allocations must pile onto it rather
        // than breaking a clean block.
        pm.blocks[2].used = 1;
        let first = pm.alloc_base().unwrap();
        assert_eq!(first.index() / 512, 2, "first alloc avoids clean blocks");
        let second = pm.alloc_base().unwrap();
        assert_eq!(second.index() / 512, 2);
        // Without dirty blocks, fragmented-but-empty blocks come next.
        let mut pm = PhysicalMemory::new(4 * MB2);
        pm.blocks[1].unmovable = true;
        let first = pm.alloc_base().unwrap();
        assert_eq!(first.index() / 512, 1, "prefers pinned block over clean");
        assert_eq!(pm.huge_capable_blocks(), 3);
    }

    #[test]
    fn huge_alloc_clean_block() {
        let mut pm = PhysicalMemory::new(4 * MB2);
        let h = pm.alloc_huge(false).unwrap();
        assert_eq!(h.pages_migrated, 0);
        assert_eq!(pm.huge_blocks_in_use(), 1);
        assert_eq!(pm.free_frames(), 3 * 512);
        pm.free_huge(h.pfn).unwrap();
        assert_eq!(pm.huge_blocks_in_use(), 0);
        assert_eq!(pm.free_frames(), 4 * 512);
    }

    #[test]
    fn huge_alloc_fails_when_fully_fragmented() {
        let mut pm = PhysicalMemory::new(4 * MB2);
        pm.fragment(100, 3);
        assert!(pm.alloc_huge(true).is_err());
        assert_eq!(pm.stats().huge_failures, 1);
    }

    #[test]
    fn fragmentation_survives_compaction_pressure() {
        // With 50% fragmented, only the unpinned half can ever be huge.
        let mut pm = PhysicalMemory::new(8 * MB2);
        pm.fragment(50, 5);
        let mut got = 0;
        while pm.alloc_huge(true).is_ok() {
            got += 1;
        }
        assert_eq!(got, 4);
    }

    #[test]
    fn compaction_fails_without_room_elsewhere() {
        let mut pm = PhysicalMemory::new(2 * MB2);
        // Block 0 full (512), block 1 holds 88: the only candidate victim
        // is block 1, but block 0 has no room for its 88 pages.
        for _ in 0..600 {
            pm.alloc_base().unwrap();
        }
        assert!(pm.alloc_huge(false).is_err());
        assert!(pm.alloc_huge(true).is_err());
        assert_eq!(pm.stats().huge_failures, 2);
    }

    #[test]
    fn compaction_requires_free_space_elsewhere() {
        let mut pm = PhysicalMemory::new(2 * MB2);
        for _ in 0..1024 {
            pm.alloc_base().unwrap(); // completely full
        }
        assert!(pm.alloc_huge(true).is_err());
    }

    #[test]
    fn compaction_happy_path() {
        let mut pm = PhysicalMemory::new(3 * MB2);
        // Fill block A fully and put a little in B and C so no block is
        // clean.
        for _ in 0..(512 + 10 + 10) {
            pm.alloc_base().unwrap();
        }
        // Rotor-based fill: block0=512, block1=10? Placement prefers
        // dirty blocks, so after block0 fills, next goes to block1 and
        // stays there. Force some into block2 manually:
        pm.blocks[1].used -= 10;
        pm.blocks[2].used += 10;
        assert!(pm.blocks.iter().all(|b| b.used > 0));
        let h = pm.alloc_huge(true).unwrap();
        assert_eq!(h.pages_migrated, 10); // least-used block vacated
                                          // Global accounting preserved: 532 base frames still allocated.
        let used: u64 = pm.blocks.iter().map(|b| u64::from(b.used)).sum();
        assert_eq!(used, 532);
    }

    #[test]
    fn free_base_handles_stale_identity() {
        let mut pm = PhysicalMemory::new(3 * MB2);
        let mut pfns = Vec::new();
        for _ in 0..30 {
            pfns.push(pm.alloc_base().unwrap());
        }
        // Compact the block holding those pages into a huge page.
        let _h = pm.alloc_huge(true);
        // Freeing the (now stale) pfns must not underflow; global count
        // drops correctly.
        let before = pm.free_frames();
        for p in pfns {
            pm.free_base(p).unwrap();
        }
        assert_eq!(pm.free_frames(), before + 30);
    }

    #[test]
    fn split_huge_in_place_keeps_data_resident() {
        let mut pm = PhysicalMemory::new(2 * MB2);
        let h = pm.alloc_huge(false).unwrap();
        let frames = pm.split_huge_in_place(h.pfn).unwrap();
        assert_eq!(frames.len(), 512);
        assert_eq!(pm.huge_blocks_in_use(), 0);
        assert_eq!(pm.free_frames(), 512); // other block only
                                           // All frames fall inside the old huge block.
        assert!(frames.iter().all(|f| f.index() / 512 == h.pfn.index()));
    }

    #[test]
    fn oom_on_exhaustion() {
        let mut pm = PhysicalMemory::new(MB2);
        for _ in 0..512 {
            pm.alloc_base().unwrap();
        }
        assert!(matches!(
            pm.alloc_base(),
            Err(HpageError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn giant_alloc_needs_aligned_clean_gigabyte() {
        let mut pm = PhysicalMemory::new(1024 * MB2); // 2 GiB = 2 windows
        let g = pm.alloc_giant(false).unwrap();
        assert_eq!(g.pfn.size(), PageSize::Huge1G);
        assert_eq!(g.pages_migrated, 0);
        assert_eq!(pm.huge_blocks_in_use(), 512);
        // A second window is still available; a third is not.
        assert!(pm.alloc_giant(false).is_ok());
        assert!(pm.alloc_giant(true).is_err());
        pm.free_giant(g.pfn).unwrap();
        assert!(pm.alloc_giant(false).is_ok());
    }

    #[test]
    fn giant_alloc_compacts_least_used_window() {
        let mut pm = PhysicalMemory::new(1024 * MB2);
        // Dirty both windows so no clean aligned gigabyte exists.
        pm.blocks[3].used = 7; // window 0
        pm.blocks[600].used = 3; // window 1
        assert!(pm.alloc_giant(false).is_err());
        let g = pm.alloc_giant(true).unwrap();
        assert_eq!(g.pages_migrated, 3); // window 1 vacated
        assert_eq!(g.pfn.index(), 1);
        // Its 3 pages moved into window 0.
        let used: u64 = pm.blocks[..512].iter().map(|b| u64::from(b.used)).sum();
        assert_eq!(used, 10);
    }

    #[test]
    fn giant_alloc_fails_on_any_pinned_block() {
        let mut pm = PhysicalMemory::new(512 * MB2); // exactly one window
        pm.blocks[100].unmovable = true;
        assert!(pm.alloc_giant(true).is_err());
    }

    #[test]
    fn frees_reject_double_free_and_bad_pfns() {
        let mut pm = PhysicalMemory::new(2 * MB2);
        let p = pm.alloc_base().unwrap();
        pm.free_base(p).unwrap();
        // Nothing allocated anywhere: a second free is a detectable
        // accounting-level double free.
        assert!(matches!(
            pm.free_base(p),
            Err(HpageError::InvariantViolation { .. })
        ));
        // Out-of-range and wrong-size PFNs are rejected without effect.
        assert!(pm.free_base(Pfn::new(99_999, PageSize::Base4K)).is_err());
        assert!(pm.free_base(Pfn::new(0, PageSize::Huge2M)).is_err());

        let h = pm.alloc_huge(false).unwrap();
        pm.free_huge(h.pfn).unwrap();
        assert!(matches!(
            pm.free_huge(h.pfn),
            Err(HpageError::InvariantViolation { .. })
        ));
        assert!(pm.free_huge(Pfn::new(0, PageSize::Base4K)).is_err());
        assert!(pm.free_huge(Pfn::new(77, PageSize::Huge2M)).is_err());
        assert!(pm.split_huge_in_place(h.pfn).is_err());
        assert_eq!(pm.free_frames(), pm.total_frames());
    }

    #[test]
    fn free_giant_rejects_partial_windows() {
        let mut pm = PhysicalMemory::new(512 * MB2);
        let g = pm.alloc_giant(false).unwrap();
        // Break the window: release one constituent 2M block.
        pm.free_huge(Pfn::new(5, PageSize::Huge2M)).unwrap();
        let before = pm.huge_blocks_in_use();
        assert!(pm.free_giant(g.pfn).is_err());
        // Check-then-mutate: the failed free released nothing.
        assert_eq!(pm.huge_blocks_in_use(), before);
        assert!(pm.free_giant(Pfn::new(0, PageSize::Base4K)).is_err());
        assert!(pm.free_giant(Pfn::new(9, PageSize::Huge1G)).is_err());
    }

    #[test]
    fn used_frames_balances_total() {
        let mut pm = PhysicalMemory::new(8 * MB2);
        pm.fragment(25, 3);
        let mut held = Vec::new();
        for _ in 0..100 {
            held.push(pm.alloc_base().unwrap());
        }
        let h = pm.alloc_huge(true).unwrap();
        assert_eq!(pm.total_frames(), pm.free_frames() + pm.used_frames());
        pm.free_huge(h.pfn).unwrap();
        for p in held {
            pm.free_base(p).unwrap();
        }
        assert_eq!(pm.total_frames(), pm.free_frames() + pm.used_frames());
        assert!(pm.check_block_invariants().is_empty());
    }

    #[test]
    fn alloc_gate_denies_huge_paths_only() {
        let mut pm = PhysicalMemory::new(1024 * MB2);
        pm.set_alloc_gate(AllocGate {
            deny_huge: true,
            deny_compaction: false,
        });
        assert!(matches!(pm.alloc_huge(true), Err(HpageError::Fault { .. })));
        assert!(matches!(
            pm.alloc_giant(true),
            Err(HpageError::Fault { .. })
        ));
        // The demand-fault path is never gated.
        assert!(pm.alloc_base().is_ok());
        assert_eq!(pm.stats().gated_failures, 2);
        assert_eq!(pm.stats().huge_failures, 0);
        pm.set_alloc_gate(AllocGate::default());
        assert!(pm.alloc_huge(true).is_ok());
    }

    #[test]
    fn alloc_gate_compaction_stall_keeps_clean_blocks_working() {
        let mut pm = PhysicalMemory::new(4 * MB2);
        pm.set_alloc_gate(AllocGate {
            deny_huge: false,
            deny_compaction: true,
        });
        // Clean blocks still allocate...
        assert!(pm.alloc_huge(true).is_ok());
        // ...but once every block is dirty, compaction being stalled
        // turns allow_compaction=true into a failure.
        pm.fragment(0, 1); // one movable page in every non-huge block
        assert!(matches!(
            pm.alloc_huge(true),
            Err(HpageError::OutOfMemory { .. })
        ));
        pm.set_alloc_gate(AllocGate::default());
        assert!(pm.alloc_huge(true).is_ok());
    }

    #[test]
    fn fragment_is_deterministic() {
        let mut a = PhysicalMemory::new(64 * MB2);
        let mut b = PhysicalMemory::new(64 * MB2);
        a.fragment(50, 9);
        b.fragment(50, 9);
        let pat = |pm: &PhysicalMemory| pm.blocks.iter().map(|b| b.unmovable).collect::<Vec<_>>();
        assert_eq!(pat(&a), pat(&b));
    }
}
