//! A process address space: the page table plus the promotion/demotion
//! mechanics the OS performs on it.

use crate::physmem::PhysicalMemory;
use hpage_tlb::{PageTable, Translation};
use hpage_types::{FxHashMap, HpageError, PageSize, ProcessId, VirtAddr, Vpn};

/// How a page fault was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Backed with a 4 KiB base page.
    Base(Translation),
    /// Backed synchronously with a 2 MiB huge page (Linux's THP
    /// fault-time allocation).
    Huge(Translation),
}

impl FaultOutcome {
    /// The installed translation.
    pub fn translation(&self) -> Translation {
        match self {
            FaultOutcome::Base(t) | FaultOutcome::Huge(t) => *t,
        }
    }
}

/// A physical frame granted to satisfy a page fault, decided by
/// [`AddressSpace::allocate_grant`] and installed by
/// [`AddressSpace::install_grant`].
///
/// The split exists for the sharded simulation loop: worker threads own
/// the page tables (they evaluate [`AddressSpace::fault_wants_huge`] and
/// install mappings locally) while a single coordinator owns
/// [`PhysicalMemory`] and serves allocation in global core order, so
/// frame assignment is identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultGrant {
    /// A 4 KiB base frame.
    Base(hpage_types::Pfn),
    /// A 2 MiB huge frame.
    Huge(hpage_types::Pfn),
}

/// Result of a successful promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionOutcome {
    /// The region that became a huge page.
    pub region: Vpn,
    /// Base pages migrated by compaction to free the huge frame.
    pub pages_migrated: u64,
    /// Base pages that were mapped in the region before promotion (data
    /// copy volume).
    pub pages_collapsed: u64,
}

/// Per-address-space OS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddressSpaceStats {
    /// Page faults served with base pages.
    pub base_faults: u64,
    /// Page faults served with huge pages.
    pub huge_faults: u64,
    /// Huge-page promotions performed.
    pub promotions: u64,
    /// Huge-page demotions performed.
    pub demotions: u64,
    /// Distinct 4 KiB pages actually touched (faulted on). The gap
    /// between resident and touched bytes is the paper's memory *bloat*:
    /// greedy huge-page faulting maps 2 MiB for a single touched page.
    pub pages_touched: u64,
}

/// What the OS remembers about a promotion it performed, to drive later
/// demotion and bloat-reclaim decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PromotionRecord {
    /// Simulation timestamp of the promotion.
    at: u64,
    /// Base pages that were mapped before the collapse — the rest of the
    /// region's 512 pages are residency the application never asked for.
    pages_before: u64,
}

/// A simulated process address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    pid: ProcessId,
    page_table: PageTable,
    /// 2 MiB regions promoted by the OS (vs. faulted-in huge), with the
    /// record the OS keeps to drive demotion decisions.
    promoted: FxHashMap<u64, PromotionRecord>,
    stats: AddressSpaceStats,
}

impl AddressSpace {
    /// Creates an empty address space for `pid`.
    pub fn new(pid: ProcessId) -> Self {
        AddressSpace {
            pid,
            page_table: PageTable::new(),
            promoted: FxHashMap::default(),
            stats: AddressSpaceStats::default(),
        }
    }

    /// The owning process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The page table (hardware walks go through this).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable page table access (the walker needs it to set A-bits).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Per-space statistics.
    pub fn stats(&self) -> &AddressSpaceStats {
        &self.stats
    }

    /// 2 MiB regions currently mapped huge (in ascending order).
    pub fn huge_regions(&self) -> Vec<Vpn> {
        let mut v: Vec<Vpn> = self
            .page_table
            .mapped_2m_regions()
            .into_iter()
            .filter(|r| self.page_table.is_huge_mapped(*r))
            .collect();
        v.sort_by_key(|r| r.index());
        v
    }

    /// Regions promoted by the OS (subset of [`huge_regions`]) with their
    /// promotion timestamps.
    pub fn promoted_regions(&self) -> Vec<(Vpn, u64)> {
        let mut v: Vec<(Vpn, u64)> = self
            .promoted
            .iter()
            .map(|(&i, rec)| (Vpn::new(i, PageSize::Huge2M), rec.at))
            .collect();
        v.sort_by_key(|(r, _)| r.index());
        v
    }

    /// Handles a page fault at `va`. When `prefer_huge` (Linux THP's
    /// synchronous policy), a 2 MiB frame is attempted first (without
    /// compaction — fault latency matters) and the fault falls back to a
    /// base page when none is available. As in Linux, the huge path only
    /// applies when the whole PMD range is still empty; a region that
    /// already holds base pages keeps faulting base pages (khugepaged
    /// collapses it later).
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::OutOfMemory`] when no base frame is free
    /// either.
    pub fn fault(
        &mut self,
        va: VirtAddr,
        prefer_huge: bool,
        phys: &mut PhysicalMemory,
    ) -> Result<FaultOutcome, HpageError> {
        let wants_huge = self.fault_wants_huge(va, prefer_huge);
        let grant = Self::allocate_grant(phys, wants_huge)?;
        self.install_grant(va, grant)
    }

    /// Whether a fault at `va` would take the huge-allocation path: the
    /// policy prefers huge pages *and* the PMD range is still empty (a
    /// region already holding base pages keeps faulting base pages, as
    /// in Linux). This is the page-table half of the fault decision; it
    /// needs no [`PhysicalMemory`] access, so a sharded worker can
    /// evaluate it locally and ship only the allocation request.
    pub fn fault_wants_huge(&self, va: VirtAddr, prefer_huge: bool) -> bool {
        prefer_huge
            && self
                .page_table
                .mapped_base_pages_in(va.vpn(PageSize::Huge2M))
                == 0
    }

    /// Allocates the frame for a fault whose page-table half decided
    /// `wants_huge` (see [`fault_wants_huge`](Self::fault_wants_huge)).
    /// A failed huge allocation degrades to a base frame, exactly as the
    /// inline fault path does.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::OutOfMemory`] when no base frame is free
    /// either.
    pub fn allocate_grant(
        phys: &mut PhysicalMemory,
        wants_huge: bool,
    ) -> Result<FaultGrant, HpageError> {
        if wants_huge {
            if let Ok(huge) = phys.alloc_huge(false) {
                return Ok(FaultGrant::Huge(huge.pfn));
            }
        }
        Ok(FaultGrant::Base(phys.alloc_base()?))
    }

    /// Installs a [`FaultGrant`] for the fault at `va`: maps the page (or
    /// the whole PMD region for a huge grant) and updates fault stats.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvalidRemap`] if the grant conflicts with
    /// an existing mapping (cannot happen when the grant was allocated
    /// for this fault under the documented protocol).
    pub fn install_grant(
        &mut self,
        va: VirtAddr,
        grant: FaultGrant,
    ) -> Result<FaultOutcome, HpageError> {
        debug_assert!(
            self.page_table.translate(va).is_none(),
            "fault on mapped va"
        );
        self.stats.pages_touched += 1;
        match grant {
            FaultGrant::Huge(pfn) => {
                let region = va.vpn(PageSize::Huge2M);
                self.page_table.map(region, pfn)?;
                self.stats.huge_faults += 1;
                Ok(FaultOutcome::Huge(Translation { vpn: region, pfn }))
            }
            FaultGrant::Base(pfn) => {
                let vpn = va.vpn(PageSize::Base4K);
                self.page_table.map(vpn, pfn)?;
                self.stats.base_faults += 1;
                Ok(FaultOutcome::Base(Translation { vpn, pfn }))
            }
        }
    }

    /// Promotes `region` to a huge page: allocates a 2 MiB frame
    /// (compacting if allowed), collapses the region's base mappings into
    /// one PMD leaf, and frees the old base frames. `now` is the
    /// simulation timestamp recorded for demotion bookkeeping.
    ///
    /// # Errors
    ///
    /// * [`HpageError::InvalidRemap`] — the region is already huge.
    /// * [`HpageError::Unmapped`] — nothing is mapped in the region.
    /// * [`HpageError::OutOfMemory`] — no huge frame available.
    pub fn promote(
        &mut self,
        region: Vpn,
        allow_compaction: bool,
        now: u64,
        phys: &mut PhysicalMemory,
    ) -> Result<PromotionOutcome, HpageError> {
        if self.page_table.is_huge_mapped(region) {
            return Err(HpageError::InvalidRemap {
                reason: format!("{region} is already huge"),
            });
        }
        if self.page_table.mapped_base_pages_in(region) == 0 {
            return Err(HpageError::Unmapped {
                addr: region.base().raw(),
            });
        }
        let huge = phys.alloc_huge(allow_compaction)?;
        let old = self.page_table.promote_2m(region, huge.pfn)?;
        for pfn in &old {
            phys.free_base(*pfn)?;
        }
        self.promoted.insert(
            region.index(),
            PromotionRecord {
                at: now,
                pages_before: old.len() as u64,
            },
        );
        self.stats.promotions += 1;
        Ok(PromotionOutcome {
            region,
            pages_migrated: huge.pages_migrated,
            pages_collapsed: old.len() as u64,
        })
    }

    /// Promotes an entire 1 GiB region to a gigantic page (§3.2.3): the
    /// region's mix of base and 2 MiB mappings is collectively replaced
    /// by one PUD leaf. Frames are released back to physical memory.
    ///
    /// # Errors
    ///
    /// * [`HpageError::OutOfMemory`] — no aligned gigabyte could be freed.
    /// * [`HpageError::InvalidRemap`] / [`HpageError::Unmapped`] — see
    ///   [`hpage_tlb::PageTable::promote_1g`].
    pub fn promote_1g(
        &mut self,
        region: Vpn,
        allow_compaction: bool,
        now: u64,
        phys: &mut PhysicalMemory,
    ) -> Result<PromotionOutcome, HpageError> {
        if region.size() != PageSize::Huge1G {
            return Err(HpageError::InvalidRemap {
                reason: "promote_1g requires a 1GB region".into(),
            });
        }
        if self.page_table.translate(region.base()).map(|t| t.size()) == Some(PageSize::Huge1G) {
            return Err(HpageError::InvalidRemap {
                reason: format!("{region} is already a 1GB page"),
            });
        }
        let giant = phys.alloc_giant(allow_compaction)?;
        let (bases, huges) = match self.page_table.promote_1g(region, giant.pfn) {
            Ok(freed) => freed,
            Err(e) => {
                phys.free_giant(giant.pfn)?;
                return Err(e);
            }
        };
        let collapsed = bases.len() as u64 + 512 * huges.len() as u64;
        for pfn in bases {
            phys.free_base(pfn)?;
        }
        for pfn in huges {
            phys.free_huge(pfn)?;
        }
        // Constituent 2MB promotions are superseded.
        for sub in region.split(PageSize::Huge2M) {
            self.promoted.remove(&sub.index());
        }
        let _ = now;
        self.stats.promotions += 1;
        Ok(PromotionOutcome {
            region,
            pages_migrated: giant.pages_migrated,
            pages_collapsed: collapsed,
        })
    }

    /// Demotes a huge `region` back to base pages. The data stays
    /// resident: the huge frame is split in place into 512 base frames.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::Unmapped`] if the region is not huge-mapped.
    pub fn demote(&mut self, region: Vpn, phys: &mut PhysicalMemory) -> Result<(), HpageError> {
        if !self.page_table.is_huge_mapped(region) {
            return Err(HpageError::Unmapped {
                addr: region.base().raw(),
            });
        }
        // Split the frame first so the PFNs exist before remapping.
        let t = self.page_table.translate(region.base()).ok_or_else(|| {
            HpageError::InvariantViolation {
                what: format!("huge-mapped region {region} has no translation"),
            }
        })?;
        let frames = phys.split_huge_in_place(t.pfn)?;
        self.page_table.demote_2m(region, &frames)?;
        self.promoted.remove(&region.index());
        self.stats.demotions += 1;
        Ok(())
    }

    /// Demotes a huge `region` and reclaims its bloat: the base pages
    /// that were only made resident by the promotion's collapse (beyond
    /// the `pages_before` the application had actually faulted) are
    /// unmapped and their frames freed. This is the HawkEye-style
    /// bloat-recovery path the degraded engine takes under memory
    /// pressure. Returns the bytes reclaimed.
    ///
    /// Frames are fungible in this model, so *which* of the region's
    /// pages survive is an approximation: the first `pages_before` pages
    /// stay mapped (a page the workload touches later simply refaults).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`demote`](Self::demote).
    pub fn demote_and_reclaim(
        &mut self,
        region: Vpn,
        phys: &mut PhysicalMemory,
    ) -> Result<u64, HpageError> {
        let pages_before = self
            .promoted
            .get(&region.index())
            .map(|rec| rec.pages_before)
            .unwrap_or(512);
        self.demote(region, phys)?;
        let mut reclaimed = 0u64;
        for page in region.split(PageSize::Base4K).skip(pages_before as usize) {
            let pfn = self.page_table.unmap(page)?;
            phys.free_base(pfn)?;
            reclaimed += PageSize::Base4K.bytes();
        }
        Ok(reclaimed)
    }

    /// Whether `region` was promoted by the OS (as opposed to faulted in
    /// huge or still base-mapped).
    pub fn is_promoted(&self, region: Vpn) -> bool {
        self.promoted.contains_key(&region.index())
    }

    /// Resident bytes: memory currently committed to this address space
    /// (base pages + whole huge pages).
    pub fn resident_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for region in self.page_table.mapped_2m_regions() {
            if self.page_table.is_huge_mapped(region) {
                bytes += PageSize::Huge2M.bytes();
            } else {
                bytes += self.page_table.mapped_base_pages_in(region) * PageSize::Base4K.bytes();
            }
        }
        bytes
    }

    /// Memory bloat: resident bytes beyond what faults actually touched
    /// (§1: "aggressive use of huge pages can bloat an application's
    /// memory footprint"). Promotions of touched regions do not count as
    /// bloat reduction/increase of touched pages — bloat measures
    /// residency the application never asked for.
    pub fn bloat_bytes(&self) -> u64 {
        self.resident_bytes()
            .saturating_sub(self.stats.pages_touched * PageSize::Base4K.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB2: u64 = PageSize::Huge2M.bytes();

    fn setup() -> (AddressSpace, PhysicalMemory) {
        (
            AddressSpace::new(ProcessId(1)),
            PhysicalMemory::new(16 * MB2),
        )
    }

    fn region(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Huge2M)
    }

    #[test]
    fn base_fault_maps_page() {
        let (mut a, mut pm) = setup();
        let va = VirtAddr::new(0x40_0000);
        let out = a.fault(va, false, &mut pm).unwrap();
        assert!(matches!(out, FaultOutcome::Base(_)));
        assert_eq!(a.page_table().mapping_size(va), Some(PageSize::Base4K));
        assert_eq!(a.stats().base_faults, 1);
        assert_eq!(pm.free_frames(), 16 * 512 - 1);
    }

    #[test]
    fn huge_fault_maps_region() {
        let (mut a, mut pm) = setup();
        let va = VirtAddr::new(0x40_1234);
        let out = a.fault(va, true, &mut pm).unwrap();
        assert!(matches!(out, FaultOutcome::Huge(_)));
        assert_eq!(a.page_table().mapping_size(va), Some(PageSize::Huge2M));
        // The whole region translates, not just the faulting page.
        assert!(a.page_table().translate(VirtAddr::new(0x40_0000)).is_some());
        assert_eq!(a.stats().huge_faults, 1);
    }

    #[test]
    fn huge_fault_skips_partially_mapped_regions() {
        // Linux's THP fault path requires an empty PMD range: once a
        // region holds base pages, further faults in it stay base even
        // when huge frames are available.
        let (mut a, mut pm) = setup();
        let r = region(32);
        a.fault(r.base(), false, &mut pm).unwrap(); // base page first
        let out = a.fault(r.base().offset(0x1000), true, &mut pm).unwrap();
        assert!(matches!(out, FaultOutcome::Base(_)));
        assert!(!a.page_table().is_huge_mapped(r));
    }

    #[test]
    fn huge_fault_falls_back_when_no_huge_frame() {
        let mut a = AddressSpace::new(ProcessId(1));
        let mut pm = PhysicalMemory::new(2 * MB2);
        pm.fragment(100, 1); // no huge-capable blocks
        let out = a.fault(VirtAddr::new(0x40_0000), true, &mut pm).unwrap();
        assert!(matches!(out, FaultOutcome::Base(_)));
    }

    #[test]
    fn promote_collapses_and_frees_base_frames() {
        let (mut a, mut pm) = setup();
        let r = region(32);
        for page in r.split(PageSize::Base4K).take(20) {
            a.fault(page.base(), false, &mut pm).unwrap();
        }
        let free_before = pm.free_frames();
        let out = a.promote(r, true, 123, &mut pm).unwrap();
        assert_eq!(out.pages_collapsed, 20);
        assert!(a.is_promoted(r));
        assert_eq!(a.promoted_regions(), vec![(r, 123)]);
        // 20 base frames returned, 512 consumed by the huge frame.
        assert_eq!(pm.free_frames(), free_before + 20 - 512);
        assert!(a.page_table().is_huge_mapped(r));
    }

    #[test]
    fn promote_errors() {
        let (mut a, mut pm) = setup();
        let r = region(32);
        assert!(matches!(
            a.promote(r, true, 0, &mut pm),
            Err(HpageError::Unmapped { .. })
        ));
        a.fault(r.base(), true, &mut pm).unwrap();
        assert!(matches!(
            a.promote(r, true, 0, &mut pm),
            Err(HpageError::InvalidRemap { .. })
        ));
    }

    #[test]
    fn promote_oom_when_fragmented() {
        let mut a = AddressSpace::new(ProcessId(1));
        let mut pm = PhysicalMemory::new(4 * MB2);
        pm.fragment(100, 1);
        let r = region(32);
        a.fault(r.base(), false, &mut pm).unwrap();
        assert!(matches!(
            a.promote(r, true, 0, &mut pm),
            Err(HpageError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn demote_splits_in_place() {
        let (mut a, mut pm) = setup();
        let r = region(32);
        a.fault(r.base(), false, &mut pm).unwrap();
        a.promote(r, true, 5, &mut pm).unwrap();
        a.demote(r, &mut pm).unwrap();
        assert!(!a.is_promoted(r));
        assert!(!a.page_table().is_huge_mapped(r));
        assert_eq!(a.page_table().mapped_base_pages_in(r), 512);
        assert_eq!(a.stats().demotions, 1);
        // Demoting again fails.
        assert!(a.demote(r, &mut pm).is_err());
    }

    #[test]
    fn demote_then_repromote() {
        let (mut a, mut pm) = setup();
        let r = region(32);
        a.fault(r.base(), false, &mut pm).unwrap();
        a.promote(r, true, 1, &mut pm).unwrap();
        a.demote(r, &mut pm).unwrap();
        let out = a.promote(r, true, 2, &mut pm).unwrap();
        assert_eq!(out.pages_collapsed, 512);
        assert!(a.is_promoted(r));
    }

    #[test]
    fn promote_1g_collapses_region() {
        let mut a = AddressSpace::new(ProcessId(1));
        // 3 GiB of memory: room for one aligned clean gigabyte plus data.
        let mut pm = PhysicalMemory::new(3 << 30);
        let giant = Vpn::new(8, PageSize::Huge1G);
        let subs: Vec<Vpn> = giant.split(PageSize::Huge2M).collect();
        // Fault some base pages and promote one subregion to 2MB first.
        a.fault(subs[0].base(), false, &mut pm).unwrap();
        a.fault(subs[1].base(), false, &mut pm).unwrap();
        a.promote(subs[0], true, 1, &mut pm).unwrap();
        assert!(a.is_promoted(subs[0]));
        let out = a.promote_1g(giant, true, 2, &mut pm).unwrap();
        assert_eq!(out.pages_collapsed, 512 + 1);
        assert_eq!(
            a.page_table().mapping_size(giant.base()),
            Some(PageSize::Huge1G)
        );
        // The superseded 2MB promotion record is gone.
        assert!(!a.is_promoted(subs[0]));
        // Promoting again fails.
        assert!(a.promote_1g(giant, true, 3, &mut pm).is_err());
    }

    #[test]
    fn promote_1g_oom_rolls_back_nothing() {
        let mut a = AddressSpace::new(ProcessId(1));
        let mut pm = PhysicalMemory::new(64 * MB2); // < 1 GiB
        let giant = Vpn::new(8, PageSize::Huge1G);
        a.fault(giant.base(), false, &mut pm).unwrap();
        assert!(matches!(
            a.promote_1g(giant, true, 0, &mut pm),
            Err(HpageError::OutOfMemory { .. })
        ));
        // Mapping intact.
        assert_eq!(
            a.page_table().mapping_size(giant.base()),
            Some(PageSize::Base4K)
        );
    }

    #[test]
    fn bloat_measures_untouched_residency() {
        let (mut a, mut pm) = setup();
        // Greedy huge fault: one touch commits 2 MiB.
        a.fault(VirtAddr::new(0x40_0000), true, &mut pm).unwrap();
        assert_eq!(a.stats().pages_touched, 1);
        assert_eq!(a.resident_bytes(), PageSize::Huge2M.bytes());
        assert_eq!(
            a.bloat_bytes(),
            PageSize::Huge2M.bytes() - PageSize::Base4K.bytes()
        );
        // Base faults commit exactly what is touched: zero bloat.
        let (mut b, mut pm2) = setup();
        for i in 0..10u64 {
            b.fault(VirtAddr::new(0x40_0000 + i * 0x1000), false, &mut pm2)
                .unwrap();
        }
        assert_eq!(b.bloat_bytes(), 0);
        // Promotion of a sparsely-touched region creates bloat too.
        b.promote(region(2), true, 0, &mut pm2).unwrap();
        assert_eq!(
            b.bloat_bytes(),
            PageSize::Huge2M.bytes() - 10 * PageSize::Base4K.bytes()
        );
    }

    #[test]
    fn huge_regions_lists_both_faulted_and_promoted() {
        let (mut a, mut pm) = setup();
        a.fault(region(10).base(), true, &mut pm).unwrap(); // faulted huge
        a.fault(region(20).base(), false, &mut pm).unwrap();
        a.promote(region(20), true, 0, &mut pm).unwrap(); // promoted
        let regions = a.huge_regions();
        assert_eq!(regions, vec![region(10), region(20)]);
        assert!(!a.is_promoted(region(10)));
        assert!(a.is_promoted(region(20)));
    }
}
