//! The promotion ledger: predicted-vs-realized accounting for every
//! huge-page promotion.
//!
//! The paper's central claim is that the PCC ranks promotion candidates
//! by *predicted* walk savings (its frequency counter ≈ walks the region
//! caused last interval). This ledger closes the loop: at decision time
//! it records the prediction, and over subsequent intervals it measures
//! how many walks the region actually caused once huge-mapped. The gap
//! between the two is the policy's prediction error — surfaced per
//! region as an attribution table and per run as a single
//! `prediction_accuracy` statistic.
//!
//! Time is measured in promotion intervals and walk counts, never wall
//! clock, so ledger tables of a fixed-seed run are byte-stable.

use hpage_types::{FxHashMap, ProcessId, Vpn};

/// Map of per-interval walk counts keyed by `(process, region index)` —
/// the measurement the simulator feeds to
/// [`PromotionLedger::observe_interval`] at each boundary.
pub type RegionWalks = FxHashMap<(u32, u64), u64>;

/// One promoted region's predicted-vs-realized record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntry {
    /// The owning process.
    pub process: ProcessId,
    /// The promoted 2 MiB region.
    pub region: Vpn,
    /// Interval index at which the promotion happened.
    pub promoted_interval: u64,
    /// Simulation time (total accesses) of the promotion.
    pub promoted_at: u64,
    /// The policy's predicted per-interval walk savings at decision
    /// time (the PCC frequency counter; 0 for non-predictive policies).
    pub predicted_walks: u64,
    /// Walks the region caused in the interval *before* promotion — the
    /// measured baseline the prediction approximates.
    pub walks_before: u64,
    /// Intervals observed since promotion (while still huge-mapped).
    pub intervals_observed: u64,
    /// Total walks the region caused across those observed intervals.
    pub walks_after: u64,
    /// First interval count at which the region's walk rate fell to
    /// half its pre-promotion baseline, if it ever did — the promotion's
    /// latency-to-benefit.
    pub intervals_to_benefit: Option<u64>,
    /// Interval at which the region was demoted, if it was.
    pub demoted_interval: Option<u64>,
}

impl LedgerEntry {
    /// Realized per-interval walk savings: the pre-promotion baseline
    /// minus the post-promotion average, floored at zero (a promotion
    /// cannot "cost" walks in this model, but a cooling region can look
    /// like it did).
    pub fn realized_walks_saved(&self) -> f64 {
        if self.intervals_observed == 0 {
            return 0.0;
        }
        let after = self.walks_after as f64 / self.intervals_observed as f64;
        (self.walks_before as f64 - after).max(0.0)
    }
}

/// Per-run rollup of a [`PromotionLedger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerSummary {
    /// Promotions recorded.
    pub promotions: u64,
    /// Of those, how many were later demoted.
    pub demotions: u64,
    /// Intervals the ledger observed.
    pub intervals: u64,
    /// Sum of predicted per-interval walk savings over scored entries.
    pub total_predicted: u64,
    /// Sum of realized per-interval walk savings over scored entries.
    pub total_realized: f64,
    /// Agreement between prediction and realization in `[0, 1]`:
    /// `Σ min(predicted, realized) / Σ max(predicted, realized)` over
    /// entries observed for at least one interval. Defined as 1.0 when
    /// nothing was scored (no promotions, or none observed), so the
    /// stat is always finite.
    pub prediction_accuracy: f64,
}

/// Records every promotion's predicted benefit and measures the
/// realized benefit over subsequent intervals.
///
/// Driving protocol (the simulator follows it at each boundary):
///
/// 1. [`observe_interval`](Self::observe_interval) with the walk counts
///    of the interval that just ended — scores open entries and becomes
///    the "walks before" baseline for promotions decided *now*;
/// 2. [`record_promotion`](Self::record_promotion) /
///    [`record_demotion`](Self::record_demotion) for each decision the
///    policy makes this boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromotionLedger {
    entries: Vec<LedgerEntry>,
    /// Open (still huge-mapped) entries by `(process, region index)`.
    open: FxHashMap<(u32, u64), usize>,
    /// Walk counts from the most recently observed interval.
    last_walks: RegionWalks,
    /// Intervals observed so far.
    intervals: u64,
}

impl PromotionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores the interval that just ended: every open entry accrues
    /// the walks its region caused (0 if the region went quiet), and
    /// `walks` becomes the baseline for promotions decided at this
    /// boundary.
    pub fn observe_interval(&mut self, walks: &RegionWalks) {
        self.intervals += 1;
        for (&key, &idx) in &self.open {
            let e = &mut self.entries[idx];
            let w = walks.get(&key).copied().unwrap_or(0);
            e.walks_after += w;
            e.intervals_observed += 1;
            if e.intervals_to_benefit.is_none() && w * 2 <= e.walks_before {
                e.intervals_to_benefit = Some(e.intervals_observed);
            }
        }
        self.last_walks = walks.clone();
    }

    /// Records a promotion decided at the current boundary. `at` is
    /// simulation time in accesses; `predicted_walks` is the policy's
    /// predicted per-interval walk savings (0 for non-predictive
    /// policies — such entries still get realized accounting but score
    /// a prediction of zero).
    pub fn record_promotion(
        &mut self,
        process: ProcessId,
        region: Vpn,
        at: u64,
        predicted_walks: u64,
    ) {
        let key = (process.0, region.index());
        let walks_before = self.last_walks.get(&key).copied().unwrap_or(0);
        let idx = self.entries.len();
        self.entries.push(LedgerEntry {
            process,
            region,
            promoted_interval: self.intervals,
            promoted_at: at,
            predicted_walks,
            walks_before,
            intervals_observed: 0,
            walks_after: 0,
            intervals_to_benefit: None,
            demoted_interval: None,
        });
        self.open.insert(key, idx);
    }

    /// Closes the entry for a region demoted at the current boundary.
    /// Unknown regions (never promoted under this ledger) are ignored.
    pub fn record_demotion(&mut self, process: ProcessId, region: Vpn) {
        if let Some(idx) = self.open.remove(&(process.0, region.index())) {
            self.entries[idx].demoted_interval = Some(self.intervals);
        }
    }

    /// All entries, in promotion order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Entries still huge-mapped (promoted, not yet demoted), in
    /// promotion order.
    pub fn open_entries(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.entries.iter().filter(|e| e.demoted_interval.is_none())
    }

    /// Intervals observed so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of recorded promotions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no promotion was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rolls the ledger up into the per-run summary.
    pub fn summary(&self) -> LedgerSummary {
        let mut total_predicted = 0u64;
        let mut total_realized = 0.0f64;
        let mut agree = 0.0f64;
        let mut span = 0.0f64;
        let mut demotions = 0u64;
        for e in &self.entries {
            if e.demoted_interval.is_some() {
                demotions += 1;
            }
            if e.intervals_observed == 0 {
                continue; // promoted at the final boundary: nothing measured
            }
            let predicted = e.predicted_walks as f64;
            let realized = e.realized_walks_saved();
            total_predicted += e.predicted_walks;
            total_realized += realized;
            agree += predicted.min(realized);
            span += predicted.max(realized);
        }
        let prediction_accuracy = if span > 0.0 { agree / span } else { 1.0 };
        LedgerSummary {
            promotions: self.entries.len() as u64,
            demotions,
            intervals: self.intervals,
            total_predicted,
            total_realized,
            prediction_accuracy,
        }
    }

    /// Renders the attribution table: one aligned row per promotion,
    /// followed by the summary line. Deterministic for a fixed run.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "process  region     interval  predicted  before  after/ivl  realized  \
             ttb  demoted\n",
        );
        for e in &self.entries {
            let after_per_ivl = if e.intervals_observed == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", e.walks_after as f64 / e.intervals_observed as f64)
            };
            let ttb = e
                .intervals_to_benefit
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into());
            let demoted = e
                .demoted_interval
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<7}  {:<9}  {:<8}  {:<9}  {:<6}  {:<9}  {:<8.1}  {:<3}  {}\n",
                e.process.0,
                e.region.index(),
                e.promoted_interval,
                e.predicted_walks,
                e.walks_before,
                after_per_ivl,
                e.realized_walks_saved(),
                ttb,
                demoted
            ));
        }
        let s = self.summary();
        out.push_str(&format!(
            "promotions: {}  demotions: {}  intervals: {}  predicted: {}  realized: {:.1}\n\
             prediction_accuracy: {:.6}\n",
            s.promotions,
            s.demotions,
            s.intervals,
            s.total_predicted,
            s.total_realized,
            s.prediction_accuracy
        ));
        out
    }

    /// Renders the ledger as JSON Lines: one `"ledger"` record per
    /// entry, then one `"ledger_summary"` record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let ttb = e
                .intervals_to_benefit
                .map(|t| t.to_string())
                .unwrap_or_else(|| "null".into());
            let demoted = e
                .demoted_interval
                .map(|d| d.to_string())
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "{{\"type\":\"ledger\",\"process\":{},\"region\":{},\"interval\":{},\
                 \"at\":{},\"predicted_walks\":{},\"walks_before\":{},\
                 \"intervals_observed\":{},\"walks_after\":{},\"realized\":{:.6},\
                 \"intervals_to_benefit\":{},\"demoted_interval\":{}}}\n",
                e.process.0,
                e.region.index(),
                e.promoted_interval,
                e.promoted_at,
                e.predicted_walks,
                e.walks_before,
                e.intervals_observed,
                e.walks_after,
                e.realized_walks_saved(),
                ttb,
                demoted
            ));
        }
        let s = self.summary();
        out.push_str(&format!(
            "{{\"type\":\"ledger_summary\",\"promotions\":{},\"demotions\":{},\
             \"intervals\":{},\"total_predicted\":{},\"total_realized\":{:.6},\
             \"prediction_accuracy\":{:.6}}}\n",
            s.promotions,
            s.demotions,
            s.intervals,
            s.total_predicted,
            s.total_realized,
            s.prediction_accuracy
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::PageSize;

    fn region(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Huge2M)
    }

    fn walks(pairs: &[((u32, u64), u64)]) -> RegionWalks {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let mut l = PromotionLedger::new();
        // Interval 0: region 5 causes 40 walks.
        l.observe_interval(&walks(&[((0, 5), 40)]));
        // Policy predicts 40 and promotes; the region then goes fully
        // quiet (the huge mapping absorbed every walk).
        l.record_promotion(ProcessId(0), region(5), 1_000, 40);
        l.observe_interval(&walks(&[]));
        l.observe_interval(&walks(&[]));
        let e = l.entries()[0];
        assert_eq!(e.walks_before, 40);
        assert_eq!(e.intervals_observed, 2);
        assert_eq!(e.realized_walks_saved(), 40.0);
        assert_eq!(e.intervals_to_benefit, Some(1));
        let s = l.summary();
        assert_eq!(s.prediction_accuracy, 1.0);
        assert_eq!(s.total_predicted, 40);
    }

    #[test]
    fn overprediction_lowers_accuracy() {
        let mut l = PromotionLedger::new();
        l.observe_interval(&walks(&[((0, 5), 40)]));
        // Predicts 40 saved, but the region keeps walking 30/interval:
        // realized = 40 - 30 = 10, accuracy = 10/40.
        l.record_promotion(ProcessId(0), region(5), 1_000, 40);
        l.observe_interval(&walks(&[((0, 5), 30)]));
        let s = l.summary();
        assert_eq!(s.prediction_accuracy, 0.25);
        assert_eq!(l.entries()[0].intervals_to_benefit, None);
    }

    #[test]
    fn empty_and_unobserved_ledgers_score_finite_one() {
        // No promotions at all.
        assert_eq!(PromotionLedger::new().summary().prediction_accuracy, 1.0);
        // A promotion at the very last boundary is never observed and
        // must not poison the stat.
        let mut l = PromotionLedger::new();
        l.observe_interval(&walks(&[((0, 1), 9)]));
        l.record_promotion(ProcessId(0), region(1), 500, 9);
        let s = l.summary();
        assert_eq!(s.promotions, 1);
        assert!(s.prediction_accuracy.is_finite());
        assert_eq!(s.prediction_accuracy, 1.0);
    }

    #[test]
    fn demotion_closes_the_entry() {
        let mut l = PromotionLedger::new();
        l.observe_interval(&walks(&[((0, 7), 12)]));
        l.record_promotion(ProcessId(0), region(7), 100, 12);
        l.observe_interval(&walks(&[((0, 7), 2)]));
        l.record_demotion(ProcessId(0), region(7));
        assert_eq!(l.entries()[0].demoted_interval, Some(2));
        assert_eq!(l.open_entries().count(), 0);
        // Later intervals no longer accrue to the closed entry.
        l.observe_interval(&walks(&[((0, 7), 99)]));
        assert_eq!(l.entries()[0].walks_after, 2);
        assert_eq!(l.summary().demotions, 1);
        // Demoting an unknown region is a no-op.
        l.record_demotion(ProcessId(3), region(42));
    }

    #[test]
    fn cold_promotion_has_zero_baseline() {
        let mut l = PromotionLedger::new();
        l.observe_interval(&walks(&[]));
        // Promoted without ever appearing in the walk map (e.g. a THP
        // fault-time promotion): baseline 0, realized 0.
        l.record_promotion(ProcessId(1), region(3), 50, 0);
        l.observe_interval(&walks(&[]));
        let e = l.entries()[0];
        assert_eq!(e.walks_before, 0);
        assert_eq!(e.realized_walks_saved(), 0.0);
        // 0-vs-0 contributes nothing to the span; accuracy stays 1.
        assert_eq!(l.summary().prediction_accuracy, 1.0);
    }

    #[test]
    fn renders_are_deterministic_and_well_formed() {
        let mut l = PromotionLedger::new();
        l.observe_interval(&walks(&[((0, 5), 40), ((1, 9), 8)]));
        l.record_promotion(ProcessId(0), region(5), 1_000, 38);
        l.record_promotion(ProcessId(1), region(9), 1_000, 8);
        l.observe_interval(&walks(&[((1, 9), 8)]));
        l.record_demotion(ProcessId(1), region(9));
        let table = l.render_table();
        assert_eq!(table, l.render_table());
        assert!(table.contains("prediction_accuracy: "));
        assert_eq!(table.lines().count(), 1 + 2 + 2, "header, 2 rows, summary");
        let jsonl = l.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"type\":\"ledger_summary\""));
        assert!(jsonl.contains("\"prediction_accuracy\":"));
        // Entries render in promotion order regardless of map order.
        let first = jsonl.lines().next().unwrap();
        assert!(first.contains("\"region\":5"), "{first}");
    }
}
