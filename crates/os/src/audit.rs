//! OS-state invariant auditor.
//!
//! Under fault injection (and in chaos property tests) the simulator needs
//! a ground truth that the OS model has not silently corrupted itself. The
//! [`Auditor`] cross-checks, at interval boundaries:
//!
//! * **Frame accounting** — the frames [`PhysicalMemory`] says are in use
//!   equal the frames reachable from every address space's page table,
//!   plus a fixed *background* residue (the anonymous pages planted by
//!   [`PhysicalMemory::fragment`], which no space owns).
//! * **Huge-block accounting** — blocks marked huge in physical memory
//!   match the huge-mapped 2 MiB regions across all page tables (a 1 GiB
//!   leaf counts as its 512 constituent regions).
//! * **Per-block invariants** — no block is simultaneously huge and
//!   base-occupied, huge and unmovable, or over capacity.
//! * **TLB coherence** — after shootdowns, every translation still
//!   resident in a core's TLB hierarchy matches what that core's current
//!   page table would return. A stale entry means a shootdown was lost.
//! * **PCC coherence** — no per-core PCC still tracks a region that has
//!   been promoted (shootdowns are broadcast to all PCC copies, §3.3).
//! * **Counter consistency** — derived per-space counters agree with the
//!   page table they summarize (bloat never exceeds residency).
//!
//! Violations are returned as typed values, never panics: the auditor is
//! itself exercised under injected faults and must not take the simulation
//! down with it.
//!
//! [`PhysicalMemory`]: crate::PhysicalMemory
//! [`PhysicalMemory::fragment`]: crate::PhysicalMemory::fragment

use crate::engine::OsState;
use hpage_pcc::PccBank;
use hpage_tlb::TlbHierarchy;
use hpage_types::{CoreId, PageSize, Vpn, BASE_PAGES_PER_2M};
use std::fmt;

/// One violated invariant, with enough context to diagnose it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// Used frames in physical memory do not equal space-mapped frames
    /// plus the background residue captured at the last
    /// [`Auditor::rebase`].
    FrameAccounting {
        /// Frames the page tables (plus background) account for.
        expected_used: u64,
        /// Frames physical memory reports as used.
        actual_used: u64,
    },
    /// `total_frames != free_frames + used_frames`.
    TotalBalance {
        /// Total frames in the machine.
        total: u64,
        /// Free frames reported.
        free: u64,
        /// Used frames reported.
        used: u64,
    },
    /// Blocks marked huge do not match huge-mapped regions.
    HugeAccounting {
        /// Blocks physical memory has marked huge.
        phys_blocks: u64,
        /// Huge-mapped 2 MiB regions across all address spaces.
        mapped_regions: u64,
    },
    /// A per-block occupancy invariant failed (see
    /// [`PhysicalMemory::check_block_invariants`]).
    ///
    /// [`PhysicalMemory::check_block_invariants`]: crate::PhysicalMemory::check_block_invariants
    BlockInvariant {
        /// Description of the broken block.
        what: String,
    },
    /// A TLB still holds a translation the page table no longer backs —
    /// a lost shootdown.
    StaleTlbEntry {
        /// The core whose hierarchy holds the stale entry.
        core: u32,
        /// Description of the stale translation.
        what: String,
    },
    /// A per-core PCC still tracks a region that is huge-mapped, so the
    /// promotion shootdown was not broadcast to it.
    StalePccCandidate {
        /// The core whose PCC holds the stale candidate.
        core: u32,
        /// The stale candidate region.
        region: Vpn,
    },
    /// A core has no process placement, so its TLB/PCC cannot be audited.
    UnplacedCore {
        /// The unplaced core.
        core: u32,
    },
    /// A derived counter disagrees with the structure it summarizes.
    CounterMismatch {
        /// Description of the disagreement.
        what: String,
    },
    /// The promotion ledger disagrees with the page tables: an entry it
    /// considers open is not huge-mapped (or vice versa), so a
    /// promotion or demotion was not recorded.
    LedgerMismatch {
        /// Description of the disagreement.
        what: String,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::FrameAccounting {
                expected_used,
                actual_used,
            } => write!(
                f,
                "frame accounting: page tables account for {expected_used} used frames, \
                 physical memory reports {actual_used}"
            ),
            AuditViolation::TotalBalance { total, free, used } => write!(
                f,
                "frame balance: total {total} != free {free} + used {used}"
            ),
            AuditViolation::HugeAccounting {
                phys_blocks,
                mapped_regions,
            } => write!(
                f,
                "huge accounting: {phys_blocks} blocks marked huge but {mapped_regions} \
                 huge-mapped regions"
            ),
            AuditViolation::BlockInvariant { what } => write!(f, "block invariant: {what}"),
            AuditViolation::StaleTlbEntry { core, what } => {
                write!(f, "stale TLB entry on core {core}: {what}")
            }
            AuditViolation::StalePccCandidate { core, region } => {
                write!(f, "stale PCC candidate on core {core}: {region}")
            }
            AuditViolation::UnplacedCore { core } => {
                write!(f, "core {core} has no process placement")
            }
            AuditViolation::CounterMismatch { what } => write!(f, "counter mismatch: {what}"),
            AuditViolation::LedgerMismatch { what } => write!(f, "ledger mismatch: {what}"),
        }
    }
}

/// Cross-checks [`OsState`] (and optionally TLBs and the PCC bank)
/// against the invariants above.
///
/// The auditor is stateful only in one respect: at construction (and on
/// [`rebase`](Auditor::rebase)) it records how many used base frames are
/// *not* reachable from any page table — the anonymous background pages
/// planted by [`fragment`](crate::PhysicalMemory::fragment). A
/// fragmentation shock mid-run changes that residue, so the simulator
/// rebases the auditor whenever it applies one.
#[derive(Debug, Clone)]
pub struct Auditor {
    background_base_frames: u64,
}

impl Auditor {
    /// Creates an auditor, capturing the current background residue as
    /// the baseline. Call on a consistent state (e.g. right after
    /// [`fragment`](crate::PhysicalMemory::fragment), before any faults).
    pub fn new(os: &OsState) -> Self {
        let mut auditor = Auditor {
            background_base_frames: 0,
        };
        auditor.rebase(os);
        auditor
    }

    /// Re-captures the background residue. Call after any event that
    /// legitimately changes frames outside page-table control (a
    /// fragmentation shock).
    pub fn rebase(&mut self, os: &OsState) {
        self.background_base_frames =
            Self::phys_base_used(os).saturating_sub(Self::space_base_frames(os));
    }

    /// The background residue captured at the last rebase.
    pub fn background_base_frames(&self) -> u64 {
        self.background_base_frames
    }

    /// Base (non-huge) frames physical memory reports as used.
    fn phys_base_used(os: &OsState) -> u64 {
        os.phys
            .used_frames()
            .saturating_sub(BASE_PAGES_PER_2M * os.phys.huge_blocks_in_use())
    }

    /// Base frames reachable from some page table (huge mappings
    /// excluded).
    fn space_base_frames(os: &OsState) -> u64 {
        os.spaces
            .iter()
            .map(|space| {
                let pt = space.page_table();
                pt.mapped_2m_regions()
                    .into_iter()
                    .filter(|&region| !pt.is_huge_mapped(region))
                    .map(|region| pt.mapped_base_pages_in(region))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Huge-mapped 2 MiB regions across all page tables. A 1 GiB leaf
    /// contributes its 512 constituent regions, matching the 512 physical
    /// blocks its giant frame occupies.
    fn space_huge_regions(os: &OsState) -> u64 {
        os.spaces
            .iter()
            .map(|space| {
                let pt = space.page_table();
                pt.mapped_2m_regions()
                    .into_iter()
                    .filter(|&region| pt.is_huge_mapped(region))
                    .count() as u64
            })
            .sum()
    }

    /// Checks physical-memory and address-space invariants. Returns every
    /// violation found (empty when the state is consistent).
    pub fn check(&self, os: &OsState) -> Vec<AuditViolation> {
        let mut violations = Vec::new();

        for what in os.phys.check_block_invariants() {
            violations.push(AuditViolation::BlockInvariant { what });
        }

        let total = os.phys.total_frames();
        let free = os.phys.free_frames();
        let used = os.phys.used_frames();
        if total != free + used {
            violations.push(AuditViolation::TotalBalance { total, free, used });
        }

        let phys_blocks = os.phys.huge_blocks_in_use();
        let mapped_regions = Self::space_huge_regions(os);
        if phys_blocks != mapped_regions {
            violations.push(AuditViolation::HugeAccounting {
                phys_blocks,
                mapped_regions,
            });
        }

        let expected_used = Self::space_base_frames(os)
            .saturating_add(self.background_base_frames)
            .saturating_add(BASE_PAGES_PER_2M * phys_blocks);
        if expected_used != used {
            violations.push(AuditViolation::FrameAccounting {
                expected_used,
                actual_used: used,
            });
        }

        for space in &os.spaces {
            let resident = space.resident_bytes();
            let bloat = space.bloat_bytes();
            if bloat > resident {
                violations.push(AuditViolation::CounterMismatch {
                    what: format!(
                        "{}: bloat {bloat} B exceeds resident {resident} B",
                        space.pid()
                    ),
                });
            }
        }

        violations
    }

    /// Checks every translation resident in each core's TLB hierarchy
    /// against the page table of the process that core runs. `tlbs[i]`
    /// must be core `i`'s hierarchy.
    pub fn check_tlbs(&self, os: &OsState, tlbs: &[TlbHierarchy]) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        for (core, tlb) in tlbs.iter().enumerate() {
            let core_id = CoreId(core as u32);
            let Ok(process) = os.process_of(core_id) else {
                violations.push(AuditViolation::UnplacedCore { core: core as u32 });
                continue;
            };
            let pt = os.spaces[process].page_table();
            for cached in tlb.resident_translations() {
                let live = pt.translate(cached.vpn.base());
                if live != Some(cached) {
                    violations.push(AuditViolation::StaleTlbEntry {
                        core: core as u32,
                        what: match live {
                            Some(now) => format!(
                                "cached {} -> {} but page table maps {} -> {}",
                                cached.vpn, cached.pfn, now.vpn, now.pfn
                            ),
                            None => {
                                format!(
                                    "cached {} -> {} but page is unmapped",
                                    cached.vpn, cached.pfn
                                )
                            }
                        },
                    });
                }
            }
        }
        violations
    }

    /// Checks that no per-core PCC still tracks a huge-mapped region —
    /// promotion shootdowns are broadcast to every PCC copy (§3.3), so a
    /// surviving candidate means the broadcast was lost.
    pub fn check_pcc(&self, os: &OsState, bank: &PccBank) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        for core in 0..bank.cores() {
            let core_id = CoreId(core);
            let Ok(process) = os.process_of(core_id) else {
                violations.push(AuditViolation::UnplacedCore { core });
                continue;
            };
            let pt = os.spaces[process].page_table();
            for candidate in bank.pcc(core_id).iter() {
                if candidate.region.size() != PageSize::Huge2M {
                    continue; // 1 GiB-granularity PCCs audited via 2 MiB sub-regions.
                }
                if pt.is_huge_mapped(candidate.region) {
                    violations.push(AuditViolation::StalePccCandidate {
                        core,
                        region: candidate.region,
                    });
                }
            }
        }
        violations
    }

    /// Cross-checks the promotion ledger against the page tables: every
    /// entry the ledger considers open must be huge-mapped in its
    /// process's space. (The converse — huge-mapped regions missing
    /// from the ledger — is legitimate for fault-time THP promotions
    /// the interval engine never saw, so it is not flagged.)
    pub fn check_ledger(
        &self,
        os: &OsState,
        ledger: &crate::ledger::PromotionLedger,
    ) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        for e in ledger.open_entries() {
            let pid = e.process.0 as usize;
            let Some(space) = os.spaces.get(pid) else {
                violations.push(AuditViolation::LedgerMismatch {
                    what: format!("open entry for unknown process {}", e.process.0),
                });
                continue;
            };
            if !space.page_table().is_huge_mapped(e.region) {
                violations.push(AuditViolation::LedgerMismatch {
                    what: format!(
                        "open entry {} of process {} is not huge-mapped (missed demotion?)",
                        e.region, e.process.0
                    ),
                });
            }
        }
        violations
    }

    /// Runs every check: [`check`](Self::check), plus
    /// [`check_tlbs`](Self::check_tlbs) and
    /// [`check_pcc`](Self::check_pcc) when the caller has those
    /// structures.
    pub fn run(
        &self,
        os: &OsState,
        tlbs: &[TlbHierarchy],
        bank: Option<&PccBank>,
    ) -> Vec<AuditViolation> {
        let mut violations = self.check(os);
        violations.extend(self.check_tlbs(os, tlbs));
        if let Some(bank) = bank {
            violations.extend(self.check_pcc(os, bank));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhysicalMemory;
    use hpage_types::{PccConfig, ProcessId, TlbConfig, VirtAddr};

    const MB2: u64 = PageSize::Huge2M.bytes();

    fn os_with_pages(pages: u64) -> OsState {
        let phys = PhysicalMemory::new(64 * MB2);
        let mut os = OsState::new(phys, 1, vec![0]).unwrap();
        for i in 0..pages {
            os.spaces[0]
                .fault(VirtAddr::new(i * 4096), false, &mut os.phys)
                .unwrap();
        }
        os
    }

    #[test]
    fn clean_state_has_no_violations() {
        let os = os_with_pages(100);
        let auditor = Auditor::new(&os);
        assert!(auditor.check(&os).is_empty());
    }

    #[test]
    fn fragmented_background_is_baselined() {
        let mut phys = PhysicalMemory::new(64 * MB2);
        phys.fragment(50, 7);
        let mut os = OsState::new(phys, 1, vec![0]).unwrap();
        os.spaces[0]
            .fault(VirtAddr::new(0), false, &mut os.phys)
            .unwrap();
        let auditor = Auditor::new(&os);
        assert!(auditor.background_base_frames() > 0);
        assert!(auditor.check(&os).is_empty());
    }

    #[test]
    fn promotion_keeps_accounting_consistent() {
        let mut os = os_with_pages(512);
        let auditor = Auditor::new(&os);
        let region = Vpn::new(0, PageSize::Huge2M);
        os.spaces[0].promote(region, true, 0, &mut os.phys).unwrap();
        assert_eq!(auditor.check(&os), Vec::new());
        os.spaces[0].demote(region, &mut os.phys).unwrap();
        assert_eq!(auditor.check(&os), Vec::new());
    }

    #[test]
    fn leaked_huge_block_is_reported() {
        let mut os = os_with_pages(8);
        let auditor = Auditor::new(&os);
        // A huge block allocated but never mapped anywhere. Frame-level
        // accounting still balances (the 512 frames are genuinely used);
        // the mapping-level cross-check is what catches the leak.
        os.phys.alloc_huge(true).unwrap();
        let violations = auditor.check(&os);
        assert!(violations
            .iter()
            .any(|v| matches!(v, AuditViolation::HugeAccounting { .. })));
    }

    #[test]
    fn leaked_base_frame_is_reported() {
        let mut os = os_with_pages(8);
        let auditor = Auditor::new(&os);
        os.phys.alloc_base().unwrap();
        let violations = auditor.check(&os);
        assert!(violations
            .iter()
            .any(|v| matches!(v, AuditViolation::FrameAccounting { .. })));
        // Display is informative.
        assert!(violations[0].to_string().contains("frame accounting"));
    }

    #[test]
    fn rebase_absorbs_legitimate_background_change() {
        let mut os = os_with_pages(8);
        let mut auditor = Auditor::new(&os);
        os.phys.fragment(30, 11);
        assert!(!auditor.check(&os).is_empty());
        auditor.rebase(&os);
        assert!(auditor.check(&os).is_empty());
    }

    #[test]
    fn stale_tlb_entry_is_reported() {
        let mut os = os_with_pages(4);
        let auditor = Auditor::new(&os);
        let mut tlb = TlbHierarchy::new(TlbConfig::tiny());
        let t = os.spaces[0]
            .page_table()
            .translate(VirtAddr::new(0))
            .unwrap();
        tlb.fill(t);
        assert!(auditor.check_tlbs(&os, &[tlb.clone()]).is_empty());
        // Unmap the page behind the TLB's back: entry goes stale.
        let pfn = os.spaces[0].page_table_mut().unmap(t.vpn).unwrap();
        os.phys.free_base(pfn).unwrap();
        let violations = auditor.check_tlbs(&os, &[tlb]);
        assert!(violations
            .iter()
            .any(|v| matches!(v, AuditViolation::StaleTlbEntry { core: 0, .. })));
    }

    #[test]
    fn stale_pcc_candidate_is_reported() {
        let mut os = os_with_pages(512);
        let auditor = Auditor::new(&os);
        let mut bank = PccBank::new(1, PccConfig::paper_2m(), PageSize::Huge2M);
        let region = Vpn::new(0, PageSize::Huge2M);
        bank.record_walk(CoreId(0), region, true);
        bank.record_walk(CoreId(0), region, true);
        assert!(auditor.check_pcc(&os, &bank).is_empty());
        // Promote without broadcasting the shootdown to the PCC.
        os.spaces[0].promote(region, true, 0, &mut os.phys).unwrap();
        let violations = auditor.check_pcc(&os, &bank);
        assert_eq!(
            violations,
            vec![AuditViolation::StalePccCandidate { core: 0, region }]
        );
        // After the broadcast the PCC is clean again.
        bank.invalidate_all(region);
        assert!(auditor.check_pcc(&os, &bank).is_empty());
    }

    #[test]
    fn unplaced_core_is_reported() {
        let os = os_with_pages(1);
        let auditor = Auditor::new(&os);
        let tlbs = vec![
            TlbHierarchy::new(TlbConfig::tiny()),
            TlbHierarchy::new(TlbConfig::tiny()),
        ];
        let violations = auditor.check_tlbs(&os, &tlbs);
        assert_eq!(violations, vec![AuditViolation::UnplacedCore { core: 1 }]);
    }

    #[test]
    fn ledger_coherence_is_checked() {
        let mut os = os_with_pages(512);
        let auditor = Auditor::new(&os);
        let region = Vpn::new(0, PageSize::Huge2M);
        let mut ledger = crate::PromotionLedger::new();
        ledger.record_promotion(ProcessId(0), region, 0, 10);
        // The ledger thinks the region is huge, but no promotion happened.
        let violations = auditor.check_ledger(&os, &ledger);
        assert!(violations
            .iter()
            .any(|v| matches!(v, AuditViolation::LedgerMismatch { .. })));
        os.spaces[0].promote(region, true, 0, &mut os.phys).unwrap();
        assert!(auditor.check_ledger(&os, &ledger).is_empty());
        // Demotion recorded on both sides: clean again.
        os.spaces[0].demote(region, &mut os.phys).unwrap();
        ledger.record_demotion(ProcessId(0), region);
        assert!(auditor.check_ledger(&os, &ledger).is_empty());
        // An entry for a process the OS does not have.
        ledger.record_promotion(ProcessId(9), region, 0, 1);
        assert!(!auditor.check_ledger(&os, &ledger).is_empty());
    }

    #[test]
    fn run_aggregates_all_checks() {
        let mut os = os_with_pages(16);
        let auditor = Auditor::new(&os);
        let tlbs = vec![TlbHierarchy::new(TlbConfig::tiny())];
        let bank = PccBank::new(1, PccConfig::paper_2m(), PageSize::Huge2M);
        assert!(auditor.run(&os, &tlbs, Some(&bank)).is_empty());
        os.phys.alloc_base().unwrap();
        assert!(!auditor.run(&os, &tlbs, None).is_empty());
    }
}
