//! Huge-page promotion policies: Linux THP (synchronous + khugepaged),
//! HawkEye, and the paper's PCC-driven engine (§3.3, Fig. 4).
//!
//! Every policy implements [`HugePagePolicy`]: the simulator calls
//! [`run_interval`](HugePagePolicy::run_interval) once per promotion
//! interval with the whole OS view ([`OsState`]) and, where applicable,
//! the per-core PCC bank. Policies *select and execute* promotions and
//! report what changed so the simulator can apply TLB shootdowns.

use crate::addrspace::{AddressSpace, PromotionOutcome};
use crate::physmem::PhysicalMemory;
use hpage_pcc::{CoreCandidate, PccBank};
use hpage_types::{
    ConfigError, CoreId, FxHashMap, HpageError, PageSize, ProcessId, PromotionPolicyKind, Vpn,
    BASE_PAGES_PER_2M,
};

/// Shared OS state: physical memory, every process's address space, and
/// the core-to-process placement.
#[derive(Debug)]
pub struct OsState {
    /// Physical memory (system-wide resource).
    pub phys: PhysicalMemory,
    /// One address space per process.
    pub spaces: Vec<AddressSpace>,
    /// `core_process[core] = index into spaces` — which process the core
    /// runs. Multiple cores may map to one process (multithreading).
    pub core_process: Vec<usize>,
}

impl OsState {
    /// Creates OS state for `processes` single address spaces with
    /// `core_process` placement.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::Config`] if `core_process` references a
    /// nonexistent process.
    pub fn new(
        phys: PhysicalMemory,
        processes: u32,
        core_process: Vec<usize>,
    ) -> Result<Self, HpageError> {
        if let Some(&bad) = core_process.iter().find(|&&p| p >= processes as usize) {
            return Err(HpageError::Config(ConfigError::new(format!(
                "core placement references unknown process {bad} (have {processes})"
            ))));
        }
        Ok(OsState {
            phys,
            spaces: (0..processes)
                .map(|i| AddressSpace::new(ProcessId(i)))
                .collect(),
            core_process,
        })
    }

    /// The process index a core runs.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvariantViolation`] if `core` is not
    /// placed.
    pub fn process_of(&self, core: CoreId) -> Result<usize, HpageError> {
        self.core_process
            .get(core.0 as usize)
            .copied()
            .ok_or_else(|| HpageError::InvariantViolation {
                what: format!("core {} has no process placement", core.0),
            })
    }

    /// Total memory bloat across every address space (resident bytes the
    /// application never touched) — the pressure detector's rising-bloat
    /// signal.
    pub fn total_bloat_bytes(&self) -> u64 {
        self.spaces.iter().map(|s| s.bloat_bytes()).sum()
    }
}

/// A cap on how much of the footprint may be promoted — the knob behind
/// the paper's utility curves (huge pages limited to N% of the footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionBudget {
    /// Remaining 2 MiB regions that may still be promoted; `None` is
    /// unlimited.
    pub remaining_regions: Option<u64>,
}

impl PromotionBudget {
    /// Unlimited budget.
    pub const UNLIMITED: PromotionBudget = PromotionBudget {
        remaining_regions: None,
    };

    /// A budget of exactly `regions` promotions.
    pub fn regions(regions: u64) -> Self {
        PromotionBudget {
            remaining_regions: Some(regions),
        }
    }

    /// Budget covering `percent`% of a footprint of `footprint_bytes`,
    /// rounded up so any nonzero percentage allows at least one region
    /// (the paper's 1% of a 10 GB footprint is ~51 regions; at simulated
    /// scales 1% can be fractional).
    pub fn percent_of_footprint(percent: u64, footprint_bytes: u64) -> Self {
        let total_regions = footprint_bytes.div_ceil(PageSize::Huge2M.bytes());
        PromotionBudget::regions((total_regions * percent).div_ceil(100))
    }

    /// Whether at least one promotion is still allowed.
    pub fn available(&self) -> bool {
        self.remaining_regions.map(|r| r > 0).unwrap_or(true)
    }

    fn consume(&mut self) {
        if let Some(r) = &mut self.remaining_regions {
            *r -= 1;
        }
    }
}

/// One successful promotion, with the provenance the promotion ledger
/// needs: who, what, and the policy's predicted benefit at decision
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionRecord {
    /// The owning process.
    pub process: ProcessId,
    /// What the promotion did (region, pages migrated/collapsed).
    pub outcome: PromotionOutcome,
    /// The policy's predicted per-interval walk savings: the PCC
    /// frequency counter for PCC-driven policies, 0 for policies that
    /// rank by something other than walks (THP scan order, HawkEye
    /// coverage, replay).
    pub predicted_walks: u64,
}

/// What a policy changed during one interval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalReport {
    /// Successful promotions.
    pub promotions: Vec<PromotionRecord>,
    /// Demotions performed (to free huge frames under pressure).
    pub demotions: Vec<(ProcessId, Vpn)>,
    /// Regions whose accessed bits were cleared for working-set sampling.
    /// Like Linux's `ptep_clear_flush_young`, clearing must flush the
    /// TLB entry too, or a TLB-resident hot translation would never
    /// re-set the bit and hot data would be misclassified as cold.
    pub sampling_invalidations: Vec<(ProcessId, Vpn)>,
    /// Promotion attempts that failed for lack of a huge frame.
    pub failures: u64,
    /// Whether the interval stopped promoting because the promotion
    /// budget ran out (distinct from `failures`, which count allocation
    /// failures).
    pub budget_exhausted: bool,
    /// Candidates skipped under exponential backoff (degradation mode):
    /// `(process, region, retry_at, consecutive_failures)`.
    pub deferred: Vec<(ProcessId, Vpn, u64, u32)>,
    /// The policy's pressure detector switched on this interval.
    pub pressure_entered: bool,
    /// The policy's pressure detector switched off this interval.
    pub pressure_exited: bool,
    /// Bytes of bloat reclaimed this interval by demote-and-reclaim:
    /// `(process, bytes)` per reclaiming demotion.
    pub bloat_recovered: Vec<(ProcessId, u64)>,
}

impl IntervalReport {
    /// Regions needing a TLB shootdown, in event order (promotions,
    /// demotions, then A-bit sampling flushes).
    pub fn shootdown_regions(&self) -> Vec<(ProcessId, Vpn)> {
        self.promotions
            .iter()
            .map(|r| (r.process, r.outcome.region))
            .chain(self.demotions.iter().copied())
            .chain(self.sampling_invalidations.iter().copied())
            .collect()
    }
}

/// Tuning knobs for graceful degradation under memory pressure and
/// injected faults (currently honored by [`PccPolicy`]; other policies
/// ignore it).
///
/// Two mechanisms are configured here:
///
/// * **Per-region exponential backoff** — a region whose promotion
///   failed is not retried every interval; the retry is deferred by
///   `backoff_base_accesses * 2^(failures-1)` accesses, with the
///   exponent capped at `max_backoff_exponent`.
/// * **Pressure detection** — when cleanly promotable blocks drop to
///   `pressure_enter_free_blocks` or fewer while bloat is not falling,
///   the policy throttles its per-interval promotion count by
///   `throttle_divisor` and demotes up to `demotions_per_interval` cold
///   huge regions (HawkEye-style), reclaiming their untouched tail
///   pages. Pressure exits with hysteresis once free blocks recover to
///   `pressure_exit_free_blocks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationConfig {
    /// Backoff unit, in accesses (the first retry is deferred this far).
    pub backoff_base_accesses: u64,
    /// Cap on the backoff doubling exponent.
    pub max_backoff_exponent: u32,
    /// Enter pressure when `free_huge_capable_blocks` ≤ this.
    pub pressure_enter_free_blocks: u64,
    /// Exit pressure when `free_huge_capable_blocks` ≥ this (hysteresis:
    /// keep it above the enter threshold).
    pub pressure_exit_free_blocks: u64,
    /// Divide `regions_to_promote` by this while under pressure.
    pub throttle_divisor: u32,
    /// Cold huge regions to demote per interval while under pressure.
    pub demotions_per_interval: u32,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            backoff_base_accesses: 50_000,
            max_backoff_exponent: 6,
            pressure_enter_free_blocks: 2,
            pressure_exit_free_blocks: 4,
            throttle_divisor: 4,
            demotions_per_interval: 2,
        }
    }
}

/// A huge-page management policy.
pub trait HugePagePolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Whether page faults should try to allocate a huge page
    /// synchronously (Linux THP's fault path).
    fn fault_prefers_huge(&self) -> bool {
        false
    }

    /// Enables graceful degradation with the given tuning. Policies
    /// without a degradation mode ignore the call (the default).
    fn configure_degradation(&mut self, cfg: DegradationConfig) {
        let _ = cfg;
    }

    /// Runs one promotion interval. `pccs` is `Some` only for
    /// PCC-assisted policies; `now` is the simulation timestamp (in
    /// accesses).
    fn run_interval(
        &mut self,
        os: &mut OsState,
        pccs: Option<&mut PccBank>,
        now: u64,
        budget: &mut PromotionBudget,
    ) -> IntervalReport;
}

/// Shared promotion executor: allocate (with compaction), collapse,
/// invalidate PCC entries. Returns `Ok` outcome, or the error.
fn execute_promotion(
    os: &mut OsState,
    pccs: &mut Option<&mut PccBank>,
    process: usize,
    region: Vpn,
    now: u64,
) -> Result<PromotionOutcome, HpageError> {
    let space = &mut os.spaces[process];
    let outcome = space.promote(region, true, now, &mut os.phys)?;
    // The promotion's TLB shootdown invalidates the region in every PCC
    // (Fig. 4 step C).
    if let Some(bank) = pccs.as_deref_mut() {
        bank.invalidate_all(region);
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------
// Baseline policies
// ---------------------------------------------------------------------

/// 4 KiB pages only: the paper's baseline. Never promotes.
#[derive(Debug, Clone, Default)]
pub struct BasePagesPolicy;

impl HugePagePolicy for BasePagesPolicy {
    fn name(&self) -> &'static str {
        "base-4k"
    }

    fn run_interval(
        &mut self,
        _os: &mut OsState,
        _pccs: Option<&mut PccBank>,
        _now: u64,
        _budget: &mut PromotionBudget,
    ) -> IntervalReport {
        IntervalReport::default()
    }
}

/// All data backed by huge pages at fault time (the paper's "Max. Perf.
/// with THPs" ideal — meaningful on unfragmented memory).
#[derive(Debug, Clone, Default)]
pub struct IdealHugePolicy;

impl HugePagePolicy for IdealHugePolicy {
    fn name(&self) -> &'static str {
        "ideal-2m"
    }

    fn fault_prefers_huge(&self) -> bool {
        true
    }

    fn run_interval(
        &mut self,
        _os: &mut OsState,
        _pccs: Option<&mut PccBank>,
        _now: u64,
        _budget: &mut PromotionBudget,
    ) -> IntervalReport {
        IntervalReport::default()
    }
}

// ---------------------------------------------------------------------
// Linux THP (greedy synchronous + khugepaged)
// ---------------------------------------------------------------------

/// Linux's default THP management (§2.1): greedy huge allocation at page
/// fault time, plus the `khugepaged` daemon asynchronously collapsing
/// base-mapped regions, scanning up to `pages_per_scan` base pages per
/// interval in address order.
#[derive(Debug, Clone)]
pub struct LinuxThpPolicy {
    pages_per_scan: u64,
    /// khugepaged's `max_ptes_none`: a region may be collapsed when at
    /// most this many of its 512 PTEs are unmapped (Linux default 511 —
    /// i.e. one mapped page suffices, the paper's "greedy" behaviour).
    max_ptes_none: u64,
    /// Per-process scan rotor (region index to resume from).
    rotors: FxHashMap<usize, u64>,
}

impl LinuxThpPolicy {
    /// Default khugepaged configuration (4096 pages per scan, as the
    /// paper states — 8 huge-page regions; `max_ptes_none = 511`).
    pub fn new() -> Self {
        LinuxThpPolicy {
            pages_per_scan: 4096,
            max_ptes_none: 511,
            rotors: FxHashMap::default(),
        }
    }

    /// Overrides the khugepaged scan budget.
    #[must_use]
    pub fn with_pages_per_scan(mut self, pages: u64) -> Self {
        self.pages_per_scan = pages;
        self
    }

    /// Overrides `max_ptes_none` (0 = collapse only fully-mapped
    /// regions; 511 = Linux's greedy default).
    ///
    /// # Panics
    ///
    /// Panics if `n > 511`.
    #[must_use]
    pub fn with_max_ptes_none(mut self, n: u64) -> Self {
        assert!(n <= 511, "max_ptes_none is at most 511");
        self.max_ptes_none = n;
        self
    }
}

impl Default for LinuxThpPolicy {
    fn default() -> Self {
        LinuxThpPolicy::new()
    }
}

impl HugePagePolicy for LinuxThpPolicy {
    fn name(&self) -> &'static str {
        "linux-thp"
    }

    fn fault_prefers_huge(&self) -> bool {
        true
    }

    fn run_interval(
        &mut self,
        os: &mut OsState,
        mut pccs: Option<&mut PccBank>,
        now: u64,
        budget: &mut PromotionBudget,
    ) -> IntervalReport {
        let mut report = IntervalReport::default();
        let region_scan_budget = (self.pages_per_scan / BASE_PAGES_PER_2M).max(1);
        let scan_cap = usize::try_from(region_scan_budget).unwrap_or(usize::MAX);
        for p in 0..os.spaces.len() {
            let regions = os.spaces[p].page_table().mapped_2m_regions();
            if regions.is_empty() {
                continue;
            }
            let rotor = self.rotors.entry(p).or_insert(0);
            let start = regions
                .iter()
                .position(|r| r.index() >= *rotor)
                .unwrap_or(0);
            for k in 0..regions.len().min(scan_cap) {
                let region = regions[(start + k) % regions.len()];
                *rotor = region.index() + 1;
                if os.spaces[p].page_table().is_huge_mapped(region) {
                    continue;
                }
                let mapped = os.spaces[p].page_table().mapped_base_pages_in(region);
                if mapped == 0 || BASE_PAGES_PER_2M - mapped > self.max_ptes_none {
                    continue;
                }
                if !budget.available() {
                    report.budget_exhausted = true;
                    return report;
                }
                match execute_promotion(os, &mut pccs, p, region, now) {
                    Ok(out) => {
                        budget.consume();
                        report.promotions.push(PromotionRecord {
                            process: ProcessId(p as u32),
                            outcome: out,
                            predicted_walks: 0,
                        });
                    }
                    Err(HpageError::OutOfMemory { .. } | HpageError::Fault { .. }) => {
                        report.failures += 1;
                        break; // no huge frames; stop scanning this space
                    }
                    Err(_) => {}
                }
            }
        }
        report
    }
}

// ---------------------------------------------------------------------
// HawkEye (ASPLOS'19) — the software state of the art the paper compares
// against
// ---------------------------------------------------------------------

/// HawkEye's access-coverage promotion (§2.2): regions are bucketed by
/// how many of their 512 base pages were accessed during the last
/// measurement interval (bucket 9 = 450–512 covered, bucket 0 = 0–49);
/// promotion drains bucket 9 first. Scanning is budgeted at
/// `pages_per_scan` base pages per interval, which is what starves it
/// relative to the PCC.
#[derive(Debug, Clone)]
pub struct HawkEyePolicy {
    pages_per_scan: u64,
    promotions_per_interval: u64,
    /// buckets[b] holds (process, region) with coverage bucket b.
    buckets: Vec<Vec<(usize, Vpn)>>,
    rotors: FxHashMap<usize, u64>,
}

impl HawkEyePolicy {
    /// Paper-faithful configuration: 4096 pages scanned and at most 8
    /// promotions per interval (the 8 regions one scan covers).
    pub fn new() -> Self {
        HawkEyePolicy {
            pages_per_scan: 4096,
            promotions_per_interval: 8,
            buckets: vec![Vec::new(); 10],
            rotors: FxHashMap::default(),
        }
    }

    /// Overrides the scan budget (pages per interval). HawkEye's
    /// promotion rate is scan-limited (it can only promote what it has
    /// scanned), so the per-interval promotion cap follows the budget.
    #[must_use]
    pub fn with_pages_per_scan(mut self, pages: u64) -> Self {
        self.pages_per_scan = pages;
        self.promotions_per_interval = (pages / BASE_PAGES_PER_2M).max(1);
        self
    }

    /// Coverage bucket for an access-coverage count (0..=512).
    pub fn bucket_of(coverage: u64) -> usize {
        ((coverage / 50) as usize).min(9)
    }

    fn remove_region(&mut self, process: usize, region: Vpn) {
        for b in &mut self.buckets {
            b.retain(|&(p, r)| !(p == process && r == region));
        }
    }
}

impl Default for HawkEyePolicy {
    fn default() -> Self {
        HawkEyePolicy::new()
    }
}

impl HugePagePolicy for HawkEyePolicy {
    fn name(&self) -> &'static str {
        "hawkeye"
    }

    fn run_interval(
        &mut self,
        os: &mut OsState,
        mut pccs: Option<&mut PccBank>,
        now: u64,
        budget: &mut PromotionBudget,
    ) -> IntervalReport {
        let mut report = IntervalReport::default();
        // Phase 1: scan access coverage for the next `pages_per_scan`
        // worth of regions per process, clearing A-bits as we go (the
        // 1-second tracking interval).
        let region_scan_budget = (self.pages_per_scan / BASE_PAGES_PER_2M).max(1);
        let scan_cap = usize::try_from(region_scan_budget).unwrap_or(usize::MAX);
        for p in 0..os.spaces.len() {
            let regions = os.spaces[p].page_table().mapped_2m_regions();
            if regions.is_empty() {
                continue;
            }
            let rotor = *self.rotors.get(&p).unwrap_or(&0);
            let start = regions.iter().position(|r| r.index() >= rotor).unwrap_or(0);
            for k in 0..regions.len().min(scan_cap) {
                let region = regions[(start + k) % regions.len()];
                self.rotors.insert(p, region.index() + 1);
                if os.spaces[p].page_table().is_huge_mapped(region) {
                    continue;
                }
                let coverage = os.spaces[p].page_table().accessed_base_pages_in(region);
                os.spaces[p].page_table_mut().clear_accessed_in(region);
                self.remove_region(p, region);
                if coverage > 0 {
                    self.buckets[Self::bucket_of(coverage)].push((p, region));
                }
            }
        }
        // Phase 2: promote from bucket 9 downward.
        let mut promoted = 0u64;
        'outer: for b in (0..10).rev() {
            while let Some(&(p, region)) = self.buckets[b].first() {
                if promoted >= self.promotions_per_interval || !budget.available() {
                    report.budget_exhausted = !budget.available();
                    break 'outer;
                }
                self.buckets[b].remove(0);
                if os.spaces[p].page_table().is_huge_mapped(region)
                    || os.spaces[p].page_table().mapped_base_pages_in(region) == 0
                {
                    continue;
                }
                match execute_promotion(os, &mut pccs, p, region, now) {
                    Ok(out) => {
                        promoted += 1;
                        budget.consume();
                        report.promotions.push(PromotionRecord {
                            process: ProcessId(p as u32),
                            outcome: out,
                            predicted_walks: 0,
                        });
                    }
                    Err(HpageError::OutOfMemory { .. } | HpageError::Fault { .. }) => {
                        report.failures += 1;
                        // Put it back for a later interval and give up.
                        self.buckets[b].insert(0, (p, region));
                        break 'outer;
                    }
                    Err(_) => {}
                }
            }
        }
        report
    }
}

// ---------------------------------------------------------------------
// The PCC-driven policy (the paper's contribution, §3.3)
// ---------------------------------------------------------------------

/// The paper's OS integration: read the per-core PCC dumps, select up to
/// `regions_to_promote` candidates (highest-frequency or round-robin
/// across PCCs, with optional process bias), promote them, and let the
/// shootdowns invalidate the promoted entries from the PCCs.
#[derive(Debug, Clone)]
pub struct PccPolicy {
    selection: PromotionPolicyKind,
    regions_to_promote: u32,
    bias: Vec<ProcessId>,
    demotion: bool,
    /// Consecutive intervals each promoted region has gone unaccessed,
    /// keyed by (process, region index). A region must stay cold for
    /// [`Self::COLD_STREAK`] intervals before it may be demoted, which
    /// prevents promote/demote thrash.
    cold_streaks: FxHashMap<(usize, u64), u32>,
    /// Degradation mode ([`DegradationConfig`]); `None` keeps the
    /// paper-faithful retry-every-interval behaviour.
    degradation: Option<DegradationConfig>,
    /// Exponential-backoff state per failed region:
    /// `(process, region index) -> (consecutive failures, retry_at)`.
    backoff: FxHashMap<(usize, u64), (u32, u64)>,
    /// Whether the pressure detector is currently on.
    in_pressure: bool,
    /// Bloat observed at the last interval (for the rising-bloat test).
    last_bloat: u64,
}

impl PccPolicy {
    /// Creates the policy with the paper's defaults (highest PCC
    /// frequency, 128 promotions per interval, no bias, no demotion).
    pub fn new(selection: PromotionPolicyKind, regions_to_promote: u32) -> Self {
        PccPolicy {
            selection,
            regions_to_promote,
            bias: Vec::new(),
            demotion: false,
            cold_streaks: FxHashMap::default(),
            degradation: None,
            backoff: FxHashMap::default(),
            in_pressure: false,
            last_bloat: 0,
        }
    }

    /// Intervals a promoted region must remain unaccessed before it
    /// becomes a demotion candidate.
    pub const COLD_STREAK: u32 = 2;

    /// Biases promotion toward `pids` (the `promotion_bias_process`
    /// kernel parameter, §3.3.2): their candidates are served first.
    #[must_use]
    pub fn with_bias(mut self, pids: Vec<ProcessId>) -> Self {
        self.bias = pids;
        self
    }

    /// Enables PCC-guided demotion (§3.3.3): when a promotion fails for
    /// lack of huge frames, a cold promoted region (huge mapping whose
    /// accessed bit stayed clear over the last interval) is demoted to
    /// free one.
    #[must_use]
    pub fn with_demotion(mut self, enabled: bool) -> Self {
        self.demotion = enabled;
        self
    }

    /// Enables graceful degradation (per-region exponential backoff plus
    /// the pressure detector); see [`DegradationConfig`]. Equivalent to
    /// [`HugePagePolicy::configure_degradation`].
    #[must_use]
    pub fn with_degradation_config(mut self, cfg: DegradationConfig) -> Self {
        self.degradation = Some(cfg);
        self
    }

    /// Whether the pressure detector is currently on.
    pub fn under_pressure(&self) -> bool {
        self.in_pressure
    }

    /// The configured selection policy.
    pub fn selection(&self) -> PromotionPolicyKind {
        self.selection
    }

    fn ordered_candidates(&self, bank: &PccBank) -> Vec<CoreCandidate> {
        match self.selection {
            PromotionPolicyKind::HighestFrequency => bank.dump_by_frequency(),
            PromotionPolicyKind::RoundRobin => bank.dump_round_robin(),
        }
    }

    /// Finds and demotes one sufficiently-cold promoted region (cold for
    /// at least [`Self::COLD_STREAK`] consecutive intervals), returning
    /// whether one was demoted. With `reclaim`, the demotion also unmaps
    /// the region's never-faulted tail pages (bloat recovery).
    fn demote_one_cold(
        &mut self,
        os: &mut OsState,
        report: &mut IntervalReport,
        reclaim: bool,
    ) -> bool {
        // Oldest promotions first.
        let mut candidates: Vec<(usize, Vpn, u64)> = Vec::new();
        for (p, space) in os.spaces.iter().enumerate() {
            for (region, at) in space.promoted_regions() {
                let streak = self
                    .cold_streaks
                    .get(&(p, region.index()))
                    .copied()
                    .unwrap_or(0);
                if streak >= Self::COLD_STREAK
                    && space.page_table().accessed_base_pages_in(region) == 0
                {
                    candidates.push((p, region, at));
                }
            }
        }
        candidates.sort_by_key(|&(_, _, at)| at);
        if let Some(&(p, region, _)) = candidates.first() {
            let demoted = if reclaim {
                match os.spaces[p].demote_and_reclaim(region, &mut os.phys) {
                    Ok(bytes) => {
                        if bytes > 0 {
                            report.bloat_recovered.push((ProcessId(p as u32), bytes));
                        }
                        true
                    }
                    Err(_) => false,
                }
            } else {
                os.spaces[p].demote(region, &mut os.phys).is_ok()
            };
            if demoted {
                self.cold_streaks.remove(&(p, region.index()));
                report.demotions.push((ProcessId(p as u32), region));
                return true;
            }
        }
        false
    }

    /// Runs the pressure detector and, while under pressure, the
    /// HawkEye-style cold-region demotions. Returns the throttled
    /// per-interval promotion cap.
    fn apply_pressure(&mut self, os: &mut OsState, report: &mut IntervalReport) -> u32 {
        let Some(cfg) = self.degradation else {
            return self.regions_to_promote;
        };
        let free = os.phys.free_huge_capable_blocks();
        let bloat = os.total_bloat_bytes();
        if !self.in_pressure && free <= cfg.pressure_enter_free_blocks && bloat >= self.last_bloat {
            self.in_pressure = true;
            report.pressure_entered = true;
        } else if self.in_pressure && free >= cfg.pressure_exit_free_blocks {
            self.in_pressure = false;
            report.pressure_exited = true;
        }
        self.last_bloat = bloat;
        if !self.in_pressure {
            return self.regions_to_promote;
        }
        for _ in 0..cfg.demotions_per_interval {
            if !self.demote_one_cold(os, report, true) {
                break;
            }
        }
        (self.regions_to_promote / cfg.throttle_divisor.max(1)).max(1)
    }
}

impl HugePagePolicy for PccPolicy {
    fn name(&self) -> &'static str {
        "pcc"
    }

    fn configure_degradation(&mut self, cfg: DegradationConfig) {
        self.degradation = Some(cfg);
    }

    fn run_interval(
        &mut self,
        os: &mut OsState,
        mut pccs: Option<&mut PccBank>,
        now: u64,
        budget: &mut PromotionBudget,
    ) -> IntervalReport {
        let mut report = IntervalReport::default();
        let Some(bank) = pccs.as_deref_mut() else {
            return report; // a PCC policy without PCC hardware is inert
        };
        let max_promotions = self.apply_pressure(os, &mut report);
        let mut candidates = self.ordered_candidates(bank);
        if !self.bias.is_empty() {
            // Stable partition: biased processes' candidates first.
            let biased: Vec<u32> = self.bias.iter().map(|p| p.0).collect();
            candidates.sort_by_key(|c| {
                let pid = os.process_of(c.core).map(|p| p as u32);
                (!pid.map(|p| biased.contains(&p)).unwrap_or(false), 0)
            });
        }
        let mut promoted = 0u32;
        for cand in candidates {
            if promoted >= max_promotions || !budget.available() {
                report.budget_exhausted = !budget.available();
                break;
            }
            // A candidate from an unplaced core is unattributable: skip.
            let Ok(p) = os.process_of(cand.core) else {
                continue;
            };
            let region = cand.candidate.region;
            if os.spaces[p].page_table().is_huge_mapped(region)
                || os.spaces[p].page_table().mapped_base_pages_in(region) == 0
            {
                // Stale candidate (already promoted via another core's
                // PCC, or unmapped): drop it from the PCCs.
                if let Some(bank) = pccs.as_deref_mut() {
                    bank.invalidate_all(region);
                }
                continue;
            }
            // Degradation: a region in backoff is deferred, not retried.
            // Its PCC entry survives, so it stays a candidate for when
            // the backoff expires.
            if let Some(&(fails, retry_at)) = self.backoff.get(&(p, region.index())) {
                if now < retry_at {
                    report
                        .deferred
                        .push((ProcessId(p as u32), region, retry_at, fails));
                    continue;
                }
            }
            let mut result = execute_promotion(os, &mut pccs, p, region, now);
            if matches!(result, Err(HpageError::OutOfMemory { .. })) && self.demotion {
                // §3.3.3: free a huge frame by demoting a cold region.
                if self.demote_one_cold(os, &mut report, self.degradation.is_some()) {
                    result = execute_promotion(os, &mut pccs, p, region, now);
                }
            }
            match result {
                Ok(out) => {
                    promoted += 1;
                    budget.consume();
                    self.backoff.remove(&(p, region.index()));
                    report.promotions.push(PromotionRecord {
                        process: ProcessId(p as u32),
                        outcome: out,
                        predicted_walks: cand.candidate.frequency,
                    });
                }
                Err(HpageError::OutOfMemory { .. } | HpageError::Fault { .. }) => {
                    report.failures += 1;
                    if let Some(cfg) = self.degradation {
                        let entry = self.backoff.entry((p, region.index())).or_insert((0, now));
                        entry.0 += 1;
                        let exp = (entry.0 - 1).min(cfg.max_backoff_exponent).min(63);
                        entry.1 = now
                            .saturating_add(cfg.backoff_base_accesses.saturating_mul(1u64 << exp));
                        report
                            .deferred
                            .push((ProcessId(p as u32), region, entry.1, entry.0));
                    }
                    break;
                }
                Err(_) => {}
            }
        }
        // Update cold streaks and refresh A-bit tracking of promoted
        // regions so the next interval can detect coldness.
        if self.demotion || self.degradation.is_some() {
            for (p, space) in os.spaces.iter_mut().enumerate() {
                let regions: Vec<Vpn> = space
                    .promoted_regions()
                    .into_iter()
                    .map(|(r, _)| r)
                    .collect();
                for r in regions {
                    let key = (p, r.index());
                    if space.page_table().accessed_base_pages_in(r) == 0 {
                        *self.cold_streaks.entry(key).or_insert(0) += 1;
                    } else {
                        self.cold_streaks.insert(key, 0);
                    }
                    space.page_table_mut().clear_accessed_in(r);
                    report.sampling_invalidations.push((ProcessId(p as u32), r));
                }
            }
        }
        report
    }
}

// ---------------------------------------------------------------------
// Schedule replay (the paper's two-step methodology, §4)
// ---------------------------------------------------------------------

/// One promotion event of a recorded schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledPromotion {
    /// Simulation time (accesses) at which the offline run promoted.
    pub at_access: u64,
    /// The owning process.
    pub process: ProcessId,
    /// The promoted 2 MiB region.
    pub region: Vpn,
}

/// A promotion-candidate trace recorded by an offline PCC simulation,
/// replayable against a separate run — mirroring the paper's §4
/// methodology, where the offline TLB+PCC simulation writes candidate
/// addresses and times to a trace file and the real system replays it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PromotionSchedule {
    events: Vec<ScheduledPromotion>,
}

impl PromotionSchedule {
    /// Creates a schedule from events (sorted by time internally).
    pub fn new(mut events: Vec<ScheduledPromotion>) -> Self {
        events.sort_by_key(|e| e.at_access);
        PromotionSchedule { events }
    }

    /// Appends one event (keeps the list sorted if appended in time
    /// order, which recording naturally does).
    pub fn push(&mut self, event: ScheduledPromotion) {
        self.events.push(event);
    }

    /// The recorded events in time order.
    pub fn events(&self) -> &[ScheduledPromotion] {
        &self.events
    }

    /// Number of recorded promotions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Replays a [`PromotionSchedule`]: at each interval, promotes every
/// scheduled region whose timestamp has passed. This is the "second
/// step" of the paper's evaluation — the OS consumes candidate data as
/// if real PCC hardware had produced it.
#[derive(Debug, Clone)]
pub struct ReplayPolicy {
    schedule: PromotionSchedule,
    cursor: usize,
}

impl ReplayPolicy {
    /// Creates a replay policy over `schedule`.
    pub fn new(schedule: PromotionSchedule) -> Self {
        ReplayPolicy {
            schedule,
            cursor: 0,
        }
    }

    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.schedule.len() - self.cursor
    }
}

impl HugePagePolicy for ReplayPolicy {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn run_interval(
        &mut self,
        os: &mut OsState,
        mut pccs: Option<&mut PccBank>,
        now: u64,
        budget: &mut PromotionBudget,
    ) -> IntervalReport {
        let mut report = IntervalReport::default();
        while self.cursor < self.schedule.events().len() {
            let ev = self.schedule.events()[self.cursor];
            if ev.at_access > now {
                break;
            }
            self.cursor += 1;
            if !budget.available() {
                report.budget_exhausted = true;
                continue;
            }
            let p = ev.process.0 as usize;
            if p >= os.spaces.len()
                || os.spaces[p].page_table().is_huge_mapped(ev.region)
                || os.spaces[p].page_table().mapped_base_pages_in(ev.region) == 0
            {
                continue;
            }
            match execute_promotion(os, &mut pccs, p, ev.region, now) {
                Ok(out) => {
                    budget.consume();
                    report.promotions.push(PromotionRecord {
                        process: ev.process,
                        outcome: out,
                        predicted_walks: 0,
                    });
                }
                Err(HpageError::OutOfMemory { .. } | HpageError::Fault { .. }) => {
                    report.failures += 1;
                }
                Err(_) => {}
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::PccConfig;

    const MB2: u64 = PageSize::Huge2M.bytes();

    fn region(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Huge2M)
    }

    /// OS with one process on one core and `blocks` 2MB of memory.
    fn os_with(blocks: u64) -> OsState {
        OsState::new(PhysicalMemory::new(blocks * MB2), 1, vec![0]).unwrap()
    }

    fn fault_pages(os: &mut OsState, process: usize, region: Vpn, pages: u64) {
        for page in region.split(PageSize::Base4K).take(pages as usize) {
            os.spaces[process]
                .fault(page.base(), false, &mut os.phys)
                .unwrap();
        }
    }

    fn bank() -> PccBank {
        PccBank::new(1, PccConfig::paper_2m().with_entries(16), PageSize::Huge2M)
    }

    #[test]
    fn base_policy_is_inert() {
        let mut os = os_with(8);
        fault_pages(&mut os, 0, region(10), 4);
        let mut p = BasePagesPolicy;
        let r = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert!(r.promotions.is_empty());
        assert!(!p.fault_prefers_huge());
    }

    #[test]
    fn ideal_policy_prefers_huge_faults() {
        assert!(IdealHugePolicy.fault_prefers_huge());
    }

    #[test]
    fn budget_math() {
        let b = PromotionBudget::percent_of_footprint(50, 10 * MB2);
        assert_eq!(b.remaining_regions, Some(5));
        let mut b = PromotionBudget::regions(1);
        assert!(b.available());
        b.consume();
        assert!(!b.available());
        assert!(PromotionBudget::UNLIMITED.available());
    }

    #[test]
    fn khugepaged_promotes_in_address_order() {
        let mut os = os_with(16);
        for r in [region(5), region(9), region(2)] {
            fault_pages(&mut os, 0, r, 3);
        }
        let mut p = LinuxThpPolicy::new();
        let mut budget = PromotionBudget::UNLIMITED;
        let rep = p.run_interval(&mut os, None, 0, &mut budget);
        // Scan budget is 8 regions: all 3 promoted, ascending order.
        let promoted: Vec<u64> = rep
            .promotions
            .iter()
            .map(|r| r.outcome.region.index())
            .collect();
        assert_eq!(promoted, vec![2, 5, 9]);
        assert!(os.spaces[0].page_table().is_huge_mapped(region(2)));
    }

    #[test]
    fn khugepaged_respects_scan_budget_and_resumes() {
        let mut os = os_with(32);
        for i in 0..6 {
            fault_pages(&mut os, 0, region(i), 2);
        }
        let mut p = LinuxThpPolicy::new().with_pages_per_scan(2 * BASE_PAGES_PER_2M);
        let mut budget = PromotionBudget::UNLIMITED;
        let rep1 = p.run_interval(&mut os, None, 0, &mut budget);
        assert_eq!(rep1.promotions.len(), 2); // regions 0, 1
        let rep2 = p.run_interval(&mut os, None, 0, &mut budget);
        let idx: Vec<u64> = rep2
            .promotions
            .iter()
            .map(|r| r.outcome.region.index())
            .collect();
        assert_eq!(idx, vec![2, 3]); // rotor resumed
    }

    #[test]
    fn khugepaged_stops_on_oom() {
        let mut os = os_with(4);
        os.phys.fragment(100, 1);
        fault_pages(&mut os, 0, region(5), 3);
        let mut p = LinuxThpPolicy::new();
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert!(rep.promotions.is_empty());
        assert_eq!(rep.failures, 1);
    }

    #[test]
    fn hawkeye_buckets() {
        assert_eq!(HawkEyePolicy::bucket_of(0), 0);
        assert_eq!(HawkEyePolicy::bucket_of(49), 0);
        assert_eq!(HawkEyePolicy::bucket_of(50), 1);
        assert_eq!(HawkEyePolicy::bucket_of(449), 8);
        assert_eq!(HawkEyePolicy::bucket_of(450), 9);
        assert_eq!(HawkEyePolicy::bucket_of(512), 9);
    }

    #[test]
    fn hawkeye_promotes_high_coverage_first() {
        let mut os = os_with(16);
        // Region A: 480 pages accessed (bucket 9). Region B: 60 (bucket 1).
        fault_pages(&mut os, 0, region(3), 480);
        fault_pages(&mut os, 0, region(7), 60);
        for page in region(3).split(PageSize::Base4K).take(480) {
            os.spaces[0].page_table_mut().walk(page.base()).unwrap();
        }
        for page in region(7).split(PageSize::Base4K).take(60) {
            os.spaces[0].page_table_mut().walk(page.base()).unwrap();
        }
        let mut p = HawkEyePolicy::new();
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(rep.promotions[0].outcome.region, region(3));
        assert_eq!(rep.promotions[1].outcome.region, region(7));
    }

    #[test]
    fn hawkeye_promotion_rate_is_scan_limited() {
        let mut os = os_with(64);
        for i in 0..20 {
            fault_pages(&mut os, 0, region(i), 500);
            for page in region(i).split(PageSize::Base4K).take(500) {
                os.spaces[0].page_table_mut().walk(page.base()).unwrap();
            }
        }
        let mut p = HawkEyePolicy::new(); // 4096 pages = 8 regions/interval
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(rep.promotions.len(), 8);
    }

    #[test]
    fn hawkeye_ignores_untouched_regions() {
        let mut os = os_with(16);
        fault_pages(&mut os, 0, region(3), 10); // mapped but never walked
        let mut p = HawkEyePolicy::new();
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert!(rep.promotions.is_empty());
    }

    #[test]
    fn pcc_policy_promotes_hottest_candidates() {
        let mut os = os_with(16);
        fault_pages(&mut os, 0, region(3), 4);
        fault_pages(&mut os, 0, region(8), 4);
        let mut bank = bank();
        for _ in 0..10 {
            bank.record_walk(CoreId(0), region(8), true);
        }
        bank.record_walk(CoreId(0), region(3), true);
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 1);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            7,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.promotions.len(), 1);
        assert_eq!(rep.promotions[0].outcome.region, region(8));
        // The prediction travels with the record: region 8 was walked
        // more than region 3, and the PCC counter is what was promised.
        assert!(rep.promotions[0].predicted_walks > 0);
        // Promotion invalidated the candidate from the PCC.
        assert_eq!(bank.pcc(CoreId(0)).frequency_of(region(8)), None);
        assert!(bank.pcc(CoreId(0)).frequency_of(region(3)).is_some());
    }

    #[test]
    fn pcc_policy_ranks_region_shared_across_threads_by_summed_frequency() {
        // Fig. 8 setup in miniature: one multithreaded process on two
        // cores. A shared heap region is walked from both cores (its
        // frequency split 3 + 3 across their PCCs); a thread-local region
        // on core 0 reaches frequency 4. With one promotion per interval,
        // the shared region must win: its aggregate heat (6) exceeds the
        // local region's (4), even though each per-core view alone
        // (3 < 4) would lose. Per-core dump entries used to compete
        // unmerged, promoting the colder local region first.
        let mut os = OsState::new(PhysicalMemory::new(32 * MB2), 1, vec![0, 0]).unwrap();
        fault_pages(&mut os, 0, region(5), 4);
        fault_pages(&mut os, 0, region(9), 4);
        let mut bank = PccBank::new(2, PccConfig::paper_2m().with_entries(16), PageSize::Huge2M);
        for _ in 0..4 {
            bank.record_walk(CoreId(0), region(5), true);
        }
        for _ in 0..4 {
            bank.record_walk(CoreId(1), region(5), true);
        }
        for _ in 0..5 {
            bank.record_walk(CoreId(0), region(9), true);
        }
        assert_eq!(bank.pcc(CoreId(0)).frequency_of(region(5)), Some(3));
        assert_eq!(bank.pcc(CoreId(1)).frequency_of(region(5)), Some(3));
        assert_eq!(bank.pcc(CoreId(0)).frequency_of(region(9)), Some(4));
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 1);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            7,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.promotions.len(), 1);
        assert_eq!(rep.promotions[0].outcome.region, region(5));
    }

    #[test]
    fn pcc_policy_respects_regions_to_promote_and_budget() {
        let mut os = os_with(32);
        let mut bank = bank();
        for i in 0..10 {
            fault_pages(&mut os, 0, region(i), 2);
            bank.record_walk(CoreId(0), region(i), true);
        }
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 4);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            0,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.promotions.len(), 4);
        let mut budget = PromotionBudget::regions(2);
        let rep = p.run_interval(&mut os, Some(&mut bank), 0, &mut budget);
        assert_eq!(rep.promotions.len(), 2);
        assert!(!budget.available());
    }

    #[test]
    fn pcc_policy_drops_stale_candidates() {
        let mut os = os_with(16);
        let mut bank = bank();
        // Candidate never mapped: must be skipped and invalidated.
        bank.record_walk(CoreId(0), region(9), true);
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            0,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert!(rep.promotions.is_empty());
        assert!(bank.pcc(CoreId(0)).is_empty());
    }

    #[test]
    fn pcc_policy_without_bank_is_inert() {
        let mut os = os_with(8);
        let mut p = PccPolicy::new(PromotionPolicyKind::RoundRobin, 8);
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert!(rep.promotions.is_empty());
    }

    #[test]
    fn pcc_round_robin_interleaves_cores() {
        // Two cores, one process (multithread): each core's top candidate
        // gets promoted alternately.
        let mut os = OsState::new(PhysicalMemory::new(32 * MB2), 1, vec![0, 0]).unwrap();
        let mut bank = PccBank::new(2, PccConfig::paper_2m().with_entries(16), PageSize::Huge2M);
        for i in 0..4 {
            fault_pages(&mut os, 0, region(i), 2);
        }
        for _ in 0..5 {
            bank.record_walk(CoreId(0), region(0), true);
            bank.record_walk(CoreId(0), region(1), true);
            bank.record_walk(CoreId(1), region(2), true);
            bank.record_walk(CoreId(1), region(3), true);
        }
        let mut p = PccPolicy::new(PromotionPolicyKind::RoundRobin, 2);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            0,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        let cores_hit: Vec<u64> = rep
            .promotions
            .iter()
            .map(|r| r.outcome.region.index())
            .collect();
        // One candidate from each core's PCC.
        assert!(cores_hit.contains(&0) || cores_hit.contains(&1));
        assert!(cores_hit.contains(&2) || cores_hit.contains(&3));
    }

    #[test]
    fn pcc_bias_prioritizes_process() {
        // Two processes on two cores; process 1 is biased.
        let mut os = OsState::new(PhysicalMemory::new(8 * MB2), 2, vec![0, 1]).unwrap();
        // Memory has only 8 blocks; each process maps one region.
        fault_pages(&mut os, 0, region(100), 2);
        fault_pages(&mut os, 1, region(200), 2);
        let mut bank = PccBank::new(2, PccConfig::paper_2m().with_entries(16), PageSize::Huge2M);
        // Process 0's candidate is hotter.
        for _ in 0..10 {
            bank.record_walk(CoreId(0), region(100), true);
        }
        bank.record_walk(CoreId(1), region(200), true);
        let mut p =
            PccPolicy::new(PromotionPolicyKind::HighestFrequency, 1).with_bias(vec![ProcessId(1)]);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            0,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.promotions[0].process, ProcessId(1));
        assert_eq!(rep.promotions[0].outcome.region, region(200));
    }

    #[test]
    fn pcc_demotion_frees_room_under_pressure() {
        // 4 blocks, 2 of them fragmented (huge-incapable). The two clean
        // blocks get consumed — one by promoting a region that then goes
        // cold, one leaked — so a new hot candidate can only be promoted
        // by demoting the cold region: its split block is compacted into
        // the fragmented blocks' ample free space and reused.
        let mut os = os_with(4);
        os.phys.fragment(50, 11);
        let mut bank = bank();
        fault_pages(&mut os, 0, region(0), 1);
        fault_pages(&mut os, 0, region(2), 1);
        os.spaces[0]
            .promote(region(0), true, 0, &mut os.phys)
            .unwrap();
        os.phys.alloc_huge(true).unwrap(); // consume the last clean block
        for _ in 0..5 {
            bank.record_walk(CoreId(0), region(2), true);
        }
        // Without demotion: failure.
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            2,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.failures, 1);
        assert!(rep.promotions.is_empty());
        // With demotion: region 0 must first accumulate COLD_STREAK
        // consecutive cold intervals, then it is demoted and region 2
        // takes its block after compaction.
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8).with_demotion(true);
        let mut demoted = false;
        for t in 0..PccPolicy::COLD_STREAK + 2 {
            for _ in 0..5 {
                bank.record_walk(CoreId(0), region(2), true);
            }
            let rep = p.run_interval(
                &mut os,
                Some(&mut bank),
                3 + u64::from(t),
                &mut PromotionBudget::UNLIMITED.clone(),
            );
            if !rep.demotions.is_empty() {
                assert_eq!(rep.demotions, vec![(ProcessId(0), region(0))]);
                assert_eq!(rep.promotions.len(), 1);
                assert_eq!(rep.promotions[0].outcome.region, region(2));
                assert!(rep.promotions[0].outcome.pages_migrated >= 512);
                demoted = true;
                break;
            }
        }
        assert!(demoted, "cold region was never demoted");
        assert!(os.spaces[0].page_table().is_huge_mapped(region(2)));
        assert!(!os.spaces[0].page_table().is_huge_mapped(region(0)));
    }

    #[test]
    fn interval_report_shootdowns() {
        let mut os = os_with(16);
        fault_pages(&mut os, 0, region(3), 2);
        let mut bank = bank();
        bank.record_walk(CoreId(0), region(3), true);
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            0,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.shootdown_regions(), vec![(ProcessId(0), region(3))]);
    }

    #[test]
    fn walks_during_interval_do_not_promote_without_policy() {
        // Sanity: faulting + walking alone never creates huge pages.
        let mut os = os_with(8);
        fault_pages(&mut os, 0, region(3), 8);
        for page in region(3).split(PageSize::Base4K).take(8) {
            os.spaces[0].page_table_mut().walk(page.base()).unwrap();
        }
        assert!(os.spaces[0].huge_regions().is_empty());
    }

    #[test]
    fn replay_promotes_at_scheduled_times() {
        let mut os = os_with(16);
        for i in [3u64, 7] {
            fault_pages(&mut os, 0, region(i), 2);
        }
        let schedule = PromotionSchedule::new(vec![
            ScheduledPromotion {
                at_access: 100,
                process: ProcessId(0),
                region: region(3),
            },
            ScheduledPromotion {
                at_access: 500,
                process: ProcessId(0),
                region: region(7),
            },
        ]);
        let mut p = ReplayPolicy::new(schedule);
        assert_eq!(p.remaining(), 2);
        // At t=200 only the first event fires.
        let rep = p.run_interval(&mut os, None, 200, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(rep.promotions.len(), 1);
        assert_eq!(rep.promotions[0].outcome.region, region(3));
        assert_eq!(p.remaining(), 1);
        // At t=600 the second fires.
        let rep = p.run_interval(&mut os, None, 600, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(rep.promotions.len(), 1);
        assert_eq!(rep.promotions[0].outcome.region, region(7));
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn replay_skips_stale_events() {
        let mut os = os_with(16);
        // Region never mapped: the event is consumed without effect.
        let schedule = PromotionSchedule::new(vec![ScheduledPromotion {
            at_access: 1,
            process: ProcessId(0),
            region: region(9),
        }]);
        let mut p = ReplayPolicy::new(schedule);
        let rep = p.run_interval(&mut os, None, 10, &mut PromotionBudget::UNLIMITED.clone());
        assert!(rep.promotions.is_empty());
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn schedule_sorts_events() {
        let s = PromotionSchedule::new(vec![
            ScheduledPromotion {
                at_access: 500,
                process: ProcessId(0),
                region: region(1),
            },
            ScheduledPromotion {
                at_access: 100,
                process: ProcessId(0),
                region: region(2),
            },
        ]);
        assert_eq!(s.events()[0].at_access, 100);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn os_state_process_mapping() {
        let os = OsState::new(PhysicalMemory::new(4 * MB2), 2, vec![0, 1, 1]).unwrap();
        assert_eq!(os.process_of(CoreId(0)).unwrap(), 0);
        assert_eq!(os.process_of(CoreId(2)).unwrap(), 1);
        assert!(matches!(
            os.process_of(CoreId(9)),
            Err(HpageError::InvariantViolation { .. })
        ));
    }

    #[test]
    fn bad_placement_is_rejected() {
        let err = OsState::new(PhysicalMemory::new(4 * MB2), 1, vec![0, 5]).unwrap_err();
        assert!(err.to_string().contains("unknown process"));
    }

    #[test]
    fn backoff_defers_failing_promotions() {
        // Fully fragmented memory: every promotion attempt fails. With
        // degradation, the failing region is retried on an exponential
        // schedule instead of every interval.
        let mut os = os_with(4);
        os.phys.fragment(100, 1);
        fault_pages(&mut os, 0, region(3), 4);
        let mut bank = bank();
        let cfg = DegradationConfig {
            backoff_base_accesses: 100,
            ..DegradationConfig::default()
        };
        let mut p =
            PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8).with_degradation_config(cfg);
        bank.record_walk(CoreId(0), region(3), true);
        // t=0: attempt fails, backoff entry created (retry at 100).
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            0,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.failures, 1);
        assert_eq!(rep.deferred, vec![(ProcessId(0), region(3), 100, 1)]);
        // t=50: still inside the backoff window — deferred, no attempt.
        bank.record_walk(CoreId(0), region(3), true);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            50,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.failures, 0, "no retry inside the backoff window");
        assert_eq!(rep.deferred, vec![(ProcessId(0), region(3), 100, 1)]);
        // t=150: backoff expired — retried (fails again, doubled delay).
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            150,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.failures, 1);
        assert_eq!(rep.deferred, vec![(ProcessId(0), region(3), 150 + 200, 2)]);
    }

    #[test]
    fn backoff_clears_on_success() {
        let mut os = os_with(8);
        fault_pages(&mut os, 0, region(3), 4);
        let mut bank = bank();
        let cfg = DegradationConfig {
            backoff_base_accesses: 100,
            ..DegradationConfig::default()
        };
        let mut p =
            PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8).with_degradation_config(cfg);
        // Make the first attempt fail via an injected OOM window.
        os.phys.set_alloc_gate(crate::AllocGate {
            deny_huge: true,
            deny_compaction: false,
        });
        bank.record_walk(CoreId(0), region(3), true);
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            0,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.failures, 1);
        // Fault lifted; past the retry time the promotion succeeds and
        // the backoff entry is gone.
        os.phys.set_alloc_gate(crate::AllocGate::default());
        let rep = p.run_interval(
            &mut os,
            Some(&mut bank),
            200,
            &mut PromotionBudget::UNLIMITED.clone(),
        );
        assert_eq!(rep.promotions.len(), 1);
        assert!(rep.deferred.is_empty());
    }

    #[test]
    fn pressure_throttles_and_recovers_bloat() {
        // 4 blocks, one process. Sparsely promote two regions (heavy
        // bloat), exhausting the clean blocks; the pressure detector
        // must switch on, demote the cold regions, and reclaim the
        // untouched tail pages.
        let mut os = os_with(4);
        fault_pages(&mut os, 0, region(0), 2);
        fault_pages(&mut os, 0, region(1), 2);
        os.spaces[0]
            .promote(region(0), true, 0, &mut os.phys)
            .unwrap();
        os.spaces[0]
            .promote(region(1), true, 0, &mut os.phys)
            .unwrap();
        let mut bank = bank();
        let cfg = DegradationConfig {
            pressure_enter_free_blocks: 2,
            pressure_exit_free_blocks: 3,
            demotions_per_interval: 2,
            ..DegradationConfig::default()
        };
        let mut p =
            PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8).with_degradation_config(cfg);
        assert!(os.phys.free_huge_capable_blocks() <= 2);
        let mut entered = false;
        let mut recovered = 0u64;
        for t in 0..6u64 {
            let rep = p.run_interval(
                &mut os,
                Some(&mut bank),
                t * 10,
                &mut PromotionBudget::UNLIMITED.clone(),
            );
            entered |= rep.pressure_entered;
            recovered += rep.bloat_recovered.iter().map(|(_, b)| b).sum::<u64>();
            if !rep.demotions.is_empty() {
                break;
            }
        }
        assert!(entered, "pressure detector never fired");
        assert!(recovered > 0, "no bloat reclaimed");
        // Each demoted region keeps its 2 faulted pages and frees the
        // other 510.
        assert_eq!(recovered % (510 * 4096), 0);
        assert!(!os.spaces[0].page_table().is_huge_mapped(region(0)));
        assert_eq!(os.spaces[0].page_table().mapped_base_pages_in(region(0)), 2);
    }

    #[test]
    fn degradation_off_keeps_paper_behavior() {
        // Without degradation the policy retries every interval and
        // reports no deferred/pressure fields.
        let mut os = os_with(4);
        os.phys.fragment(100, 1);
        fault_pages(&mut os, 0, region(3), 4);
        let mut bank = bank();
        let mut p = PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8);
        for t in 0..3 {
            bank.record_walk(CoreId(0), region(3), true);
            let rep = p.run_interval(
                &mut os,
                Some(&mut bank),
                t,
                &mut PromotionBudget::UNLIMITED.clone(),
            );
            assert_eq!(rep.failures, 1, "paper behavior retries every interval");
            assert!(rep.deferred.is_empty());
            assert!(!rep.pressure_entered && !rep.pressure_exited);
        }
    }

    #[test]
    fn configure_degradation_via_trait() {
        let mut p: Box<dyn HugePagePolicy> =
            Box::new(PccPolicy::new(PromotionPolicyKind::HighestFrequency, 8));
        p.configure_degradation(DegradationConfig::default());
        // Other policies accept and ignore the call.
        let mut base: Box<dyn HugePagePolicy> = Box::new(BasePagesPolicy);
        base.configure_degradation(DegradationConfig::default());
    }

    #[test]
    fn policy_names_and_fault_preferences() {
        assert_eq!(BasePagesPolicy.name(), "base-4k");
        assert_eq!(IdealHugePolicy.name(), "ideal-2m");
        assert_eq!(LinuxThpPolicy::new().name(), "linux-thp");
        assert_eq!(HawkEyePolicy::new().name(), "hawkeye");
        assert_eq!(
            PccPolicy::new(PromotionPolicyKind::RoundRobin, 1).name(),
            "pcc"
        );
        assert!(LinuxThpPolicy::new().fault_prefers_huge());
        assert!(!HawkEyePolicy::new().fault_prefers_huge());
        assert!(!PccPolicy::new(PromotionPolicyKind::RoundRobin, 1).fault_prefers_huge());
        assert_eq!(
            PccPolicy::new(PromotionPolicyKind::RoundRobin, 1).selection(),
            PromotionPolicyKind::RoundRobin
        );
        assert_eq!(
            ReplayPolicy::new(PromotionSchedule::default()).name(),
            "replay"
        );
    }

    #[test]
    fn hawkeye_scan_budget_drives_promotion_cap() {
        let p = HawkEyePolicy::new().with_pages_per_scan(1024);
        // 1024 pages = 2 regions per interval.
        let mut os = os_with(32);
        for i in 0..5 {
            fault_pages(&mut os, 0, region(i), 500);
            for page in region(i).split(PageSize::Base4K).take(500) {
                os.spaces[0].page_table_mut().walk(page.base()).unwrap();
            }
        }
        let mut p = p;
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(rep.promotions.len(), 2);
    }

    #[test]
    fn hawkeye_rescans_update_buckets() {
        // A region whose coverage drops between scans moves buckets and
        // is not double-queued.
        let mut os = os_with(16);
        fault_pages(&mut os, 0, region(3), 500);
        for page in region(3).split(PageSize::Base4K).take(500) {
            os.spaces[0].page_table_mut().walk(page.base()).unwrap();
        }
        let mut p = HawkEyePolicy::new();
        // First interval scans and promotes region 3.
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(rep.promotions.len(), 1);
        // Nothing left to promote on the next interval.
        let rep = p.run_interval(&mut os, None, 1, &mut PromotionBudget::UNLIMITED.clone());
        assert!(rep.promotions.is_empty());
    }

    #[test]
    fn linux_fault_path_cannot_compact() {
        // Under full-coverage fragmentation, khugepaged (compaction) can
        // still promote but the fault path cannot allocate huge.
        let mut os = os_with(8);
        os.phys.fragment(25, 3);
        assert!(os.phys.alloc_huge(false).is_err());
        fault_pages(&mut os, 0, region(2), 3);
        let mut p = LinuxThpPolicy::new();
        let rep = p.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(
            rep.promotions.len(),
            1,
            "khugepaged compacts where faults cannot"
        );
    }

    #[test]
    fn max_ptes_none_gates_collapse() {
        let mut os = os_with(16);
        fault_pages(&mut os, 0, region(3), 10); // 502 PTEs are none
                                                // Strict setting: region must be (nearly) fully mapped.
        let mut strict = LinuxThpPolicy::new().with_max_ptes_none(0);
        let rep = strict.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert!(rep.promotions.is_empty());
        // Greedy default collapses it.
        let mut greedy = LinuxThpPolicy::new();
        let rep = greedy.run_interval(&mut os, None, 0, &mut PromotionBudget::UNLIMITED.clone());
        assert_eq!(rep.promotions.len(), 1);
    }

    #[test]
    fn budget_percent_rounds_up() {
        // 1% of a small footprint still allows one region.
        let b = PromotionBudget::percent_of_footprint(1, 10 * MB2);
        assert_eq!(b.remaining_regions, Some(1));
        let b = PromotionBudget::percent_of_footprint(0, 10 * MB2);
        assert_eq!(b.remaining_regions, Some(0));
    }
}
