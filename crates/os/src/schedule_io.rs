//! Text serialization for [`PromotionSchedule`] — the paper's candidate
//! trace file, one promotion per line:
//!
//! ```text
//! # hpage promotion schedule v1
//! <at_access> <pid> <2MB region index>
//! ```

use crate::engine::{PromotionSchedule, ScheduledPromotion};
use hpage_types::{PageSize, ProcessId, Vpn};
use std::io::{self, BufRead, BufReader, Read, Write};

const HEADER: &str = "# hpage promotion schedule v1";

/// Writes `schedule` in the text format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_schedule<W: Write>(schedule: &PromotionSchedule, mut writer: W) -> io::Result<()> {
    writeln!(writer, "{HEADER}")?;
    for ev in schedule.events() {
        writeln!(
            writer,
            "{} {} {}",
            ev.at_access,
            ev.process.0,
            ev.region.index()
        )?;
    }
    Ok(())
}

/// Reads a schedule written by [`write_schedule`].
///
/// # Errors
///
/// Returns `InvalidData` for a bad header or malformed line, or any I/O
/// error from `reader`.
pub fn read_schedule<R: Read>(reader: R) -> io::Result<PromotionSchedule> {
    let mut lines = BufReader::new(reader).lines();
    match lines.next() {
        Some(Ok(h)) if h.trim() == HEADER => {}
        Some(Ok(other)) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad schedule header: {other:?}"),
            ))
        }
        Some(Err(e)) => return Err(e),
        None => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "empty schedule file",
            ))
        }
    }
    let mut events = Vec::new();
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u64> {
            tok.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "short schedule line"))?
                .parse::<u64>()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        };
        let at_access = parse(parts.next())?;
        let pid = parse(parts.next())?;
        let region = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing fields on schedule line",
            ));
        }
        events.push(ScheduledPromotion {
            at_access,
            process: ProcessId(pid as u32),
            region: Vpn::new(region, PageSize::Huge2M),
        });
    }
    Ok(PromotionSchedule::new(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PromotionSchedule {
        PromotionSchedule::new(vec![
            ScheduledPromotion {
                at_access: 1_000_000,
                process: ProcessId(0),
                region: Vpn::new(0x8A314, PageSize::Huge2M),
            },
            ScheduledPromotion {
                at_access: 2_000_000,
                process: ProcessId(1),
                region: Vpn::new(0x23BF, PageSize::Huge2M),
            },
        ])
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        let back = read_schedule(buf.as_slice()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text = format!("{HEADER}\n\n# comment\n5 0 7\n");
        let s = read_schedule(text.as_bytes()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.events()[0].at_access, 5);
        assert_eq!(s.events()[0].region.index(), 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(read_schedule(&b""[..]).is_err());
        assert!(read_schedule(&b"wrong header\n"[..]).is_err());
        let text = format!("{HEADER}\n1 2\n");
        assert!(read_schedule(text.as_bytes()).is_err());
        let text = format!("{HEADER}\n1 2 3 4\n");
        assert!(read_schedule(text.as_bytes()).is_err());
        let text = format!("{HEADER}\nx y z\n");
        assert!(read_schedule(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_schedule_roundtrip() {
        let s = PromotionSchedule::default();
        let mut buf = Vec::new();
        write_schedule(&s, &mut buf).unwrap();
        assert_eq!(read_schedule(buf.as_slice()).unwrap(), s);
    }
}
