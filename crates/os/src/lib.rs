//! OS memory-management simulator: physical memory with the paper's
//! fragmentation model, process address spaces, and the huge-page
//! promotion policies under comparison — Linux THP (synchronous +
//! khugepaged), HawkEye, and the PCC-driven engine of the paper.
//!
//! # Example
//!
//! ```
//! use hpage_os::{AddressSpace, PhysicalMemory};
//! use hpage_types::{PageSize, ProcessId, VirtAddr};
//!
//! let mut phys = PhysicalMemory::new(64 * 2 * 1024 * 1024);
//! let mut space = AddressSpace::new(ProcessId(0));
//! // Fault a page in, then promote its 2 MiB region.
//! let va = VirtAddr::new(0x4000_0000);
//! space.fault(va, false, &mut phys)?;
//! let region = va.vpn(PageSize::Huge2M);
//! let outcome = space.promote(region, true, 0, &mut phys)?;
//! assert_eq!(outcome.pages_collapsed, 1);
//! # Ok::<(), hpage_types::HpageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addrspace;
pub mod audit;
mod engine;
mod ledger;
mod physmem;
mod schedule_io;

pub use addrspace::{AddressSpace, AddressSpaceStats, FaultGrant, FaultOutcome, PromotionOutcome};
pub use audit::{AuditViolation, Auditor};
pub use engine::{
    BasePagesPolicy, DegradationConfig, HawkEyePolicy, HugePagePolicy, IdealHugePolicy,
    IntervalReport, LinuxThpPolicy, OsState, PccPolicy, PromotionBudget, PromotionRecord,
    PromotionSchedule, ReplayPolicy, ScheduledPromotion,
};
pub use ledger::{LedgerEntry, LedgerSummary, PromotionLedger, RegionWalks};
pub use physmem::{AllocGate, HugeAlloc, PhysMemStats, PhysicalMemory};
pub use schedule_io::{read_schedule, write_schedule};
