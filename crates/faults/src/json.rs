//! Minimal hand-rolled JSON *parser* for fault plans.
//!
//! The workspace already hand-rolls JSON emission (`hpage-obs::json`);
//! this is the matching read side, scoped to what a [`crate::FaultPlan`]
//! needs: objects, arrays, strings, unsigned integers, booleans, and
//! null. The build environment is offline, so serde is not an option.
//! Numbers are parsed as `u64` (fault plans only carry counts, seeds,
//! and percentages); floats, exponents, and negative numbers are
//! rejected rather than silently truncated.

use std::collections::BTreeMap;

/// A parsed JSON value. `BTreeMap` keeps object iteration deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number shape fault plans use).
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an unsigned integer.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') => Err(format!(
                "negative number at byte {} (plans use unsigned)",
                self.pos
            )),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (plans use unsigned integers)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(Value::Uint)
            .map_err(|e| format!("number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err("raw control char in string".into()),
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse(" 42 ").unwrap(), Value::Uint(42));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": 0}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["c"], Value::Uint(0));
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[0], Value::Uint(1));
        assert_eq!(arr[1].as_object().unwrap()["b"].as_str(), Some("x"));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Value::Str("a\"b\\c\ndA".into())
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn rejects_non_plan_numbers() {
        assert!(parse("-1").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("99999999999999999999999").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn handles_unicode_content() {
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }
}
